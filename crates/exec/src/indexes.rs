//! The cross-tick index subsystem: a persistent [`IndexManager`] applying a
//! [`MaintenancePolicy`], plus the per-tick [`TickIndexes`] probe cache.
//!
//! Mirrors the experimental setup of §6: the categorical part of each filter
//! (player, unit type) selects partitions of a hash layer; each partition
//! owns the structure required by the aggregate's strategy.  Unlike the
//! paper's engine — which hardcodes rebuild-per-tick — the structures behind
//! the hash layer are pluggable ([`sgl_index::traits`]) and their lifetime
//! is governed by the configured policy:
//!
//! * **`RebuildEachTick`** — structures are built lazily on first use and
//!   discarded at end of tick (the paper's choice, §5.3);
//! * **`Incremental`** — maintained [`DynamicAggGrid`]s live inside the
//!   [`IndexManager`] across ticks; after each tick's post-processing and
//!   movement the engine hands the environment back and the manager applies
//!   only the per-unit deltas (diffed against its mirror of the last
//!   indexed state — the effect relation alone cannot describe collision
//!   -resolved movement);
//! * **`Adaptive`** — per partition, whichever of the two is predicted
//!   cheaper by the observed update ratio.
//!
//! Partition keys are `u64` fingerprints of the categorical `Value` vector
//! (no per-probe string building — the former `encode_values` hot path).

use rustc_hash::FxHashMap;
use std::hash::Hasher;

use sgl_env::{AttrId, EnvTable, Value};
use sgl_index::divisible::DivAcc;
use sgl_index::grid::DynamicAggGrid;
use sgl_index::kdtree::KdTree;
use sgl_index::range_tree::RangeTree2D;
use sgl_index::sweepline::{sweep_min_max, SweepKind};
use sgl_index::traits::{build_agg_index, AggIndex, AggStructureKind, IndexDelta, IndexRow};
use sgl_index::{Point2, Rect};
use sgl_lang::ast::{Term, VarRef};
use sgl_lang::builtins::{AggSpec, SimpleAgg};
use sgl_lang::eval::{eval_term, EvalContext, NoAggregates, ScriptValue};

use sgl_algebra::cost::{MaintenanceChoice, PhysicalBackend};

use crate::config::{ExecConfig, MaintenancePolicy, SpatialAttrs, TickStats};
use crate::error::{ExecError, Result};
use crate::filter::FilterAnalysis;
use crate::planner::{AggStrategy, PlannedAggregate};
use crate::stats::TickObservations;

// ---------------------------------------------------------------------------
// Value fingerprints (the categorical hash layer's key type)
// ---------------------------------------------------------------------------

pub(crate) fn hash_value(h: &mut rustc_hash::FxHasher, v: &Value) {
    match v {
        Value::Int(i) => {
            h.write_u8(1);
            h.write_u64(*i as u64);
        }
        Value::Float(f) => {
            h.write_u8(2);
            h.write_u64(f.to_bits());
        }
        Value::Bool(b) => {
            h.write_u8(3);
            h.write_u8(*b as u8);
        }
        Value::Str(s) => {
            h.write_u8(4);
            // Length-delimit: FxHasher zero-pads the trailing partial word,
            // so "a" and "a\0" would otherwise hash identically — and the
            // fingerprint IS the partition map key.
            h.write_usize(s.len());
            h.write(s.as_bytes());
        }
    }
}

/// Fingerprint of a categorical value vector — the partition key.
pub fn fingerprint_values(vs: &[Value]) -> u64 {
    let mut h = rustc_hash::FxHasher::default();
    for v in vs {
        hash_value(&mut h, v);
    }
    h.finish()
}

/// Strict (type- and bit-sensitive) value equality, matching the semantics
/// of the fingerprint: two values compare equal iff they fingerprint equal.
fn same_value(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Str(x), Value::Str(y)) => x == y,
        _ => false,
    }
}

fn fingerprint_attrs(attrs: &[AttrId]) -> u64 {
    let mut h = rustc_hash::FxHasher::default();
    for a in attrs {
        h.write_usize(*a);
    }
    h.finish()
}

fn fingerprint_terms(terms: &[Term]) -> u64 {
    let mut h = rustc_hash::FxHasher::default();
    h.write(format!("{terms:?}").as_bytes());
    h.finish()
}

/// A categorical constraint evaluated for one probing unit: required (or
/// forbidden) value per partition attribute, in `cat_attr_ids` order.
type RequiredValues = Vec<(bool, Value)>;

fn partition_matches(partition_values: &[Value], required: &RequiredValues) -> bool {
    for (i, (equal, value)) in required.iter().enumerate() {
        let actual = &partition_values[i];
        if *equal != same_value(actual, value) {
            return false;
        }
    }
    true
}

/// Evaluate a term whose only row context is the candidate row itself
/// (channel values, categorical attribute reads).
fn eval_row_term(
    term: &Term,
    table: &EnvTable,
    row: usize,
    constants: &FxHashMap<String, Value>,
) -> Result<Value> {
    // The term must not reference `u.*`; planner guarantees this.  We still
    // need *some* unit in the context, so we use the row itself.
    let schema = table.schema();
    let tuple = table.row(row);
    let rng = sgl_env::GameRng::new(0).for_tick(0);
    let ctx = EvalContext::new(schema, tuple, &rng, constants);
    let ctx = ctx.with_row(tuple);
    let mut no_aggs = NoAggregates;
    Ok(eval_term(term, &ctx, &mut no_aggs)?.as_scalar()?.clone())
}

/// One whole attribute column as `f64`, with the same coercions as the
/// per-row `Value::as_f64` (the typed extractor rejects Bool pages, the
/// per-row read does not — fall through to the generic view for those).
fn extract_f64_column(table: &EnvTable, attr: AttrId) -> Result<Vec<f64>> {
    if let Ok(col) = table.column_f64(attr) {
        return Ok(col);
    }
    let mut out = Vec::with_capacity(table.len());
    for v in table.column_values(attr)? {
        out.push(v.as_f64()?);
    }
    Ok(out)
}

/// Evaluate a channel term for every row of the table, column-at-a-time
/// when the term is a bare `e.attr` read (the common shape for SUM/AVG/
/// MIN/MAX channels); anything more complex falls back to the per-row
/// evaluator, which builds a full evaluation context per row.
fn channel_column(
    term: &Term,
    table: &EnvTable,
    constants: &FxHashMap<String, Value>,
) -> Result<Vec<f64>> {
    if let Term::Var(VarRef::Row(name)) = term {
        if let Some(attr) = table.schema().attr_id(name) {
            return extract_f64_column(table, attr);
        }
    }
    (0..table.len())
        .map(|r| Ok(eval_row_term(term, table, r, constants)?.as_f64()?))
        .collect()
}

/// Fingerprint of a single term (the channel-column cache key).
fn fingerprint_term(term: &Term) -> u64 {
    fingerprint_terms(std::slice::from_ref(term))
}

/// Fingerprint of one unit's subscription shape: the categorical constraint
/// values plus the exact rectangle bits.  Two probes with the same
/// fingerprint ask the same question, so a materialized answer keyed by it
/// can be served verbatim.  (Same collision tradeoff as the partition
/// fingerprints above.)
fn subscription_fp(required: &RequiredValues, rect: Option<&Rect>) -> u64 {
    let mut h = rustc_hash::FxHasher::default();
    for (equal, v) in required {
        h.write_u8(*equal as u8);
        hash_value(&mut h, v);
    }
    match rect {
        None => h.write_u8(0),
        Some(r) => {
            h.write_u8(1);
            h.write_u64(r.x_min.to_bits());
            h.write_u64(r.x_max.to_bits());
            h.write_u64(r.y_min.to_bits());
            h.write_u64(r.y_max.to_bits());
        }
    }
    h.finish()
}

// ---------------------------------------------------------------------------
// The persistent manager
// ---------------------------------------------------------------------------

/// Counters of one maintenance pass (surfaced per tick by the engine).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintStats {
    /// Incremental delta operations applied to maintained structures.
    pub delta_ops: usize,
    /// Maintained partitions rebuilt from scratch.
    pub partition_rebuilds: usize,
    /// Rows diffed against the mirror.
    pub rows_scanned: usize,
    /// Unit keys touched by the tick's combined effect relation (a hint for
    /// correlating effect volume with delta volume; correctness never
    /// depends on it because movement mutates positions outside the effect
    /// relation).
    pub effect_hints: usize,
    /// Materialized answers patched in place from the delta stream.
    pub mat_patched: usize,
    /// Materialized answers invalidated (a supporting row left the
    /// subscription's scope, the subscriber itself changed, or the patch was
    /// not exact) — the next probe recomputes and re-materializes them.
    pub mat_invalidated: usize,
}

impl MaintStats {
    /// Accumulate another pass.
    pub fn accumulate(&mut self, other: &MaintStats) {
        self.delta_ops += other.delta_ops;
        self.partition_rebuilds += other.partition_rebuilds;
        self.rows_scanned += other.rows_scanned;
        self.effect_hints += other.effect_hints;
        self.mat_patched += other.mat_patched;
        self.mat_invalidated += other.mat_invalidated;
    }
}

/// The maintained state of one aggregate definition: one [`DynamicAggGrid`]
/// per categorical partition plus a mirror of the last indexed row states.
struct DynAggState {
    cat_attrs: Vec<AttrId>,
    channels: Vec<Term>,
    grids: FxHashMap<u64, DynamicAggGrid>,
    partition_values: FxHashMap<u64, Vec<Value>>,
    /// unit key → (partition fp, point, channel values) as last indexed.
    mirror: FxHashMap<i64, (u64, Point2, Vec<f64>)>,
}

/// How a materialized call site's folded answers can be patched from the
/// delta stream.  Decided once per site from the aggregate's spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MatPatch {
    /// Every output is COUNT: any relevant delta adjusts the support count
    /// and the answer is rebuilt exactly from it.
    Count,
    /// Every output is MIN or MAX: relevant inserts fold into the stored
    /// extremum; removing (or updating) a row whose value equals the
    /// extremum invalidates, because the remaining support is unknown.
    MinMax,
    /// Everything else (float SUM/AVG/STDDEV folds): any relevant delta
    /// invalidates — patching would replay the fold in a different order
    /// than a fresh recompute and the answer must stay bit-identical.
    Replace,
}

/// One materialized answer: the folded result of a subscription, kept
/// current by [`sync_mat_state`] until a delta it cannot patch exactly
/// arrives.
pub(crate) struct MatEntry {
    /// The categorical constraint the subscription evaluated to.
    required: RequiredValues,
    /// The subscription rectangle (`None` = whole world).
    rect: Option<Rect>,
    /// The folded answer, bit-identical to a fresh recompute.
    pub(crate) answer: ScriptValue,
    /// COUNT sites: number of supporting rows (exact patches).
    support: i64,
    /// MIN/MAX sites: per-output extremum, `None` when the answer serves a
    /// default (possibly-empty support — not insert-patchable).
    extrema: Vec<Option<f64>>,
}

/// A miss-path recompute queued by a shard for materialization.  Shards
/// probe the manager through a shared borrow, so answers travel back to the
/// absorb seam by value; absorbing is idempotent (same subscription → same
/// bits) and entries of distinct subscriptions never collide, so the merge
/// is order-independent across shard counts.
pub(crate) struct MatWrite {
    pub(crate) name: String,
    pub(crate) key: i64,
    pub(crate) sub_fp: u64,
    pub(crate) entry: MatEntry,
}

/// The materialized state of one aggregate call site: a mirror of the last
/// indexed row states (the delta source) plus the per-subscriber answers.
struct MatAggState {
    cat_attrs: Vec<AttrId>,
    channels: Vec<Term>,
    patch: MatPatch,
    /// MIN/MAX sites: per-output minimize flag.
    minimize: Vec<bool>,
    /// unit key → (categorical values, point, channel values) as last seen.
    mirror: FxHashMap<i64, (Vec<Value>, Point2, Vec<f64>)>,
    /// subscriber key → answers per subscription fingerprint.
    entries: FxHashMap<i64, Vec<(u64, MatEntry)>>,
}

/// The cross-tick owner of aggregate index structures.
///
/// Under `RebuildEachTick` the manager is stateless (structures live only in
/// the per-tick [`TickIndexes`]).  Under the dynamic policies it owns the
/// maintained structures, a mirror of the last indexed environment, and the
/// diff/patch machinery that keeps them in sync: [`IndexManager::end_tick`]
/// is called by the engine after post-processing, movement and resurrection
/// have mutated the environment.
pub struct IndexManager {
    policy: MaintenancePolicy,
    spatial: Option<SpatialAttrs>,
    dynamic: FxHashMap<String, DynAggState>,
    /// Materialized answer stores, one per call site the planner routed to
    /// [`PhysicalBackend::Materialized`].  Deliberately absent from
    /// checkpoints: rebuilt lazily on resume, like the per-tick structures.
    materialized: FxHashMap<String, MatAggState>,
    synced: bool,
    /// Counters of the most recent maintenance pass.
    pub last_maint: MaintStats,
}

/// Whether a planned aggregate is served by a cross-tick maintained
/// structure: decided per call site by the cost-based planner's choice when
/// one is installed, otherwise globally by the maintenance policy.
pub(crate) fn plan_is_maintained(policy: MaintenancePolicy, plan: &PlannedAggregate) -> bool {
    if !plan.is_indexed() {
        return false;
    }
    match &plan.choice {
        Some(choice) => choice.backend == PhysicalBackend::MaintainedGrid,
        None => policy.is_dynamic(),
    }
}

/// Whether a planned aggregate is served from a materialized answer store.
/// Only a cost-based (or forced) choice routes here, and only for the
/// divisible and MIN/MAX strategies: nearest/argbest answers embed output
/// terms of the winning row that can change without any delta the mirror
/// observes, so they are never materialized.
pub(crate) fn plan_is_materialized(plan: &PlannedAggregate) -> bool {
    plan.is_indexed()
        && matches!(
            &plan.strategy,
            AggStrategy::DivisibleTree { .. } | AggStrategy::SweepMinMax
        )
        && plan
            .choice
            .as_ref()
            .is_some_and(|c| c.backend == PhysicalBackend::Materialized)
}

/// The patch class of a materialized site (see [`MatPatch`]).
fn mat_patch_of(plan: &PlannedAggregate) -> MatPatch {
    match &plan.strategy {
        AggStrategy::SweepMinMax => MatPatch::MinMax,
        AggStrategy::DivisibleTree { .. } => {
            let all_count = match &plan.def.spec {
                AggSpec::Simple { outputs } => outputs.iter().all(|o| o.func == SimpleAgg::Count),
                AggSpec::ArgBest { .. } => false,
            };
            if all_count {
                MatPatch::Count
            } else {
                MatPatch::Replace
            }
        }
        _ => MatPatch::Replace,
    }
}

/// Per-output minimize flags of a MIN/MAX site (empty otherwise).
fn mat_minimize_of(plan: &PlannedAggregate) -> Vec<bool> {
    match (&plan.strategy, &plan.def.spec) {
        (AggStrategy::SweepMinMax, AggSpec::Simple { outputs }) => {
            outputs.iter().map(|o| o.func == SimpleAgg::Min).collect()
        }
        _ => Vec::new(),
    }
}

/// The per-partition rebuild threshold for a maintained aggregate: the
/// policy's ratio under the heuristic planner; under a cost-based choice,
/// `Incremental` patches unconditionally and `Rebuild` (the modeled
/// break-even was crossed) rebuilds every touched partition wholesale.
fn effective_rebuild_ratio(policy: MaintenancePolicy, plan: &PlannedAggregate) -> f64 {
    match &plan.choice {
        Some(choice) => match choice.maintenance {
            MaintenanceChoice::Rebuild => 0.0,
            _ => f64::INFINITY,
        },
        None => match policy {
            MaintenancePolicy::Adaptive { rebuild_ratio } => rebuild_ratio,
            _ => f64::INFINITY,
        },
    }
}

impl IndexManager {
    /// Create a manager for a configuration.
    pub fn new(config: &ExecConfig) -> IndexManager {
        IndexManager {
            policy: config.policy,
            spatial: config.spatial,
            dynamic: FxHashMap::default(),
            materialized: FxHashMap::default(),
            synced: false,
            last_maint: MaintStats::default(),
        }
    }

    /// The configured maintenance policy.
    pub fn policy(&self) -> MaintenancePolicy {
        self.policy
    }

    /// Number of maintained aggregate states (0 under `RebuildEachTick`).
    pub fn maintained_aggregates(&self) -> usize {
        self.dynamic.len()
    }

    /// Number of call sites with a materialized answer store.
    pub fn materialized_sites(&self) -> usize {
        self.materialized.len()
    }

    /// Number of live materialized answers across all sites.
    pub fn materialized_entries(&self) -> usize {
        self.materialized
            .values()
            .map(|s| s.entries.values().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// Drop all maintained state (e.g. after out-of-band environment edits);
    /// the next tick rebuilds from scratch.
    pub fn invalidate(&mut self) {
        self.dynamic.clear();
        self.materialized.clear();
        self.synced = false;
    }

    /// Mark the maintained state as out of sync with the environment (the
    /// engine calls this after mutation phases that ran without a
    /// maintenance pass, and after the cost-based planner changed which
    /// call sites are maintained).  Structures are kept; the next
    /// [`IndexManager::prepare`] re-syncs them.
    pub fn mark_stale(&mut self) {
        self.synced = false;
    }

    /// Whether this plan is served by a cross-tick maintained structure
    /// under the manager's policy (per call site when a cost-based choice is
    /// installed).
    pub fn plan_is_maintained(&self, plan: &PlannedAggregate) -> bool {
        plan_is_maintained(self.policy, plan)
    }

    /// Whether this plan is served by a materialized per-site answer store
    /// (a cost-based or forced [`PhysicalBackend::Materialized`] choice on a
    /// strategy whose answers can be patched from deltas).  Materialized
    /// sites need the end-of-tick maintenance pass even when no grid is
    /// maintained: that pass is where the tick's deltas patch the stored
    /// answers.
    pub fn plan_is_materialized(&self, plan: &PlannedAggregate) -> bool {
        plan_is_materialized(plan)
    }

    /// Rows-per-area density measured by the live maintained grids (their
    /// own size hints), if any are alive.  The statistics collector prefers
    /// this over the bounding-box estimate: occupied cells describe where
    /// units actually are.
    pub fn density_hint(&self) -> Option<f64> {
        let mut rows = 0usize;
        let mut area = 0.0f64;
        for state in self.dynamic.values() {
            for grid in state.grids.values() {
                if let Some(d) = AggIndex::density_hint(grid) {
                    let n = AggIndex::size_hint_rows(grid);
                    rows += n;
                    area += n as f64 / d;
                }
            }
        }
        (rows > 0 && area > 0.0).then(|| rows as f64 / area)
    }

    /// Synchronize the maintained structures with the environment.  Called
    /// by the engine after the mutation phases of each tick (and lazily
    /// before execution when the state is stale).  `effect_keys` — the unit
    /// keys touched by the tick's combined effect relation — is a hint used
    /// for accounting; correctness comes from diffing against the mirror,
    /// because movement resolves collisions outside the effect relation.
    pub fn end_tick(
        &mut self,
        table: &EnvTable,
        planned: &FxHashMap<String, PlannedAggregate>,
        constants: &FxHashMap<String, Value>,
    ) -> Result<MaintStats> {
        let policy = self.policy;
        let any_grid = planned.values().any(|p| plan_is_maintained(policy, p));
        let any_mat = planned.values().any(|p| plan_is_materialized(p));
        if !any_grid && !any_mat {
            self.dynamic.clear();
            self.materialized.clear();
            self.synced = true;
            return Ok(MaintStats::default());
        }
        let mut stats = MaintStats::default();
        let Some(spatial) = self.spatial else {
            return Ok(MaintStats::default());
        };
        // Drop states for aggregates that disappeared from the registry or
        // are no longer routed to a maintained structure.
        self.dynamic.retain(|name, _| {
            planned
                .get(name)
                .is_some_and(|p| plan_is_maintained(policy, p))
        });
        self.materialized
            .retain(|name, _| planned.get(name).is_some_and(|p| plan_is_materialized(p)));
        for (name, plan) in planned {
            if plan_is_maintained(policy, plan) {
                let state = self
                    .dynamic
                    .entry(name.clone())
                    .or_insert_with(|| DynAggState {
                        cat_attrs: Vec::new(),
                        channels: plan.channel_terms(),
                        grids: FxHashMap::default(),
                        partition_values: FxHashMap::default(),
                        mirror: FxHashMap::default(),
                    });
                state.cat_attrs = resolve_cat_attrs(&plan.analysis, table)?;
                let ratio = effective_rebuild_ratio(policy, plan);
                sync_state(state, table, spatial, constants, ratio, &mut stats)?;
            }
            if plan_is_materialized(plan) {
                let state = self
                    .materialized
                    .entry(name.clone())
                    .or_insert_with(|| MatAggState {
                        cat_attrs: Vec::new(),
                        channels: plan.channel_terms(),
                        patch: MatPatch::Replace,
                        minimize: Vec::new(),
                        mirror: FxHashMap::default(),
                        entries: FxHashMap::default(),
                    });
                state.cat_attrs = resolve_cat_attrs(&plan.analysis, table)?;
                state.channels = plan.channel_terms();
                state.patch = mat_patch_of(plan);
                state.minimize = mat_minimize_of(plan);
                sync_mat_state(state, table, spatial, constants, &mut stats)?;
            }
        }
        self.synced = true;
        self.last_maint = stats;
        Ok(stats)
    }

    /// [`IndexManager::end_tick`] plus accounting of the tick's effect
    /// relation — the engine's hand-back entry point after post-processing,
    /// movement and resurrection.
    pub fn end_tick_with_effects(
        &mut self,
        table: &EnvTable,
        effects: &sgl_env::EffectBuffer,
        planned: &FxHashMap<String, PlannedAggregate>,
        constants: &FxHashMap<String, Value>,
    ) -> Result<MaintStats> {
        let mut stats = self.end_tick(table, planned, constants)?;
        stats.effect_hints = effects.len();
        self.last_maint = stats;
        Ok(stats)
    }

    /// Ensure the maintained state is usable before a tick executes; no-op
    /// when [`IndexManager::end_tick`] already synced it.
    pub fn prepare(
        &mut self,
        table: &EnvTable,
        planned: &FxHashMap<String, PlannedAggregate>,
        constants: &FxHashMap<String, Value>,
    ) -> Result<MaintStats> {
        if self.synced {
            return Ok(MaintStats::default());
        }
        self.end_tick(table, planned, constants)
    }

    fn state(&self, name: &str) -> Option<&DynAggState> {
        self.dynamic.get(name)
    }

    /// Absorb the miss-path recomputes of one tick into the materialized
    /// answer stores.  Writes are sorted before insertion so the store's
    /// layout — and therefore every later serve/patch pass — is independent
    /// of shard count and completion order.  Writes for sites that lost
    /// their store (the plan changed mid-flight) are dropped.
    pub(crate) fn absorb_materialized(&mut self, mut writes: Vec<MatWrite>) -> usize {
        if writes.is_empty() {
            return 0;
        }
        writes.sort_by(|a, b| {
            (a.name.as_str(), a.key, a.sub_fp).cmp(&(b.name.as_str(), b.key, b.sub_fp))
        });
        let mut absorbed = 0;
        for w in writes {
            let Some(state) = self.materialized.get_mut(&w.name) else {
                continue;
            };
            let slot = state.entries.entry(w.key).or_default();
            match slot.iter_mut().find(|(fp, _)| *fp == w.sub_fp) {
                // Duplicate recomputes of one subscription carry the same
                // bits; keeping the last is idempotent.
                Some((_, entry)) => *entry = w.entry,
                None => slot.push((w.sub_fp, w.entry)),
            }
            absorbed += 1;
        }
        absorbed
    }
}

fn resolve_cat_attrs(analysis: &FilterAnalysis, table: &EnvTable) -> Result<Vec<AttrId>> {
    analysis
        .cat_attr_names()
        .iter()
        .map(|n| {
            table
                .schema()
                .attr_id(n)
                .ok_or_else(|| ExecError::Internal(format!("unknown categorical attribute `{n}`")))
        })
        .collect()
}

/// Diff one aggregate's mirror against the environment and patch (or
/// rebuild) its per-partition grids.
fn sync_state(
    state: &mut DynAggState,
    table: &EnvTable,
    spatial: SpatialAttrs,
    constants: &FxHashMap<String, Value>,
    rebuild_ratio: f64,
    stats: &mut MaintStats,
) -> Result<()> {
    let schema = table.schema();
    let channels = state.channels.len();
    let mut new_mirror: FxHashMap<i64, (u64, Point2, Vec<f64>)> =
        FxHashMap::with_capacity_and_hasher(table.len(), Default::default());
    let mut deltas: FxHashMap<u64, Vec<IndexDelta>> = FxHashMap::default();
    let mut part_sizes: FxHashMap<u64, usize> = FxHashMap::default();

    // The diff scan reads every cell of every indexed attribute: pull each
    // column once (one page walk apiece) and walk plain vectors, instead of
    // per-row page arithmetic on every access.
    let keys = table.column_i64(schema.key_attr())?;
    let xs = extract_f64_column(table, spatial.x)?;
    let ys = extract_f64_column(table, spatial.y)?;
    let cat_cols: Vec<Vec<Value>> = state
        .cat_attrs
        .iter()
        .map(|a| table.column_values(*a))
        .collect::<std::result::Result<_, _>>()?;
    let chan_cols: Vec<Vec<f64>> = state
        .channels
        .iter()
        .map(|c| channel_column(c, table, constants))
        .collect::<Result<_>>()?;

    for row_idx in 0..table.len() {
        let key = keys[row_idx];
        let part = {
            let mut h = rustc_hash::FxHasher::default();
            for col in &cat_cols {
                hash_value(&mut h, &col[row_idx]);
            }
            h.finish()
        };
        state
            .partition_values
            .entry(part)
            .or_insert_with(|| cat_cols.iter().map(|col| col[row_idx].clone()).collect());
        let point = Point2::new(xs[row_idx], ys[row_idx]);
        let mut chan_values = Vec::with_capacity(channels);
        for col in &chan_cols {
            chan_values.push(col[row_idx]);
        }
        *part_sizes.entry(part).or_insert(0) += 1;
        let id = key as u64;
        match state.mirror.remove(&key) {
            None => deltas.entry(part).or_default().push(IndexDelta::Insert {
                row: IndexRow::new(id, point, chan_values.clone()),
            }),
            Some((old_part, old_point, old_values)) => {
                if old_part != part {
                    deltas
                        .entry(old_part)
                        .or_default()
                        .push(IndexDelta::Remove {
                            id,
                            point: old_point,
                        });
                    deltas.entry(part).or_default().push(IndexDelta::Insert {
                        row: IndexRow::new(id, point, chan_values.clone()),
                    });
                } else if old_point != point || old_values != chan_values {
                    deltas.entry(part).or_default().push(IndexDelta::Update {
                        id,
                        old_point,
                        row: IndexRow::new(id, point, chan_values.clone()),
                    });
                }
            }
        }
        new_mirror.insert(key, (part, point, chan_values));
    }
    // Whatever is left in the old mirror vanished from the environment.
    for (key, (part, point, _)) in state.mirror.drain() {
        deltas.entry(part).or_default().push(IndexDelta::Remove {
            id: key as u64,
            point,
        });
    }
    stats.rows_scanned += table.len();

    for (part, part_deltas) in deltas {
        let size = part_sizes.get(&part).copied().unwrap_or(0);
        if size == 0 {
            // Partition emptied out entirely.
            state.grids.remove(&part);
            state.partition_values.remove(&part);
            continue;
        }
        let grid = state
            .grids
            .entry(part)
            .or_insert_with(|| DynamicAggGrid::new(0.0, channels));
        let ratio = part_deltas.len() as f64 / size as f64;
        if AggIndex::is_empty(grid) || ratio > rebuild_ratio {
            // Rebuild this partition from the new mirror.
            let rows: Vec<IndexRow> = new_mirror
                .iter()
                .filter(|(_, (p, _, _))| *p == part)
                .map(|(key, (_, point, values))| IndexRow::new(*key as u64, *point, values.clone()))
                .collect();
            grid.rebuild(&rows);
            stats.partition_rebuilds += 1;
        } else {
            for delta in &part_deltas {
                grid.apply_delta(delta);
            }
            stats.delta_ops += part_deltas.len();
        }
    }
    state.mirror = new_mirror;
    Ok(())
}

/// One row's change between two materialized-mirror snapshots.
struct MatDelta {
    key: i64,
    old: Option<(Vec<Value>, Point2, Vec<f64>)>,
    new: Option<(Vec<Value>, Point2, Vec<f64>)>,
}

/// Is a row snapshot inside an entry's subscription scope?
fn mat_relevant(side: Option<&(Vec<Value>, Point2, Vec<f64>)>, entry: &MatEntry) -> bool {
    side.is_some_and(|(cats, point, _)| {
        partition_matches(cats, &entry.required)
            && entry.rect.as_ref().is_none_or(|r| r.contains(point))
    })
}

fn bits_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Apply one tick's delta list to a materialized entry.  `Some(touched)`
/// keeps the entry (patched in place when `touched`); `None` means it
/// cannot be patched exactly and must be dropped (the next probe recomputes
/// and re-materializes it).
fn mat_patch_entry(
    entry: &mut MatEntry,
    deltas: &[MatDelta],
    patch: MatPatch,
    minimize: &[bool],
) -> Option<bool> {
    let mut touched = false;
    let mut count_touched = false;
    for d in deltas {
        let old_rel = mat_relevant(d.old.as_ref(), entry);
        let new_rel = mat_relevant(d.new.as_ref(), entry);
        if !old_rel && !new_rel {
            continue;
        }
        // A row that stayed in scope with unchanged channel values cannot
        // change the fold (positions feed membership, channels feed the
        // outputs): the common "moved within the rectangle" delta.
        if old_rel && new_rel {
            if let (Some((_, _, oc)), Some((_, _, nc))) = (&d.old, &d.new) {
                if bits_equal(oc, nc) {
                    continue;
                }
            }
        }
        touched = true;
        match patch {
            MatPatch::Replace => return None,
            MatPatch::Count => {
                entry.support += new_rel as i64 - old_rel as i64;
                count_touched = true;
            }
            MatPatch::MinMax => {
                if old_rel {
                    let (_, _, chans) = d.old.as_ref()?;
                    if !mat_minmax_removal_safe(entry, chans) {
                        return None;
                    }
                }
                if new_rel {
                    let (_, _, chans) = d.new.as_ref()?;
                    if !mat_minmax_insert(entry, chans, minimize) {
                        return None;
                    }
                }
            }
        }
    }
    if count_touched {
        if entry.support <= 0 {
            // Support drained (or the patch lost track): serve the defaults
            // through a fresh recompute instead of guessing.
            return None;
        }
        let ScriptValue::Record(fields) = &mut entry.answer else {
            return None;
        };
        for (_, v) in fields.iter_mut() {
            *v = Value::Int(entry.support);
        }
    }
    Some(touched)
}

/// Removing a row never changes a MIN/MAX answer unless the row's value
/// *is* the extremum (then the remaining support is unknown → invalidate).
/// Unknown emptiness (`None` extremum) is never removal-safe.
fn mat_minmax_removal_safe(entry: &MatEntry, chans: &[f64]) -> bool {
    entry
        .extrema
        .iter()
        .enumerate()
        .all(|(i, e)| e.is_some_and(|e| chans.get(i).is_some_and(|v| v.to_bits() != e.to_bits())))
}

/// Fold an inserted row into a MIN/MAX answer.  Bails out (→ invalidate)
/// on possibly-empty answers, NaN values, and ±0 ties whose folded bits
/// could differ from a fresh recompute.
fn mat_minmax_insert(entry: &mut MatEntry, chans: &[f64], minimize: &[bool]) -> bool {
    for i in 0..entry.extrema.len() {
        let Some(e) = entry.extrema[i] else {
            return false;
        };
        let Some(&v) = chans.get(i) else {
            return false;
        };
        if v.is_nan() {
            return false;
        }
        let better = if minimize[i] { v < e } else { v > e };
        if better {
            entry.extrema[i] = Some(v);
        } else if v == e && v.to_bits() != e.to_bits() {
            return false;
        }
    }
    let ScriptValue::Record(fields) = &mut entry.answer else {
        return false;
    };
    if fields.len() != entry.extrema.len() {
        return false;
    }
    for ((_, v), e) in fields.iter_mut().zip(&entry.extrema) {
        match e {
            Some(e) => *v = Value::Float(*e),
            None => return false,
        }
    }
    true
}

/// Diff one materialized site's mirror against the environment and patch
/// (or invalidate) the stored answers from the resulting delta stream.
fn sync_mat_state(
    state: &mut MatAggState,
    table: &EnvTable,
    spatial: SpatialAttrs,
    constants: &FxHashMap<String, Value>,
    stats: &mut MaintStats,
) -> Result<()> {
    let schema = table.schema();
    let keys = table.column_i64(schema.key_attr())?;
    let xs = extract_f64_column(table, spatial.x)?;
    let ys = extract_f64_column(table, spatial.y)?;
    let cat_cols: Vec<Vec<Value>> = state
        .cat_attrs
        .iter()
        .map(|a| table.column_values(*a))
        .collect::<std::result::Result<_, _>>()?;
    let chan_cols: Vec<Vec<f64>> = state
        .channels
        .iter()
        .map(|c| channel_column(c, table, constants))
        .collect::<Result<_>>()?;

    let mut new_mirror: FxHashMap<i64, (Vec<Value>, Point2, Vec<f64>)> =
        FxHashMap::with_capacity_and_hasher(table.len(), Default::default());
    let mut deltas: Vec<MatDelta> = Vec::new();
    for row_idx in 0..table.len() {
        let key = keys[row_idx];
        let cats: Vec<Value> = cat_cols.iter().map(|c| c[row_idx].clone()).collect();
        let point = Point2::new(xs[row_idx], ys[row_idx]);
        let chans: Vec<f64> = chan_cols.iter().map(|c| c[row_idx]).collect();
        match state.mirror.remove(&key) {
            None => deltas.push(MatDelta {
                key,
                old: None,
                new: Some((cats.clone(), point, chans.clone())),
            }),
            Some(old) => {
                let same_cats = old.0.len() == cats.len()
                    && old.0.iter().zip(&cats).all(|(a, b)| same_value(a, b));
                if !same_cats || old.1 != point || !bits_equal(&old.2, &chans) {
                    deltas.push(MatDelta {
                        key,
                        old: Some(old),
                        new: Some((cats.clone(), point, chans.clone())),
                    });
                }
            }
        }
        new_mirror.insert(key, (cats, point, chans));
    }
    // Whatever is left in the old mirror vanished from the environment.
    for (key, old) in state.mirror.drain() {
        deltas.push(MatDelta {
            key,
            old: Some(old),
            new: None,
        });
    }
    state.mirror = new_mirror;
    stats.rows_scanned += table.len();

    // Subscriptions accumulate per (subscriber, fingerprint); a subscriber
    // probing with ever-changing arguments would otherwise grow the store
    // without bound (its stale fingerprints are never served again).
    let cap = 8 * (table.len() + 64);
    let mut entry_count: usize = state.entries.values().map(Vec::len).sum();
    if entry_count > cap {
        stats.mat_invalidated += entry_count;
        state.entries.clear();
        return Ok(());
    }
    if deltas.is_empty() || entry_count == 0 {
        return Ok(());
    }

    // A changed (or dead) subscriber invalidates its own answers: its probe
    // arguments may derive from any of its attributes, including some the
    // mirror does not track.
    for d in &deltas {
        if let Some(dropped) = state.entries.remove(&d.key) {
            stats.mat_invalidated += dropped.len();
            entry_count -= dropped.len();
        }
    }

    // Mass-invalidation guard: when the patch pass would cost more than the
    // recomputes it saves, drop everything and let the misses rebuild.
    if deltas.len().saturating_mul(entry_count) > 256 * (table.len() + 64) {
        stats.mat_invalidated += entry_count;
        state.entries.clear();
        return Ok(());
    }

    let patch = state.patch;
    let minimize = &state.minimize;
    for entries in state.entries.values_mut() {
        entries.retain_mut(
            |(_, entry)| match mat_patch_entry(entry, &deltas, patch, minimize) {
                Some(touched) => {
                    stats.mat_patched += touched as usize;
                    true
                }
                None => {
                    stats.mat_invalidated += 1;
                    false
                }
            },
        );
    }
    state.entries.retain(|_, v| !v.is_empty());
    Ok(())
}

// ---------------------------------------------------------------------------
// Per-tick probe cache
// ---------------------------------------------------------------------------

/// The backend label a per-tick structure kind reports to the statistics
/// collector (the *executed* choice surfaced in `explain`).
fn served_backend_of(kind: AggStructureKind) -> PhysicalBackend {
    match kind {
        AggStructureKind::LayeredTree { .. } => PhysicalBackend::LayeredTree,
        AggStructureKind::QuadTree { .. } => PhysicalBackend::QuadTree,
        AggStructureKind::DynamicGrid { .. } => PhysicalBackend::MaintainedGrid,
    }
}

/// A categorical partition of the environment.
struct Partition {
    values: Vec<Value>,
    rows: Vec<u32>,
}

/// The per-tick cache of index structures (the rebuild side of the policy
/// spectrum), layered over the persistent [`IndexManager`] (the maintained
/// side).  Structures are built lazily on first use and discarded when the
/// tick's `TickIndexes` is dropped.
pub struct TickIndexes<'a> {
    manager: &'a IndexManager,
    table: &'a EnvTable,
    spatial: SpatialAttrs,
    config: &'a ExecConfig,
    constants: &'a FxHashMap<String, Value>,
    /// partition signature fp → (attr ids, partition fp → partition).
    partitions: FxHashMap<u64, FxHashMap<u64, Partition>>,
    /// (sig fp, partition fp, channel fp) → aggregate structure.
    agg_structs: FxHashMap<(u64, u64, u64), Box<dyn AggIndex + Send>>,
    /// (sig fp, partition fp) → (kD-tree, row ids in tree order).
    kd_trees: FxHashMap<(u64, u64), (KdTree, Vec<u32>)>,
    /// (sig fp, partition fp) → (enumeration range tree, row ids).
    enum_trees: FxHashMap<(u64, u64), (RangeTree2D, Vec<u32>)>,
    /// sweep fingerprint → per-row best (value, row id) results.
    sweeps: FxHashMap<u64, Vec<Option<(f64, u32)>>>,
    /// Statistics.
    pub stats: TickStats,
    /// Per-call-site observations (selectivity, rect areas, served
    /// backends) for the cost-based planner's statistics feedback loop.
    pub obs: TickObservations,
    /// Lazily extracted position columns: one page walk per tick the first
    /// time a structure build or sweep batch needs points, then every
    /// subsequent point read is a plain vector index.
    positions: Option<(Vec<f64>, Vec<f64>)>,
    /// Lazily extracted key column (kD-tree tie-break ordering and
    /// nearest-hit key lookups).
    keys: Option<Vec<i64>>,
    /// Channel terms evaluated column-at-a-time, keyed by term fingerprint
    /// — shared across the partitions of one tick so a multi-partition
    /// build still evaluates each term once per row.
    chan_cols: FxHashMap<u64, Vec<f64>>,
    /// Scratch: matching grid fingerprints of the current probe, reused
    /// across probes to keep the hot path allocation-free.
    fps_scratch: Vec<u64>,
    /// Scratch: the running accumulator of the current divisible probe.
    probe_acc: DivAcc,
    /// Scratch: one grid's partial accumulator within a probe (kept separate
    /// from `probe_acc` so the merge order — per-grid partial, then merge —
    /// is bit-identical to building a fresh accumulator per grid).
    part_acc: DivAcc,
    /// Miss-path recomputes of materialized sites, queued for
    /// [`IndexManager::absorb_materialized`] once the executor regains the
    /// mutable manager borrow after the shards join.
    mat_writes: Vec<MatWrite>,
}

impl IndexManager {
    /// Open a per-tick probe cache through a shared borrow — the executor's
    /// entry point, where several shards may probe one manager concurrently.
    /// Maintained state must already be in sync ([`IndexManager::prepare`] /
    /// [`IndexManager::end_tick`]); this never mutates the manager.
    pub fn tick_view<'a>(
        &'a self,
        table: &'a EnvTable,
        config: &'a ExecConfig,
        constants: &'a FxHashMap<String, Value>,
    ) -> Result<Option<TickIndexes<'a>>> {
        let Some(spatial) = config.spatial else {
            return Ok(None);
        };
        if !self.synced
            && (self.policy.is_dynamic()
                || !self.dynamic.is_empty()
                || !self.materialized.is_empty())
        {
            return Err(ExecError::Internal(
                "tick_view on an unsynced manager (call prepare/end_tick first)".into(),
            ));
        }
        Ok(Some(TickIndexes {
            manager: self,
            table,
            spatial,
            config,
            constants,
            partitions: FxHashMap::default(),
            agg_structs: FxHashMap::default(),
            kd_trees: FxHashMap::default(),
            enum_trees: FxHashMap::default(),
            sweeps: FxHashMap::default(),
            stats: TickStats::default(),
            obs: TickObservations::default(),
            positions: None,
            keys: None,
            chan_cols: FxHashMap::default(),
            fps_scratch: Vec::new(),
            probe_acc: DivAcc::identity(0),
            part_acc: DivAcc::identity(0),
            mat_writes: Vec::new(),
        }))
    }
}

impl<'a> TickIndexes<'a> {
    /// Extract the position columns once per tick (plain indexing after).
    fn ensure_positions(&mut self) -> Result<()> {
        if self.positions.is_none() {
            self.positions = Some((
                extract_f64_column(self.table, self.spatial.x)?,
                extract_f64_column(self.table, self.spatial.y)?,
            ));
        }
        Ok(())
    }

    /// Extract the key column once per tick.
    fn ensure_keys(&mut self) -> Result<()> {
        if self.keys.is_none() {
            self.keys = Some(self.table.column_i64(self.table.schema().key_attr())?);
        }
        Ok(())
    }

    /// Evaluate (and cache) a channel term's per-row values; returns the
    /// cache key.
    fn ensure_chan_col(&mut self, term: &Term) -> Result<u64> {
        let fp = fingerprint_term(term);
        if !self.chan_cols.contains_key(&fp) {
            let col = channel_column(term, self.table, self.constants)?;
            self.chan_cols.insert(fp, col);
        }
        Ok(fp)
    }

    /// Ensure the partition map for a set of categorical attributes exists;
    /// returns its signature fingerprint.
    fn ensure_partitions(&mut self, cat_attrs: &[AttrId]) -> Result<u64> {
        let sig = fingerprint_attrs(cat_attrs);
        if !self.partitions.contains_key(&sig) {
            // One page walk per categorical column, then fingerprint from
            // the extracted vectors — the per-row value vector is only
            // materialised the first time a partition appears.
            let cat_cols: Vec<Vec<Value>> = cat_attrs
                .iter()
                .map(|a| self.table.column_values(*a))
                .collect::<std::result::Result<_, _>>()?;
            let mut map: FxHashMap<u64, Partition> = FxHashMap::default();
            for idx in 0..self.table.len() {
                let mut h = rustc_hash::FxHasher::default();
                for col in &cat_cols {
                    hash_value(&mut h, &col[idx]);
                }
                let fp = h.finish();
                map.entry(fp)
                    .or_insert_with(|| Partition {
                        values: cat_cols.iter().map(|col| col[idx].clone()).collect(),
                        rows: Vec::new(),
                    })
                    .rows
                    .push(idx as u32);
            }
            self.partitions.insert(sig, map);
        }
        Ok(sig)
    }

    /// Partition fingerprints under a signature, with deterministic order.
    fn partition_fps(&self, sig: u64) -> Vec<u64> {
        let mut fps: Vec<u64> = self
            .partitions
            .get(&sig)
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default();
        fps.sort_unstable();
        fps
    }

    fn partition_rows(&self, sig: u64, fp: u64) -> Vec<u32> {
        self.partitions
            .get(&sig)
            .and_then(|m| m.get(&fp))
            .map(|p| p.rows.clone())
            .unwrap_or_default()
    }

    fn partition_values(&self, sig: u64, fp: u64) -> Vec<Value> {
        self.partitions
            .get(&sig)
            .and_then(|m| m.get(&fp))
            .map(|p| p.values.clone())
            .unwrap_or_default()
    }

    /// Resolve the categorical attribute ids of an analysis (sorted by name,
    /// matching the order of `required_values`).
    fn cat_attr_ids(&self, analysis: &FilterAnalysis) -> Result<Vec<AttrId>> {
        resolve_cat_attrs(analysis, self.table)
    }

    /// Evaluate the categorical constraint values for one probing unit, in
    /// the same order as [`Self::cat_attr_ids`].
    fn required_values(
        analysis: &FilterAnalysis,
        unit_ctx: &EvalContext<'_>,
    ) -> Result<RequiredValues> {
        let mut no_aggs = NoAggregates;
        let names = analysis.cat_attr_names();
        let mut out = Vec::with_capacity(names.len());
        for name in names {
            // If several constraints mention the same attribute we evaluate
            // the first (our builtins never have more than one per attribute).
            // The names come from the constraint list itself, so the find
            // can only miss on an internal invariant violation.
            let Some(c) = analysis.cats.iter().find(|c| c.attr == name) else {
                return Err(ExecError::Internal(format!(
                    "categorical constraint for `{name}` disappeared from its analysis"
                )));
            };
            let v = eval_term(&c.value, unit_ctx, &mut no_aggs)?
                .as_scalar()?
                .clone();
            out.push((c.equal, v));
        }
        Ok(out)
    }

    /// Evaluate the rectangle of an analysis for one probing unit.  `None`
    /// when the analysis has no spatial bounds (aggregate over the whole
    /// world).
    fn rect_for(analysis: &FilterAnalysis, unit_ctx: &EvalContext<'_>) -> Result<Option<Rect>> {
        let (Some(x_lo), Some(x_hi), Some(y_lo), Some(y_hi)) = (
            &analysis.x_lo,
            &analysis.x_hi,
            &analysis.y_lo,
            &analysis.y_hi,
        ) else {
            return Ok(None);
        };
        let mut no_aggs = NoAggregates;
        let mut get = |t: &Term| -> Result<f64> {
            Ok(eval_term(t, unit_ctx, &mut no_aggs)?
                .as_scalar()?
                .as_f64()?)
        };
        Ok(Some(Rect::new(
            get(x_lo)?,
            get(x_hi)?,
            get(y_lo)?,
            get(y_hi)?,
        )))
    }

    /// The maintained state for an aggregate, when the policy (or the
    /// cost-based choice) keeps one.
    fn maintained(&self, plan: &PlannedAggregate) -> Option<&'a DynAggState> {
        if plan_is_maintained(self.config.policy, plan) {
            self.manager.state(&plan.def.name)
        } else {
            None
        }
    }

    /// Fill `fps` with the fingerprints of the maintained grids whose
    /// partitions match the constraints, in deterministic (sorted) order —
    /// the allocation-free replacement for collecting matching grid
    /// references on every probe.
    fn fill_matching_fps(state: &DynAggState, required: &RequiredValues, fps: &mut Vec<u64>) {
        fps.clear();
        fps.extend(state.grids.keys().copied().filter(|fp| {
            state
                .partition_values
                .get(fp)
                .is_some_and(|values| partition_matches(values, required))
        }));
        fps.sort_unstable();
    }

    fn ensure_agg_struct(
        &mut self,
        kind: AggStructureKind,
        sig: u64,
        part_fp: u64,
        channels: &[Term],
    ) -> Result<(u64, u64, u64)> {
        let key = (sig, part_fp, fingerprint_terms(channels));
        if self.agg_structs.contains_key(&key) {
            return Ok(key);
        }
        let rows = self.partition_rows(sig, part_fp);
        let chan_fps: Vec<u64> = channels
            .iter()
            .map(|c| self.ensure_chan_col(c))
            .collect::<Result<_>>()?;
        self.ensure_positions()?;
        let index_rows: Vec<IndexRow> = {
            let (xs, ys) = self
                .positions
                .as_ref()
                .ok_or_else(|| ExecError::Internal("positions vanished after ensure".into()))?;
            rows.iter()
                .map(|&r| {
                    let r = r as usize;
                    let point = Point2::new(xs[r], ys[r]);
                    let values: Vec<f64> =
                        chan_fps.iter().map(|fp| self.chan_cols[fp][r]).collect();
                    IndexRow::new(r as u64, point, values)
                })
                .collect()
        };
        self.stats.indexes_built += 1;
        self.agg_structs
            .insert(key, build_agg_index(kind, channels.len(), &index_rows));
        Ok(key)
    }

    fn ensure_kd_tree(&mut self, sig: u64, part_fp: u64) -> Result<()> {
        if self.kd_trees.contains_key(&(sig, part_fp)) {
            return Ok(());
        }
        let mut rows = self.partition_rows(sig, part_fp);
        // Local ids in ascending key order: the kD-tree breaks exact
        // distance ties toward the smallest local id, which this ordering
        // turns into the reference "smallest key wins" rule.  Keys are
        // unique, so the unstable sort is deterministic.
        self.ensure_keys()?;
        self.ensure_positions()?;
        let points: Vec<Point2> = {
            let keys = self
                .keys
                .as_ref()
                .ok_or_else(|| ExecError::Internal("keys vanished after ensure".into()))?;
            rows.sort_unstable_by_key(|r| keys[*r as usize]);
            let (xs, ys) = self
                .positions
                .as_ref()
                .ok_or_else(|| ExecError::Internal("positions vanished after ensure".into()))?;
            rows.iter()
                .map(|&r| Point2::new(xs[r as usize], ys[r as usize]))
                .collect()
        };
        self.stats.indexes_built += 1;
        self.kd_trees
            .insert((sig, part_fp), (KdTree::build(&points), rows));
        Ok(())
    }

    /// Ensure an enumeration range tree over a partition (used for indexed
    /// area-of-effect actions, §5.4).
    pub fn ensure_enum_tree(&mut self, cat_attrs: &[AttrId], part_fp: u64) -> Result<(u64, u64)> {
        let sig = self.ensure_partitions(cat_attrs)?;
        if !self.enum_trees.contains_key(&(sig, part_fp)) {
            let rows = self.partition_rows(sig, part_fp);
            self.ensure_positions()?;
            let points: Vec<Point2> = {
                let (xs, ys) = self
                    .positions
                    .as_ref()
                    .ok_or_else(|| ExecError::Internal("positions vanished after ensure".into()))?;
                rows.iter()
                    .map(|&r| Point2::new(xs[r as usize], ys[r as usize]))
                    .collect()
            };
            self.stats.indexes_built += 1;
            self.enum_trees
                .insert((sig, part_fp), (RangeTree2D::build(&points), rows));
        }
        Ok((sig, part_fp))
    }

    /// Enumerate the row ids of a partition falling inside a rectangle.
    pub fn enum_query(
        &mut self,
        cat_attrs: &[AttrId],
        part_fp: u64,
        rect: &Rect,
    ) -> Result<Vec<u32>> {
        let key = self.ensure_enum_tree(cat_attrs, part_fp)?;
        let (tree, rows) = self
            .enum_trees
            .get(&key)
            .ok_or_else(|| ExecError::Internal("enumeration tree vanished after ensure".into()))?;
        self.stats.index_probes += 1;
        Ok(tree
            .query(rect)
            .into_iter()
            .map(|i| rows[i as usize])
            .collect())
    }

    /// Partition fingerprints for a categorical signature (building the
    /// partition map first).
    pub fn partition_fps_for(&mut self, cat_attrs: &[AttrId]) -> Result<Vec<u64>> {
        let sig = self.ensure_partitions(cat_attrs)?;
        Ok(self.partition_fps(sig))
    }

    /// Evaluate a planned aggregate for one probing unit through its index.
    ///
    /// `ctx.bindings` must already hold the call's bound parameters (`range`
    /// etc.) and nothing else needs to be visible: built-in aggregate
    /// definitions are *closed* — their analysis terms reference parameters,
    /// `u.*`/`e.*` attributes and named constants only, never the calling
    /// script's `let` bindings — so callers hand over their reusable
    /// parameter map directly instead of this function cloning and merging
    /// binding maps on every probe.
    pub fn evaluate(
        &mut self,
        planned: &PlannedAggregate,
        ctx: &EvalContext<'_>,
    ) -> Result<Option<ScriptValue>> {
        // A cost-based choice of `Scan` sends the probe back to the caller's
        // scan path (identical results, no structure built).
        if planned
            .choice
            .as_ref()
            .is_some_and(|c| c.backend == PhysicalBackend::Scan)
        {
            return Ok(None);
        }
        if plan_is_materialized(planned) {
            return self.eval_materialized(planned, ctx).map(Some);
        }
        match &planned.strategy {
            AggStrategy::Scan => Ok(None),
            AggStrategy::DivisibleTree {
                channels,
                output_channels,
            } => self
                .eval_divisible(planned, channels, output_channels, ctx)
                .map(Some),
            AggStrategy::KdNearest => self.eval_nearest(planned, ctx).map(Some),
            AggStrategy::SweepMinMax => self.eval_min_max(planned, ctx).map(Some),
        }
    }

    /// Look up one subscriber's materialized answer (shared manager borrow,
    /// so the reference outlives `&mut self` calls on the cache).
    fn mat_entry(&self, name: &str, key: i64, sub_fp: u64) -> Option<&'a MatEntry> {
        let state = self.manager.materialized.get(name)?;
        state
            .entries
            .get(&key)?
            .iter()
            .find(|(fp, _)| *fp == sub_fp)
            .map(|(_, e)| e)
    }

    /// Take the tick's queued materialized writes (the absorb seam).
    pub(crate) fn take_mat_writes(&mut self) -> Vec<MatWrite> {
        std::mem::take(&mut self.mat_writes)
    }

    /// Serve a materialized call site: answer from the store when the
    /// subscription is live, otherwise recompute through the per-tick
    /// structure path and queue the answer for materialization.
    fn eval_materialized(
        &mut self,
        planned: &PlannedAggregate,
        ctx: &EvalContext<'_>,
    ) -> Result<ScriptValue> {
        let required = Self::required_values(&planned.analysis, ctx)?;
        let rect = Self::rect_for(&planned.analysis, ctx)?;
        let sub_fp = subscription_fp(&required, rect.as_ref());
        let key = ctx.unit_key;
        if let Some(entry) = self.mat_entry(&planned.def.name, key, sub_fp) {
            self.stats.index_probes += 1;
            self.stats.materialized_serves += 1;
            self.obs
                .record_served(&planned.def.name, PhysicalBackend::Materialized);
            return Ok(entry.answer.clone());
        }
        match &planned.strategy {
            AggStrategy::DivisibleTree {
                channels,
                output_channels,
            } => {
                let answer = self.eval_divisible(planned, channels, output_channels, ctx)?;
                // `probe_acc` still holds this probe's fold.
                let support = self.probe_acc.count() as i64;
                self.mat_writes.push(MatWrite {
                    name: planned.def.name.clone(),
                    key,
                    sub_fp,
                    entry: MatEntry {
                        required,
                        rect,
                        answer: answer.clone(),
                        support,
                        extrema: Vec::new(),
                    },
                });
                Ok(answer)
            }
            AggStrategy::SweepMinMax => {
                let answer = self.eval_min_max(planned, ctx)?;
                let outputs = match &planned.def.spec {
                    AggSpec::Simple { outputs } => outputs,
                    AggSpec::ArgBest { .. } => {
                        return Err(ExecError::Internal(
                            "min/max strategy on an ArgBest aggregate".into(),
                        ))
                    }
                };
                // A field bitwise-equal to its default cannot be told apart
                // from an empty answer: mark it not insert-patchable.
                let extrema: Vec<Option<f64>> = match &answer {
                    ScriptValue::Record(fields) => outputs
                        .iter()
                        .zip(fields)
                        .map(|(o, (_, v))| match v {
                            Value::Float(x) if !same_value(v, &o.default) => Some(*x),
                            _ => None,
                        })
                        .collect(),
                    _ => return Err(ExecError::Internal("min/max answer is not a record".into())),
                };
                self.mat_writes.push(MatWrite {
                    name: planned.def.name.clone(),
                    key,
                    sub_fp,
                    entry: MatEntry {
                        required,
                        rect,
                        answer: answer.clone(),
                        support: 0,
                        extrema,
                    },
                });
                Ok(answer)
            }
            _ => Err(ExecError::Internal(
                "materialized choice on a non-materializable strategy".into(),
            )),
        }
    }

    fn eval_divisible(
        &mut self,
        planned: &PlannedAggregate,
        channels: &[Term],
        output_channels: &[Option<usize>],
        ctx: &EvalContext<'_>,
    ) -> Result<ScriptValue> {
        let required = Self::required_values(&planned.analysis, ctx)?;
        let rect = Self::rect_for(&planned.analysis, ctx)?.unwrap_or(Rect::new(
            f64::NEG_INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::INFINITY,
        ));
        self.probe_acc.reset(channels.len());

        let name = &planned.def.name;
        let (partitions, backend);
        if let Some(state) = self.maintained(planned) {
            Self::fill_matching_fps(state, &required, &mut self.fps_scratch);
            for fp in &self.fps_scratch {
                let Some(grid) = state.grids.get(fp) else {
                    continue;
                };
                self.part_acc.reset(channels.len());
                grid.probe_rect_into(&rect, &mut self.part_acc);
                self.probe_acc.merge(&self.part_acc);
            }
            self.stats.maintained_probes += 1;
            partitions = state.grids.len();
            backend = PhysicalBackend::MaintainedGrid;
        } else {
            let kind = planned.structure(self.config).ok_or_else(|| {
                ExecError::Internal("divisible strategy without a structure".into())
            })?;
            let cat_attrs = self.cat_attr_ids(&planned.analysis)?;
            let sig = self.ensure_partitions(&cat_attrs)?;
            let fps = self.partition_fps(sig);
            partitions = fps.len();
            for part_fp in fps {
                if !partition_matches(&self.partition_values(sig, part_fp), &required) {
                    continue;
                }
                let key = self.ensure_agg_struct(kind, sig, part_fp, channels)?;
                let index = self.agg_structs.get(&key).ok_or_else(|| {
                    ExecError::Internal("aggregate structure vanished after ensure".into())
                })?;
                let partial = index.probe_rect(&rect);
                self.probe_acc.merge(&partial);
            }
            backend = served_backend_of(kind);
        }
        self.stats.index_probes += 1;
        let acc = &self.probe_acc;
        let rect_area = (rect.x_max - rect.x_min) * (rect.y_max - rect.y_min);
        self.obs.record_index_probe(
            name,
            partitions,
            backend,
            acc.count().max(0.0) as u64,
            rect_area,
        );

        let outputs = match &planned.def.spec {
            AggSpec::Simple { outputs } => outputs,
            AggSpec::ArgBest { .. } => {
                return Err(ExecError::Internal(
                    "divisible strategy on an ArgBest aggregate".into(),
                ))
            }
        };
        let mut fields = Vec::with_capacity(outputs.len());
        for (o, chan) in outputs.iter().zip(output_channels) {
            let value = if acc.count() == 0.0 {
                o.default.clone()
            } else {
                match (o.func, chan) {
                    (SimpleAgg::Count, _) => Value::Int(acc.count() as i64),
                    (SimpleAgg::Sum, Some(c)) => Value::Float(acc.channel_sum(*c)),
                    (SimpleAgg::Avg, Some(c)) => Value::Float(acc.mean(*c).unwrap_or(0.0)),
                    (SimpleAgg::StdDev, Some(c)) => Value::Float(acc.std_dev(*c).unwrap_or(0.0)),
                    _ => {
                        return Err(ExecError::Internal(format!(
                            "unsupported divisible output {:?}",
                            o.func
                        )))
                    }
                }
            };
            fields.push((o.name.clone(), value));
        }
        Ok(ScriptValue::Record(fields))
    }

    fn eval_nearest(
        &mut self,
        planned: &PlannedAggregate,
        ctx: &EvalContext<'_>,
    ) -> Result<ScriptValue> {
        let required = Self::required_values(&planned.analysis, ctx)?;
        let query = Point2::new(
            ctx.unit.get_f64(self.spatial.x).map_err(ExecError::from)?,
            ctx.unit.get_f64(self.spatial.y).map_err(ExecError::from)?,
        );
        // Best candidate as (squared distance, unit key).  Across
        // partitions/grids, exact ties prefer the smaller key — the same
        // rule the structures apply internally and the scan reference uses,
        // so argmin over duplicated positions never depends on which
        // partition is probed first.
        let mut best: Option<(f64, i64)> = None;
        let offer = |best: &mut Option<(f64, i64)>, d2: f64, key: i64| {
            if best.is_none_or(|(bd, bkey)| d2 < bd || (d2 == bd && key < bkey)) {
                *best = Some((d2, key));
            }
        };

        let name = &planned.def.name;
        if let Some(state) = self.maintained(planned) {
            use sgl_index::traits::SpatialIndex;
            Self::fill_matching_fps(state, &required, &mut self.fps_scratch);
            for fp in &self.fps_scratch {
                let Some(grid) = state.grids.get(fp) else {
                    continue;
                };
                if let Some((id, d2)) = grid.probe_nearest(&query) {
                    offer(&mut best, d2, id as i64);
                }
            }
            self.stats.maintained_probes += 1;
            self.obs.record_partitioned_serve(
                name,
                state.grids.len(),
                PhysicalBackend::MaintainedGrid,
            );
        } else {
            self.obs.record_served(name, PhysicalBackend::KdTree);
            let cat_attrs = self.cat_attr_ids(&planned.analysis)?;
            let sig = self.ensure_partitions(&cat_attrs)?;
            for part_fp in self.partition_fps(sig) {
                if !partition_matches(&self.partition_values(sig, part_fp), &required) {
                    continue;
                }
                self.ensure_kd_tree(sig, part_fp)?;
                let (tree, rows) = self
                    .kd_trees
                    .get(&(sig, part_fp))
                    .ok_or_else(|| ExecError::Internal("kd-tree vanished after ensure".into()))?;
                if let Some((local_id, d2)) = tree.nearest(&query) {
                    let row = rows[local_id as usize] as usize;
                    // The key column was extracted when the tree was built.
                    let key = match &self.keys {
                        Some(keys) => keys[row],
                        None => self.table.row(row).key(self.table.schema()),
                    };
                    offer(&mut best, d2, key);
                }
            }
        }
        self.stats.index_probes += 1;
        let outputs = match &planned.def.spec {
            AggSpec::ArgBest { outputs, .. } => outputs,
            AggSpec::Simple { .. } => {
                return Err(ExecError::Internal(
                    "nearest strategy on a Simple aggregate".into(),
                ))
            }
        };
        let mut no_aggs = NoAggregates;
        let fields = match best {
            Some((_, key)) => {
                let row = self.table.find_key_readonly(key).ok_or_else(|| {
                    ExecError::Internal("nearest hit vanished from the table".into())
                })?;
                let row_ctx = ctx.with_row(self.table.row(row));
                outputs
                    .iter()
                    .map(|(name, term, _)| {
                        Ok((
                            name.clone(),
                            eval_term(term, &row_ctx, &mut no_aggs)?
                                .as_scalar()?
                                .clone(),
                        ))
                    })
                    .collect::<std::result::Result<Vec<_>, sgl_lang::LangError>>()?
            }
            None => outputs
                .iter()
                .map(|(n, _, d)| (n.clone(), d.clone()))
                .collect(),
        };
        Ok(ScriptValue::Record(fields))
    }

    /// MIN/MAX aggregates: maintained grids answer them directly; under a
    /// rebuild policy the sweep-line batch of Figure 9 answers them when the
    /// probe rectangle is centred on the unit (the `u.pos ± range` pattern),
    /// and a per-partition quadtree answers the remaining shapes.
    fn eval_min_max(
        &mut self,
        planned: &PlannedAggregate,
        ctx: &EvalContext<'_>,
    ) -> Result<ScriptValue> {
        let outputs = match &planned.def.spec {
            AggSpec::Simple { outputs } => outputs.clone(),
            AggSpec::ArgBest { .. } => {
                return Err(ExecError::Internal(
                    "min/max strategy on an ArgBest aggregate".into(),
                ))
            }
        };
        let rect = Self::rect_for(&planned.analysis, ctx)?
            .ok_or_else(|| ExecError::Internal("min/max strategy requires a rectangle".into()))?;
        let required = Self::required_values(&planned.analysis, ctx)?;

        let name = &planned.def.name;
        self.obs
            .record_rect_area(name, (rect.x_max - rect.x_min) * (rect.y_max - rect.y_min));
        if let Some(state) = self.maintained(planned) {
            self.obs.record_partitioned_serve(
                name,
                state.grids.len(),
                PhysicalBackend::MaintainedGrid,
            );
            Self::fill_matching_fps(state, &required, &mut self.fps_scratch);
            let mut fields = Vec::with_capacity(outputs.len());
            for (channel, o) in outputs.iter().enumerate() {
                let minimize = o.func == SimpleAgg::Min;
                let mut best: Option<f64> = None;
                for fp in &self.fps_scratch {
                    let Some(grid) = state.grids.get(fp) else {
                        continue;
                    };
                    if let Some(e) = grid.probe_extremum(&rect, channel, minimize) {
                        best = Some(match best {
                            None => e.value,
                            Some(b) => {
                                if minimize {
                                    b.min(e.value)
                                } else {
                                    b.max(e.value)
                                }
                            }
                        });
                    }
                }
                let value = match best {
                    Some(v) => Value::Float(v),
                    None => o.default.clone(),
                };
                fields.push((o.name.clone(), value));
            }
            self.stats.maintained_probes += 1;
            self.stats.index_probes += 1;
            return Ok(ScriptValue::Record(fields));
        }

        let unit_x = ctx.unit.get_f64(self.spatial.x).map_err(ExecError::from)?;
        let unit_y = ctx.unit.get_f64(self.spatial.y).map_err(ExecError::from)?;
        let rx = ((rect.x_max - rect.x_min) / 2.0).abs();
        let ry = ((rect.y_max - rect.y_min) / 2.0).abs();
        // The sweep batch assumes the rectangle is centred on the unit (true
        // for the `u.pos ± range` filters); otherwise probe per-partition
        // quadtrees instead.
        let centred =
            (rect.x_min + rx - unit_x).abs() <= 1e-9 && (rect.y_min + ry - unit_y).abs() <= 1e-9;
        // A cost-based choice of the quadtree skips the sweep batch even for
        // centred probes (same results, different cost profile).  Misses of
        // a materialized site take the quadtree too: on a low-churn tick only
        // a few probes miss, and a whole-batch sweep would be priced for all
        // of them.
        let quad_chosen = planned.choice.as_ref().is_some_and(|c| {
            matches!(
                c.backend,
                PhysicalBackend::QuadTree | PhysicalBackend::Materialized
            )
        });
        if !centred || quad_chosen {
            self.obs.record_served(name, PhysicalBackend::QuadTree);
            return self.eval_min_max_quadtree(planned, &outputs, &rect, &required);
        }
        self.obs.record_served(name, PhysicalBackend::Sweep);
        let cat_attrs = self.cat_attr_ids(&planned.analysis)?;
        let sig = self.ensure_partitions(&cat_attrs)?;
        let my_row = self.table.find_key_readonly(ctx.unit_key).ok_or_else(|| {
            ExecError::Internal("probing unit not present in the environment".into())
        })?;

        let mut fields = Vec::with_capacity(outputs.len());
        for o in &outputs {
            let minimize = o.func == SimpleAgg::Min;
            let kind = if minimize {
                SweepKind::Min
            } else {
                SweepKind::Max
            };
            // The extent is reconstructed from per-unit floating point bounds
            // (`u.posx ± range`), so it can differ in the last bits between
            // units of the same type; quantise it for the cache key so one
            // sweep serves the whole batch.
            let sweep_fp = {
                let mut h = rustc_hash::FxHasher::default();
                h.write_u64(sig);
                for (equal, v) in &required {
                    h.write_u8(*equal as u8);
                    hash_value(&mut h, v);
                }
                h.write_u64(((rx * 1e6).round() as i64) as u64);
                h.write_u64(((ry * 1e6).round() as i64) as u64);
                h.write_u8(minimize as u8);
                h.write(format!("{:?}", o.value).as_bytes());
                h.finish()
            };
            if !self.sweeps.contains_key(&sweep_fp) {
                // Data points: all rows in matching partitions; queries: every
                // row of the table (every unit of this type will probe).
                let value_fp = self.ensure_chan_col(&o.value)?;
                self.ensure_positions()?;
                let mut data_points = Vec::new();
                let mut data_values = Vec::new();
                let mut data_rows: Vec<u32> = Vec::new();
                let (xs, ys) = self
                    .positions
                    .as_ref()
                    .ok_or_else(|| ExecError::Internal("positions vanished after ensure".into()))?;
                let value_col = &self.chan_cols[&value_fp];
                for part_fp in self.partition_fps(sig) {
                    if !partition_matches(&self.partition_values(sig, part_fp), &required) {
                        continue;
                    }
                    for r in self.partition_rows(sig, part_fp) {
                        data_points.push(Point2::new(xs[r as usize], ys[r as usize]));
                        data_values.push(value_col[r as usize]);
                        data_rows.push(r);
                    }
                }
                let queries: Vec<Point2> = xs
                    .iter()
                    .zip(ys.iter())
                    .map(|(&x, &y)| Point2::new(x, y))
                    .collect();
                let raw = sweep_min_max(&data_points, &data_values, &queries, rx, ry, kind);
                let remapped: Vec<Option<(f64, u32)>> = raw
                    .into_iter()
                    .map(|r| r.map(|(v, local)| (v, data_rows[local as usize])))
                    .collect();
                self.stats.indexes_built += 1;
                self.sweeps.insert(sweep_fp, remapped);
            }
            self.stats.index_probes += 1;
            let result =
                self.sweeps.get(&sweep_fp).ok_or_else(|| {
                    ExecError::Internal("sweep batch vanished after build".into())
                })?[my_row];
            let value = match result {
                Some((v, _)) => Value::Float(v),
                None => o.default.clone(),
            };
            fields.push((o.name.clone(), value));
        }
        Ok(ScriptValue::Record(fields))
    }

    /// Quadtree path for MIN/MAX probes the sweep batch cannot serve.
    fn eval_min_max_quadtree(
        &mut self,
        planned: &PlannedAggregate,
        outputs: &[sgl_lang::builtins::AggOutput],
        rect: &Rect,
        required: &RequiredValues,
    ) -> Result<ScriptValue> {
        let channels = planned.channel_terms();
        let kind = AggStructureKind::QuadTree { bucket: 8 };
        let cat_attrs = self.cat_attr_ids(&planned.analysis)?;
        let sig = self.ensure_partitions(&cat_attrs)?;
        let mut best: Vec<Option<f64>> = vec![None; outputs.len()];
        for part_fp in self.partition_fps(sig) {
            if !partition_matches(&self.partition_values(sig, part_fp), required) {
                continue;
            }
            let key = self.ensure_agg_struct(kind, sig, part_fp, &channels)?;
            let index = self.agg_structs.get(&key).ok_or_else(|| {
                ExecError::Internal("aggregate structure vanished after ensure".into())
            })?;
            for (channel, o) in outputs.iter().enumerate() {
                let minimize = o.func == SimpleAgg::Min;
                if let Some(e) = index.probe_extremum(rect, channel, minimize) {
                    best[channel] = Some(match best[channel] {
                        None => e.value,
                        Some(b) => {
                            if minimize {
                                b.min(e.value)
                            } else {
                                b.max(e.value)
                            }
                        }
                    });
                }
            }
        }
        self.stats.index_probes += 1;
        let fields = outputs
            .iter()
            .zip(&best)
            .map(|(o, b)| {
                (
                    o.name.clone(),
                    match b {
                        Some(v) => Value::Float(*v),
                        None => o.default.clone(),
                    },
                )
            })
            .collect();
        Ok(ScriptValue::Record(fields))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin_eval::{bind_params, eval_aggregate_scan};
    use crate::config::RebuildBackend;
    use crate::planner::plan_aggregate;
    use sgl_env::{schema::paper_schema, GameRng, Schema, TupleBuilder};
    use sgl_lang::builtins::paper_registry;
    use std::sync::Arc;

    /// The production tick-open sequence (what `execute_tick_planned`
    /// does): sync maintained state, then open the shared-borrow cache.
    fn open_tick<'a>(
        manager: &'a mut IndexManager,
        table: &'a EnvTable,
        config: &'a ExecConfig,
        planned: &FxHashMap<String, PlannedAggregate>,
        constants: &'a FxHashMap<String, Value>,
    ) -> TickIndexes<'a> {
        manager.prepare(table, planned, constants).unwrap();
        manager
            .tick_view(table, config, constants)
            .unwrap()
            .unwrap()
    }

    fn make_table(n: usize) -> (Arc<Schema>, EnvTable) {
        let schema = paper_schema().into_shared();
        let mut table = EnvTable::new(Arc::clone(&schema));
        let mut state = 12345u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        for key in 0..n {
            let t = TupleBuilder::new(&schema)
                .set("key", key as i64)
                .unwrap()
                .set("player", (key % 2) as i64)
                .unwrap()
                .set("posx", next() * 60.0)
                .unwrap()
                .set("posy", next() * 60.0)
                .unwrap()
                .set("health", 5 + (key % 20) as i64)
                .unwrap()
                .build();
            table.insert(t).unwrap();
        }
        (schema, table)
    }

    fn configs(schema: &Schema) -> Vec<(&'static str, ExecConfig)> {
        let base = ExecConfig::indexed(schema);
        vec![
            ("rebuild/layered", base),
            (
                "rebuild/quadtree",
                base.with_backend(RebuildBackend::QuadTree),
            ),
            (
                "incremental",
                base.with_policy(MaintenancePolicy::Incremental),
            ),
            ("adaptive", base.with_policy(MaintenancePolicy::adaptive())),
        ]
    }

    #[test]
    fn indexed_aggregates_agree_with_scans_under_every_policy() {
        let (schema, table) = make_table(120);
        let registry = paper_registry();
        let constants = registry.constants().clone();
        let rng = GameRng::new(7).for_tick(3);

        for (label, config) in configs(&schema) {
            let planned_map = crate::interp::plan_registry(&registry, &table, &config);
            let mut manager = IndexManager::new(&config);
            for agg_name in [
                "CountEnemiesInRange",
                "CentroidOfEnemyUnits",
                "getNearestEnemy",
            ] {
                let def = registry.aggregate(agg_name).unwrap();
                let planned = plan_aggregate(def, &schema, config.spatial);
                assert_ne!(
                    planned.strategy,
                    AggStrategy::Scan,
                    "{agg_name} should be indexable"
                );
                let mut cache = open_tick(&mut manager, &table, &config, &planned_map, &constants);
                for row in 0..table.len() {
                    let unit = table.row(row);
                    let mut ctx = EvalContext::new(&schema, unit, &rng, &constants);
                    let args: Vec<ScriptValue> = if def.params.len() == 2 {
                        vec![ScriptValue::scalar(0i64), ScriptValue::scalar(15.0)]
                    } else {
                        vec![ScriptValue::scalar(0i64)]
                    };
                    ctx.bindings = bind_params(&def.name, &def.params, &args).unwrap();
                    let fast = cache.evaluate(&planned, &ctx).unwrap().unwrap();
                    let slow = eval_aggregate_scan(def, &ctx.bindings, &ctx, &table).unwrap();
                    match agg_name {
                        "CountEnemiesInRange" => {
                            assert_eq!(
                                fast.as_scalar().unwrap(),
                                slow.as_scalar().unwrap(),
                                "{label} row {row}"
                            );
                        }
                        "CentroidOfEnemyUnits" => {
                            for field in ["x", "y"] {
                                let f = fast.field(field).unwrap().as_f64().unwrap();
                                let s = slow.field(field).unwrap().as_f64().unwrap();
                                assert!(
                                    (f - s).abs() < 1e-9,
                                    "{label} row {row} field {field}: {f} vs {s}"
                                );
                            }
                        }
                        "getNearestEnemy" => {
                            // Distances must agree even if ties pick different keys.
                            let fk = fast.field("key").unwrap().as_i64().unwrap();
                            let sk = slow.field("key").unwrap().as_i64().unwrap();
                            let spatial = config.spatial.unwrap();
                            let dist = |key: i64| {
                                let idx = table.find_key_readonly(key).unwrap();
                                let p = table.row(idx);
                                let dx = p.get_f64(spatial.x).unwrap()
                                    - unit.get_f64(spatial.x).unwrap();
                                let dy = p.get_f64(spatial.y).unwrap()
                                    - unit.get_f64(spatial.y).unwrap();
                                dx * dx + dy * dy
                            };
                            assert!((dist(fk) - dist(sk)).abs() < 1e-9, "{label} row {row}");
                        }
                        _ => unreachable!(),
                    }
                }
                // Indexes are reused across probes.
                assert!(
                    cache.stats.indexes_built <= 4,
                    "{label}: {agg_name} built {}",
                    cache.stats.indexes_built
                );
                assert_eq!(cache.stats.index_probes, table.len(), "{label}");
                if config.policy.is_dynamic() {
                    assert_eq!(cache.stats.maintained_probes, table.len(), "{label}");
                }
            }
        }
    }

    #[test]
    fn sweep_min_aggregate_agrees_with_scan() {
        use sgl_lang::ast::{Cond, Term};
        use sgl_lang::builtins::{enemy_filter, rect_range_filter, AggOutput, AggregateDef};

        let (schema, table) = make_table(80);
        let registry = paper_registry();
        let constants = registry.constants().clone();
        let rng = GameRng::new(7).for_tick(3);
        let def = AggregateDef {
            name: "WeakestEnemyHealth".into(),
            params: vec!["u".into(), "range".into()],
            filter: Cond::and(rect_range_filter(Term::name("range")), enemy_filter()),
            spec: AggSpec::Simple {
                outputs: vec![AggOutput {
                    name: "value".into(),
                    func: SimpleAgg::Min,
                    value: Term::row("health"),
                    default: Value::Float(-1.0),
                }],
            },
        };
        for (label, config) in configs(&schema) {
            let planned = plan_aggregate(&def, &schema, config.spatial);
            assert_eq!(planned.strategy, AggStrategy::SweepMinMax);
            // The custom aggregate is not in the registry; register its plan
            // directly for the maintenance pass.
            let mut planned_map: FxHashMap<String, PlannedAggregate> = FxHashMap::default();
            planned_map.insert(def.name.clone(), planned.clone());
            let mut manager = IndexManager::new(&config);
            let mut cache = open_tick(&mut manager, &table, &config, &planned_map, &constants);
            for row in 0..table.len() {
                let unit = table.row(row);
                let mut ctx = EvalContext::new(&schema, unit, &rng, &constants);
                let args = vec![ScriptValue::scalar(0i64), ScriptValue::scalar(10.0)];
                ctx.bindings = bind_params(&def.name, &def.params, &args).unwrap();
                let fast = cache.evaluate(&planned, &ctx).unwrap().unwrap();
                let slow = eval_aggregate_scan(&def, &ctx.bindings, &ctx, &table).unwrap();
                assert_eq!(
                    fast.field("value").unwrap().as_f64().unwrap(),
                    slow.field("value").unwrap().as_f64().unwrap(),
                    "{label} row {row}"
                );
            }
            // One sweep per player value under the rebuild policy — two
            // structures for the whole batch; maintained grids need none.
            assert!(cache.stats.indexes_built <= 2, "{label}");
        }
    }

    #[test]
    fn enum_queries_return_rows_in_rect() {
        let (schema, table) = make_table(50);
        let registry = paper_registry();
        let constants = registry.constants().clone();
        let config = ExecConfig::indexed(&schema);
        let planned_map: FxHashMap<String, PlannedAggregate> = FxHashMap::default();
        let mut manager = IndexManager::new(&config);
        let mut cache = open_tick(&mut manager, &table, &config, &planned_map, &constants);
        let player_attr = schema.attr_id("player").unwrap();
        let fps = cache.partition_fps_for(&[player_attr]).unwrap();
        assert_eq!(fps.len(), 2);
        let rect = Rect::new(0.0, 60.0, 0.0, 60.0);
        let total: usize = fps
            .iter()
            .map(|fp| cache.enum_query(&[player_attr], *fp, &rect).unwrap().len())
            .sum();
        assert_eq!(total, 50);
    }

    #[test]
    fn incremental_maintenance_applies_deltas_not_rebuilds() {
        let (schema, mut table) = make_table(100);
        let registry = paper_registry();
        let constants = registry.constants().clone();
        let config = ExecConfig::indexed(&schema).with_policy(MaintenancePolicy::Incremental);
        let planned_map = crate::interp::plan_registry(&registry, &table, &config);
        let mut manager = IndexManager::new(&config);

        // First sync builds every partition from scratch.
        let first = manager.end_tick(&table, &planned_map, &constants).unwrap();
        assert!(first.partition_rebuilds > 0);
        assert_eq!(first.delta_ops, 0);
        assert!(manager.maintained_aggregates() > 0);

        // Move a handful of units; the next sync must patch, not rebuild.
        let posx = schema.attr_id("posx").unwrap();
        for row in 0..10 {
            let new_x = table.row(row).get_f64(posx).unwrap() + 3.0;
            table.set_attr(row, posx, Value::Float(new_x)).unwrap();
        }
        let second = manager.end_tick(&table, &planned_map, &constants).unwrap();
        assert_eq!(
            second.partition_rebuilds, 0,
            "incremental must never rebuild"
        );
        assert!(second.delta_ops > 0);

        // And the maintained probes agree with a scan afterwards.
        let rng = GameRng::new(1).for_tick(1);
        let def = registry.aggregate("CountEnemiesInRange").unwrap();
        let planned = plan_aggregate(def, &schema, config.spatial);
        let mut cache = open_tick(&mut manager, &table, &config, &planned_map, &constants);
        for row in 0..table.len() {
            let unit = table.row(row);
            let mut ctx = EvalContext::new(&schema, unit, &rng, &constants);
            let args = vec![ScriptValue::scalar(0i64), ScriptValue::scalar(12.0)];
            ctx.bindings = bind_params(&def.name, &def.params, &args).unwrap();
            let fast = cache.evaluate(&planned, &ctx).unwrap().unwrap();
            let slow = eval_aggregate_scan(def, &ctx.bindings, &ctx, &table).unwrap();
            assert_eq!(
                fast.as_scalar().unwrap(),
                slow.as_scalar().unwrap(),
                "row {row}"
            );
        }
        assert_eq!(
            cache.stats.indexes_built, 0,
            "maintained grids serve every probe"
        );
    }

    #[test]
    fn adaptive_maintenance_rebuilds_hot_partitions() {
        let (schema, mut table) = make_table(60);
        let registry = paper_registry();
        let constants = registry.constants().clone();
        let config = ExecConfig::indexed(&schema)
            .with_policy(MaintenancePolicy::Adaptive { rebuild_ratio: 0.3 });
        let planned_map = crate::interp::plan_registry(&registry, &table, &config);
        let mut manager = IndexManager::new(&config);
        manager.end_tick(&table, &planned_map, &constants).unwrap();

        // Move nearly every unit: the update ratio exceeds the threshold and
        // partitions are rebuilt wholesale.
        let posx = schema.attr_id("posx").unwrap();
        for row in 0..table.len() {
            let new_x = table.row(row).get_f64(posx).unwrap() * 0.5 + 1.0;
            table.set_attr(row, posx, Value::Float(new_x)).unwrap();
        }
        let heavy = manager.end_tick(&table, &planned_map, &constants).unwrap();
        assert!(heavy.partition_rebuilds > 0);
        assert_eq!(heavy.delta_ops, 0);

        // Move two units: now the ratio is below the threshold and the
        // partitions are patched.
        for row in 0..2 {
            let new_x = table.row(row).get_f64(posx).unwrap() + 0.5;
            table.set_attr(row, posx, Value::Float(new_x)).unwrap();
        }
        let light = manager.end_tick(&table, &planned_map, &constants).unwrap();
        assert_eq!(light.partition_rebuilds, 0);
        assert!(light.delta_ops > 0);
    }

    #[test]
    fn invalidation_forces_a_full_rebuild() {
        let (schema, table) = make_table(30);
        let registry = paper_registry();
        let constants = registry.constants().clone();
        let config = ExecConfig::indexed(&schema).with_policy(MaintenancePolicy::Incremental);
        let planned_map = crate::interp::plan_registry(&registry, &table, &config);
        let mut manager = IndexManager::new(&config);
        manager.end_tick(&table, &planned_map, &constants).unwrap();
        assert!(manager.maintained_aggregates() > 0);
        manager.invalidate();
        assert_eq!(manager.maintained_aggregates(), 0);
        let again = manager.prepare(&table, &planned_map, &constants).unwrap();
        assert!(again.partition_rebuilds > 0);
    }

    /// Probe every row of the table through a cache, absorbing materialized
    /// writes afterwards; returns (answers, serves-from-store).
    fn probe_all(
        manager: &mut IndexManager,
        table: &EnvTable,
        config: &ExecConfig,
        planned_map: &FxHashMap<String, PlannedAggregate>,
        constants: &FxHashMap<String, Value>,
        planned: &PlannedAggregate,
        args: &[ScriptValue],
    ) -> (Vec<ScriptValue>, usize) {
        let schema = table.schema();
        let rng = GameRng::new(7).for_tick(3);
        let mut cache = open_tick(manager, table, config, planned_map, constants);
        let mut answers = Vec::with_capacity(table.len());
        for row in 0..table.len() {
            let unit = table.row(row);
            let mut ctx = EvalContext::new(schema, unit, &rng, constants);
            ctx.bindings = bind_params(&planned.def.name, &planned.def.params, args).unwrap();
            answers.push(cache.evaluate(planned, &ctx).unwrap().unwrap());
        }
        let serves = cache.stats.materialized_serves;
        let writes = cache.take_mat_writes();
        drop(cache);
        manager.absorb_materialized(writes);
        (answers, serves)
    }

    #[test]
    fn materialized_answers_agree_with_scans_across_churn() {
        let (schema, mut table) = make_table(90);
        let registry = paper_registry();
        let constants = registry.constants().clone();
        let config = ExecConfig::indexed(&schema);
        let rng = GameRng::new(7).for_tick(3);
        let mut planned_map = crate::interp::plan_registry(&registry, &table, &config);
        let switched = crate::planner::force_materialized(&mut planned_map);
        assert!(switched > 0, "registry has materializable sites");

        // CountEnemiesInRange (COUNT patch class) and CentroidOfEnemyUnits
        // (replace class) both carry a Materialized choice now.
        for agg_name in ["CountEnemiesInRange", "CentroidOfEnemyUnits"] {
            let planned = planned_map.get(agg_name).unwrap().clone();
            assert!(plan_is_materialized(&planned), "{agg_name}");
            let mut manager = IndexManager::new(&config);
            let args: Vec<ScriptValue> = if planned.def.params.len() == 2 {
                vec![ScriptValue::scalar(0i64), ScriptValue::scalar(15.0)]
            } else {
                vec![ScriptValue::scalar(0i64)]
            };

            // Tick 0: every probe misses, recomputes, and materializes.
            let (_, serves) = probe_all(
                &mut manager,
                &table,
                &config,
                &planned_map,
                &constants,
                &planned,
                &args,
            );
            assert_eq!(serves, 0, "{agg_name}: no store on the first tick");
            assert!(manager.materialized_entries() > 0, "{agg_name}");

            // Churn a handful of rows, hand the table back, probe again:
            // most answers are served from the store, all agree with scans.
            let posx = schema.attr_id("posx").unwrap();
            for row in 0..6 {
                let new_x = table.row(row).get_f64(posx).unwrap() + 2.5;
                table.set_attr(row, posx, Value::Float(new_x)).unwrap();
            }
            manager.end_tick(&table, &planned_map, &constants).unwrap();
            let (fast, serves) = probe_all(
                &mut manager,
                &table,
                &config,
                &planned_map,
                &constants,
                &planned,
                &args,
            );
            assert!(serves > 0, "{agg_name}: store must serve after churn");
            let def = registry.aggregate(agg_name).unwrap();
            for row in 0..table.len() {
                let unit = table.row(row);
                let mut ctx = EvalContext::new(&schema, unit, &rng, &constants);
                ctx.bindings = bind_params(&def.name, &def.params, &args).unwrap();
                let slow = eval_aggregate_scan(def, &ctx.bindings, &ctx, &table).unwrap();
                match agg_name {
                    "CountEnemiesInRange" => assert_eq!(
                        fast[row].as_scalar().unwrap(),
                        slow.as_scalar().unwrap(),
                        "{agg_name} row {row}"
                    ),
                    _ => {
                        for field in ["x", "y"] {
                            let f = fast[row].field(field).unwrap().as_f64().unwrap();
                            let s = slow.field(field).unwrap().as_f64().unwrap();
                            assert!(
                                (f - s).abs() < 1e-9,
                                "{agg_name} row {row} field {field}: {f} vs {s}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn materialized_min_patches_inserts_and_invalidates_extremum_loss() {
        use sgl_lang::ast::{Cond, Term};
        use sgl_lang::builtins::{enemy_filter, rect_range_filter, AggOutput, AggregateDef};

        let (schema, mut table) = make_table(60);
        let registry = paper_registry();
        let constants = registry.constants().clone();
        let config = ExecConfig::indexed(&schema);
        let def = AggregateDef {
            name: "WeakestEnemyHealth".into(),
            params: vec!["u".into(), "range".into()],
            filter: Cond::and(rect_range_filter(Term::name("range")), enemy_filter()),
            spec: AggSpec::Simple {
                outputs: vec![AggOutput {
                    name: "value".into(),
                    func: SimpleAgg::Min,
                    value: Term::row("health"),
                    default: Value::Float(-1.0),
                }],
            },
        };
        let mut planned = plan_aggregate(&def, &schema, config.spatial);
        assert_eq!(planned.strategy, AggStrategy::SweepMinMax);
        let mut planned_map: FxHashMap<String, PlannedAggregate> = FxHashMap::default();
        planned_map.insert(def.name.clone(), planned.clone());
        assert_eq!(crate::planner::force_materialized(&mut planned_map), 1);
        planned = planned_map.get(&def.name).unwrap().clone();
        let args = vec![ScriptValue::scalar(0i64), ScriptValue::scalar(12.0)];

        let mut manager = IndexManager::new(&config);
        probe_all(
            &mut manager,
            &table,
            &config,
            &planned_map,
            &constants,
            &planned,
            &args,
        );
        let entries_before = manager.materialized_entries();
        assert!(entries_before > 0);

        // Raise one unit's health far above every minimum: removal-safe for
        // every subscription (the value was never the extremum is false —
        // its OLD value may be an extremum somewhere, those invalidate; the
        // rest patch in place).  The store keeps serving correct answers.
        let health = schema.attr_id("health").unwrap();
        table.set_attr(5, health, Value::Int(999)).unwrap();
        manager.end_tick(&table, &planned_map, &constants).unwrap();
        assert!(
            manager.last_maint.mat_patched > 0,
            "non-extremum updates must patch in place"
        );
        let (fast, serves) = probe_all(
            &mut manager,
            &table,
            &config,
            &planned_map,
            &constants,
            &planned,
            &args,
        );
        assert!(serves > 0);
        let rng = GameRng::new(7).for_tick(3);
        for row in 0..table.len() {
            let unit = table.row(row);
            let mut ctx = EvalContext::new(&schema, unit, &rng, &constants);
            ctx.bindings = bind_params(&def.name, &def.params, &args).unwrap();
            let slow = eval_aggregate_scan(&def, &ctx.bindings, &ctx, &table).unwrap();
            assert_eq!(
                fast[row].field("value").unwrap().as_f64().unwrap(),
                slow.field("value").unwrap().as_f64().unwrap(),
                "row {row}"
            );
        }

        // Now make that unit the global minimum: every subscription that
        // sees it gets an exact insert-patch (their stored minimum folds
        // down), and the answers still match scans.
        table.set_attr(5, health, Value::Int(1)).unwrap();
        manager.end_tick(&table, &planned_map, &constants).unwrap();
        let (fast, _) = probe_all(
            &mut manager,
            &table,
            &config,
            &planned_map,
            &constants,
            &planned,
            &args,
        );
        for row in 0..table.len() {
            let unit = table.row(row);
            let mut ctx = EvalContext::new(&schema, unit, &rng, &constants);
            ctx.bindings = bind_params(&def.name, &def.params, &args).unwrap();
            let slow = eval_aggregate_scan(&def, &ctx.bindings, &ctx, &table).unwrap();
            assert_eq!(
                fast[row].field("value").unwrap().as_f64().unwrap(),
                slow.field("value").unwrap().as_f64().unwrap(),
                "row {row}"
            );
        }
    }

    #[test]
    fn materialized_stores_clear_when_choices_leave() {
        let (schema, table) = make_table(40);
        let registry = paper_registry();
        let constants = registry.constants().clone();
        let config = ExecConfig::indexed(&schema);
        let mut planned_map = crate::interp::plan_registry(&registry, &table, &config);
        crate::planner::force_materialized(&mut planned_map);
        let planned = planned_map.get("CountEnemiesInRange").unwrap().clone();
        let args = vec![ScriptValue::scalar(0i64), ScriptValue::scalar(15.0)];
        let mut manager = IndexManager::new(&config);
        probe_all(
            &mut manager,
            &table,
            &config,
            &planned_map,
            &constants,
            &planned,
            &args,
        );
        assert!(manager.materialized_sites() > 0);

        // Drop the choices (back to the heuristic): the next maintenance
        // pass retires the stores.
        for plan in planned_map.values_mut() {
            plan.choice = None;
        }
        manager.mark_stale();
        manager.prepare(&table, &planned_map, &constants).unwrap();
        assert_eq!(manager.materialized_sites(), 0);
        assert_eq!(manager.materialized_entries(), 0);
    }

    #[test]
    fn value_fingerprints_are_strict() {
        assert_eq!(
            fingerprint_values(&[Value::Int(1), Value::str("a")]),
            fingerprint_values(&[Value::Int(1), Value::str("a")])
        );
        assert_ne!(
            fingerprint_values(&[Value::Int(1)]),
            fingerprint_values(&[Value::Float(1.0)])
        );
        assert_ne!(
            fingerprint_values(&[Value::Int(1)]),
            fingerprint_values(&[Value::Int(2)])
        );
        assert!(same_value(&Value::Float(2.5), &Value::Float(2.5)));
        assert!(!same_value(&Value::Int(1), &Value::Float(1.0)));
        assert!(partition_matches(
            &[Value::Int(0)],
            &vec![(true, Value::Int(0))]
        ));
        assert!(!partition_matches(
            &[Value::Int(0)],
            &vec![(false, Value::Int(0))]
        ));
    }
}
