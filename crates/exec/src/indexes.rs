//! Per-tick index cache and the indexed aggregate evaluator.
//!
//! Mirrors the experimental setup of §6: the categorical part of each filter
//! (player, unit type) selects partitions of a hash layer; each partition owns
//! the spatial structure required by the aggregate's strategy (layered
//! aggregate range tree, kD-tree, or the shared data for a sweep-line batch).
//! All structures are built lazily on first use and discarded at the end of
//! the tick.

use rustc_hash::FxHashMap;

use sgl_env::{AttrId, EnvTable, Value};
use sgl_index::agg_tree::{AggEntry, LayeredAggTree};
use sgl_index::kdtree::KdTree;
use sgl_index::range_tree::RangeTree2D;
use sgl_index::sweepline::{sweep_min_max, SweepKind};
use sgl_index::{Point2, Rect};
use sgl_lang::ast::Term;
use sgl_lang::builtins::{AggSpec, SimpleAgg};
use sgl_lang::eval::{eval_term, EvalContext, NoAggregates, ScriptValue};

use crate::config::{SpatialAttrs, TickStats};
use crate::error::{ExecError, Result};
use crate::filter::FilterAnalysis;
use crate::planner::{AggStrategy, PlannedAggregate};

/// Encode a value as a hash-map key for the categorical partition layer.
fn encode_value(v: &Value) -> String {
    match v {
        Value::Int(i) => format!("i{i}"),
        Value::Float(f) => format!("f{}", f.to_bits()),
        Value::Bool(b) => format!("b{b}"),
        Value::Str(s) => format!("s{s}"),
    }
}

fn encode_values(vs: &[Value]) -> String {
    vs.iter().map(encode_value).collect::<Vec<_>>().join("|")
}

/// Evaluate a term whose only row context is the candidate row itself
/// (channel values, categorical attribute reads).
fn eval_row_term(term: &Term, table: &EnvTable, row: usize, constants: &FxHashMap<String, Value>) -> Result<Value> {
    // The term must not reference `u.*`; planner guarantees this.  We still
    // need *some* unit in the context, so we use the row itself.
    let schema = table.schema();
    let tuple = table.row(row);
    let rng = sgl_env::GameRng::new(0).for_tick(0);
    let ctx = EvalContext::new(schema, tuple, &rng, constants);
    let ctx = ctx.with_row(tuple);
    let mut no_aggs = NoAggregates;
    Ok(eval_term(term, &ctx, &mut no_aggs)?.as_scalar()?.clone())
}

/// The per-tick cache of index structures.
pub struct IndexCache<'a> {
    table: &'a EnvTable,
    spatial: SpatialAttrs,
    cascading: bool,
    constants: &'a FxHashMap<String, Value>,
    /// partition signature (attr ids joined) → partition value key → row ids.
    partitions: FxHashMap<String, FxHashMap<String, Vec<u32>>>,
    /// tree key → aggregate range tree.
    agg_trees: FxHashMap<String, LayeredAggTree>,
    /// tree key → (kD-tree, row ids aligned with the tree's point order).
    kd_trees: FxHashMap<String, (KdTree, Vec<u32>)>,
    /// tree key → (enumeration range tree, row ids).
    enum_trees: FxHashMap<String, (RangeTree2D, Vec<u32>)>,
    /// sweep key → per-row best (value, row id) results.
    sweeps: FxHashMap<String, Vec<Option<(f64, u32)>>>,
    /// Statistics.
    pub stats: TickStats,
}

impl<'a> IndexCache<'a> {
    /// Create an empty cache for a tick.
    pub fn new(
        table: &'a EnvTable,
        spatial: SpatialAttrs,
        cascading: bool,
        constants: &'a FxHashMap<String, Value>,
    ) -> IndexCache<'a> {
        IndexCache {
            table,
            spatial,
            cascading,
            constants,
            partitions: FxHashMap::default(),
            agg_trees: FxHashMap::default(),
            kd_trees: FxHashMap::default(),
            enum_trees: FxHashMap::default(),
            sweeps: FxHashMap::default(),
            stats: TickStats::default(),
        }
    }

    fn point_of(&self, row: usize) -> Result<Point2> {
        Ok(Point2::new(
            self.table.row(row).get_f64(self.spatial.x)?,
            self.table.row(row).get_f64(self.spatial.y)?,
        ))
    }

    /// Ensure the partition map for a set of categorical attributes exists;
    /// returns its signature key.
    fn ensure_partitions(&mut self, cat_attrs: &[AttrId]) -> Result<String> {
        let sig = cat_attrs.iter().map(|a| a.to_string()).collect::<Vec<_>>().join(",");
        if !self.partitions.contains_key(&sig) {
            let mut map: FxHashMap<String, Vec<u32>> = FxHashMap::default();
            for (idx, row) in self.table.iter() {
                let values: Vec<Value> = cat_attrs.iter().map(|a| row.get(*a).clone()).collect();
                map.entry(encode_values(&values)).or_default().push(idx as u32);
            }
            self.partitions.insert(sig.clone(), map);
        }
        Ok(sig)
    }

    /// The partition keys under a signature.
    fn partition_keys(&self, sig: &str) -> Vec<String> {
        self.partitions.get(sig).map(|m| m.keys().cloned().collect()).unwrap_or_default()
    }

    fn partition_rows(&self, sig: &str, key: &str) -> Vec<u32> {
        self.partitions.get(sig).and_then(|m| m.get(key)).cloned().unwrap_or_default()
    }

    /// Does a partition key satisfy the categorical constraints for a given
    /// probing unit (whose required values have been evaluated already)?
    fn partition_matches(key: &str, required: &[(bool, String)]) -> bool {
        let parts: Vec<&str> = if key.is_empty() { Vec::new() } else { key.split('|').collect() };
        for (i, (equal, value)) in required.iter().enumerate() {
            let actual = parts.get(i).copied().unwrap_or("");
            if *equal && actual != value {
                return false;
            }
            if !*equal && actual == value {
                return false;
            }
        }
        true
    }

    /// Resolve the categorical attribute ids of an analysis (sorted by name,
    /// matching the order of `required_values`).
    fn cat_attr_ids(&self, analysis: &FilterAnalysis) -> Result<Vec<AttrId>> {
        analysis
            .cat_attr_names()
            .iter()
            .map(|n| {
                self.table
                    .schema()
                    .attr_id(n)
                    .ok_or_else(|| ExecError::Internal(format!("unknown categorical attribute `{n}`")))
            })
            .collect()
    }

    /// Evaluate the categorical constraint values for one probing unit, in the
    /// same order as [`Self::cat_attr_ids`].
    fn required_values(
        analysis: &FilterAnalysis,
        unit_ctx: &EvalContext<'_>,
    ) -> Result<Vec<(bool, String)>> {
        let mut no_aggs = NoAggregates;
        let names = analysis.cat_attr_names();
        let mut out = Vec::with_capacity(names.len());
        for name in names {
            // If several constraints mention the same attribute we evaluate
            // the first (our builtins never have more than one per attribute).
            let c = analysis
                .cats
                .iter()
                .find(|c| c.attr == name)
                .expect("attribute name came from the constraint list");
            let v = eval_term(&c.value, unit_ctx, &mut no_aggs)?.as_scalar()?.clone();
            out.push((c.equal, encode_value(&v)));
        }
        Ok(out)
    }

    /// Evaluate the rectangle of an analysis for one probing unit.  `None`
    /// when the analysis has no spatial bounds (aggregate over the whole
    /// world).
    fn rect_for(analysis: &FilterAnalysis, unit_ctx: &EvalContext<'_>) -> Result<Option<Rect>> {
        if !analysis.has_rect() {
            return Ok(None);
        }
        let mut no_aggs = NoAggregates;
        let mut get = |t: &Option<Term>| -> Result<f64> {
            Ok(eval_term(t.as_ref().expect("has_rect checked"), unit_ctx, &mut no_aggs)?
                .as_scalar()?
                .as_f64()?)
        };
        Ok(Some(Rect::new(get(&analysis.x_lo)?, get(&analysis.x_hi)?, get(&analysis.y_lo)?, get(&analysis.y_hi)?)))
    }

    fn ensure_agg_tree(
        &mut self,
        tree_key: &str,
        sig: &str,
        part_key: &str,
        channels: &[Term],
    ) -> Result<()> {
        if self.agg_trees.contains_key(tree_key) {
            return Ok(());
        }
        let rows = self.partition_rows(sig, part_key);
        let mut entries = Vec::with_capacity(rows.len());
        for r in rows {
            let point = self.point_of(r as usize)?;
            let mut values = Vec::with_capacity(channels.len());
            for c in channels {
                values.push(eval_row_term(c, self.table, r as usize, self.constants)?.as_f64()?);
            }
            entries.push(AggEntry::new(point, values));
        }
        self.stats.indexes_built += 1;
        self.agg_trees
            .insert(tree_key.to_string(), LayeredAggTree::build(&entries, channels.len(), self.cascading));
        Ok(())
    }

    fn ensure_kd_tree(&mut self, tree_key: &str, sig: &str, part_key: &str) -> Result<()> {
        if self.kd_trees.contains_key(tree_key) {
            return Ok(());
        }
        let rows = self.partition_rows(sig, part_key);
        let mut points = Vec::with_capacity(rows.len());
        for r in &rows {
            points.push(self.point_of(*r as usize)?);
        }
        self.stats.indexes_built += 1;
        self.kd_trees.insert(tree_key.to_string(), (KdTree::build(&points), rows));
        Ok(())
    }

    /// Ensure an enumeration range tree over a partition (used for indexed
    /// area-of-effect actions, §5.4).
    pub fn ensure_enum_tree(&mut self, cat_attrs: &[AttrId], part_key: &str) -> Result<String> {
        let sig = self.ensure_partitions(cat_attrs)?;
        let tree_key = format!("enum:{sig}:{part_key}");
        if !self.enum_trees.contains_key(&tree_key) {
            let rows = self.partition_rows(&sig, part_key);
            let mut points = Vec::with_capacity(rows.len());
            for r in &rows {
                points.push(self.point_of(*r as usize)?);
            }
            self.stats.indexes_built += 1;
            self.enum_trees.insert(tree_key.clone(), (RangeTree2D::build(&points), rows));
        }
        Ok(tree_key)
    }

    /// Enumerate the row ids of a partition falling inside a rectangle.
    pub fn enum_query(&mut self, cat_attrs: &[AttrId], part_key: &str, rect: &Rect) -> Result<Vec<u32>> {
        let tree_key = self.ensure_enum_tree(cat_attrs, part_key)?;
        let (tree, rows) = self.enum_trees.get(&tree_key).expect("just ensured");
        self.stats.index_probes += 1;
        Ok(tree.query(rect).into_iter().map(|i| rows[i as usize]).collect())
    }

    /// Partition keys for a categorical signature (building partitions first).
    pub fn partition_keys_for(&mut self, cat_attrs: &[AttrId]) -> Result<Vec<String>> {
        let sig = self.ensure_partitions(cat_attrs)?;
        Ok(self.partition_keys(&sig))
    }

    /// Evaluate a planned aggregate for one probing unit through its index.
    pub fn evaluate(
        &mut self,
        planned: &PlannedAggregate,
        param_bindings: &FxHashMap<String, ScriptValue>,
        unit_ctx: &EvalContext<'_>,
    ) -> Result<Option<ScriptValue>> {
        // Extend the context with parameter bindings (range etc.).
        let mut ctx = EvalContext {
            schema: unit_ctx.schema,
            unit: unit_ctx.unit,
            unit_key: unit_ctx.unit_key,
            row: None,
            rng: unit_ctx.rng,
            constants: unit_ctx.constants,
            bindings: unit_ctx.bindings.clone(),
        };
        for (k, v) in param_bindings {
            ctx.bindings.insert(k.clone(), v.clone());
        }
        match &planned.strategy {
            AggStrategy::Scan => Ok(None),
            AggStrategy::DivisibleTree { channels, output_channels } => {
                self.eval_divisible(planned, channels, output_channels, &ctx).map(Some)
            }
            AggStrategy::KdNearest => self.eval_nearest(planned, &ctx).map(Some),
            AggStrategy::SweepMinMax => self.eval_sweep(planned, &ctx).map(Some),
        }
    }

    fn eval_divisible(
        &mut self,
        planned: &PlannedAggregate,
        channels: &[Term],
        output_channels: &[Option<usize>],
        ctx: &EvalContext<'_>,
    ) -> Result<ScriptValue> {
        let cat_attrs = self.cat_attr_ids(&planned.analysis)?;
        let sig = self.ensure_partitions(&cat_attrs)?;
        let required = Self::required_values(&planned.analysis, ctx)?;
        let rect = Self::rect_for(&planned.analysis, ctx)?
            .unwrap_or(Rect::new(f64::NEG_INFINITY, f64::INFINITY, f64::NEG_INFINITY, f64::INFINITY));
        let chan_sig = format!("{:?}", channels);
        let mut acc = sgl_index::divisible::DivAcc::identity(channels.len());
        for part_key in self.partition_keys(&sig) {
            if !Self::partition_matches(&part_key, &required) {
                continue;
            }
            let tree_key = format!("agg:{sig}:{part_key}:{chan_sig}");
            self.ensure_agg_tree(&tree_key, &sig, &part_key, channels)?;
            let tree = self.agg_trees.get(&tree_key).expect("just ensured");
            acc.merge(&tree.query(&rect));
        }
        self.stats.index_probes += 1;

        let outputs = match &planned.def.spec {
            AggSpec::Simple { outputs } => outputs,
            AggSpec::ArgBest { .. } => {
                return Err(ExecError::Internal("divisible strategy on an ArgBest aggregate".into()))
            }
        };
        let mut fields = Vec::with_capacity(outputs.len());
        for (o, chan) in outputs.iter().zip(output_channels) {
            let value = if acc.count() == 0.0 {
                o.default.clone()
            } else {
                match (o.func, chan) {
                    (SimpleAgg::Count, _) => Value::Int(acc.count() as i64),
                    (SimpleAgg::Sum, Some(c)) => Value::Float(acc.channel_sum(*c)),
                    (SimpleAgg::Avg, Some(c)) => Value::Float(acc.mean(*c).unwrap_or(0.0)),
                    (SimpleAgg::StdDev, Some(c)) => Value::Float(acc.std_dev(*c).unwrap_or(0.0)),
                    _ => {
                        return Err(ExecError::Internal(format!(
                            "unsupported divisible output {:?}",
                            o.func
                        )))
                    }
                }
            };
            fields.push((o.name.clone(), value));
        }
        Ok(ScriptValue::Record(fields))
    }

    fn eval_nearest(&mut self, planned: &PlannedAggregate, ctx: &EvalContext<'_>) -> Result<ScriptValue> {
        let cat_attrs = self.cat_attr_ids(&planned.analysis)?;
        let sig = self.ensure_partitions(&cat_attrs)?;
        let required = Self::required_values(&planned.analysis, ctx)?;
        let query = Point2::new(
            ctx.unit.get_f64(self.spatial.x).map_err(ExecError::from)?,
            ctx.unit.get_f64(self.spatial.y).map_err(ExecError::from)?,
        );
        let mut best: Option<(f64, u32)> = None;
        for part_key in self.partition_keys(&sig) {
            if !Self::partition_matches(&part_key, &required) {
                continue;
            }
            let tree_key = format!("kd:{sig}:{part_key}");
            self.ensure_kd_tree(&tree_key, &sig, &part_key)?;
            let (tree, rows) = self.kd_trees.get(&tree_key).expect("just ensured");
            if let Some((local_id, d2)) = tree.nearest(&query) {
                let row_id = rows[local_id as usize];
                if best.map_or(true, |(bd, _)| d2 < bd) {
                    best = Some((d2, row_id));
                }
            }
        }
        self.stats.index_probes += 1;
        let outputs = match &planned.def.spec {
            AggSpec::ArgBest { outputs, .. } => outputs,
            AggSpec::Simple { .. } => {
                return Err(ExecError::Internal("nearest strategy on a Simple aggregate".into()))
            }
        };
        let mut no_aggs = NoAggregates;
        let fields = match best {
            Some((_, row_id)) => {
                let row_ctx = ctx.with_row(self.table.row(row_id as usize));
                outputs
                    .iter()
                    .map(|(name, term, _)| {
                        Ok((name.clone(), eval_term(term, &row_ctx, &mut no_aggs)?.as_scalar()?.clone()))
                    })
                    .collect::<std::result::Result<Vec<_>, sgl_lang::LangError>>()?
            }
            None => outputs.iter().map(|(n, _, d)| (n.clone(), d.clone())).collect(),
        };
        Ok(ScriptValue::Record(fields))
    }

    fn eval_sweep(&mut self, planned: &PlannedAggregate, ctx: &EvalContext<'_>) -> Result<ScriptValue> {
        let outputs = match &planned.def.spec {
            AggSpec::Simple { outputs } => outputs.clone(),
            AggSpec::ArgBest { .. } => {
                return Err(ExecError::Internal("sweep strategy on an ArgBest aggregate".into()))
            }
        };
        let rect = Self::rect_for(&planned.analysis, ctx)?
            .ok_or_else(|| ExecError::Internal("sweep strategy requires a rectangle".into()))?;
        let unit_x = ctx.unit.get_f64(self.spatial.x).map_err(ExecError::from)?;
        let unit_y = ctx.unit.get_f64(self.spatial.y).map_err(ExecError::from)?;
        let rx = ((rect.x_max - rect.x_min) / 2.0).abs();
        let ry = ((rect.y_max - rect.y_min) / 2.0).abs();
        // The sweep assumes the rectangle is centred on the unit (true for
        // the `u.pos ± range` filters); otherwise fall back to scanning.
        if (rect.x_min + rx - unit_x).abs() > 1e-9 || (rect.y_min + ry - unit_y).abs() > 1e-9 {
            return Err(ExecError::Internal("sweep rectangle is not centred on the unit".into()));
        }
        let cat_attrs = self.cat_attr_ids(&planned.analysis)?;
        let sig = self.ensure_partitions(&cat_attrs)?;
        let required = Self::required_values(&planned.analysis, ctx)?;
        let my_row = self
            .table
            .find_key_readonly(ctx.unit_key)
            .ok_or_else(|| ExecError::Internal("probing unit not present in the environment".into()))?;

        let mut fields = Vec::with_capacity(outputs.len());
        for o in &outputs {
            let minimize = o.func == SimpleAgg::Min;
            let kind = if minimize { SweepKind::Min } else { SweepKind::Max };
            // The extent is reconstructed from per-unit floating point bounds
            // (`u.posx ± range`), so it can differ in the last bits between
            // units of the same type; quantise it for the cache key so one
            // sweep serves the whole batch.
            let sweep_key = format!(
                "sweep:{sig}:{:?}:{:.6}:{:.6}:{}:{:?}",
                required, rx, ry, minimize, o.value
            );
            if !self.sweeps.contains_key(&sweep_key) {
                // Data points: all rows in matching partitions; queries: every
                // row of the table (every unit of this type will probe).
                let mut data_points = Vec::new();
                let mut data_values = Vec::new();
                let mut data_rows: Vec<u32> = Vec::new();
                for part_key in self.partition_keys(&sig) {
                    if !Self::partition_matches(&part_key, &required) {
                        continue;
                    }
                    for r in self.partition_rows(&sig, &part_key) {
                        data_points.push(self.point_of(r as usize)?);
                        data_values
                            .push(eval_row_term(&o.value, self.table, r as usize, self.constants)?.as_f64()?);
                        data_rows.push(r);
                    }
                }
                let queries: Vec<Point2> = (0..self.table.len())
                    .map(|r| self.point_of(r))
                    .collect::<Result<Vec<_>>>()?;
                let raw = sweep_min_max(&data_points, &data_values, &queries, rx, ry, kind);
                let remapped: Vec<Option<(f64, u32)>> = raw
                    .into_iter()
                    .map(|r| r.map(|(v, local)| (v, data_rows[local as usize])))
                    .collect();
                self.stats.indexes_built += 1;
                self.sweeps.insert(sweep_key.clone(), remapped);
            }
            self.stats.index_probes += 1;
            let result = self.sweeps.get(&sweep_key).expect("just built")[my_row];
            let value = match result {
                Some((v, _)) => Value::Float(v),
                None => o.default.clone(),
            };
            fields.push((o.name.clone(), value));
        }
        Ok(ScriptValue::Record(fields))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin_eval::{bind_params, eval_aggregate_scan};
    use crate::planner::plan_aggregate;
    use sgl_env::{schema::paper_schema, GameRng, Schema, TupleBuilder};
    use sgl_lang::builtins::paper_registry;
    use std::sync::Arc;

    fn make_table(n: usize) -> (Arc<Schema>, EnvTable) {
        let schema = paper_schema().into_shared();
        let mut table = EnvTable::new(Arc::clone(&schema));
        let mut state = 12345u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        for key in 0..n {
            let t = TupleBuilder::new(&schema)
                .set("key", key as i64)
                .unwrap()
                .set("player", (key % 2) as i64)
                .unwrap()
                .set("posx", next() * 60.0)
                .unwrap()
                .set("posy", next() * 60.0)
                .unwrap()
                .set("health", 5 + (key % 20) as i64)
                .unwrap()
                .build();
            table.insert(t).unwrap();
        }
        (schema, table)
    }

    #[test]
    fn indexed_aggregates_agree_with_scans() {
        let (schema, table) = make_table(120);
        let registry = paper_registry();
        let spatial = SpatialAttrs::from_schema(&schema).unwrap();
        let constants = registry.constants().clone();
        let rng = GameRng::new(7).for_tick(3);

        for agg_name in ["CountEnemiesInRange", "CentroidOfEnemyUnits", "getNearestEnemy"] {
            let def = registry.aggregate(agg_name).unwrap();
            let planned = plan_aggregate(def, &schema, Some(spatial));
            assert_ne!(planned.strategy, AggStrategy::Scan, "{agg_name} should be indexable");
            let mut cache = IndexCache::new(&table, spatial, true, &constants);
            for row in 0..table.len() {
                let unit = table.row(row).clone();
                let ctx = EvalContext::new(&schema, &unit, &rng, &constants);
                let args: Vec<ScriptValue> = if def.params.len() == 2 {
                    vec![ScriptValue::scalar(0i64), ScriptValue::scalar(15.0)]
                } else {
                    vec![ScriptValue::scalar(0i64)]
                };
                let bindings = bind_params(&def.name, &def.params, &args).unwrap();
                let fast = cache.evaluate(&planned, &bindings, &ctx).unwrap().unwrap();
                let slow = eval_aggregate_scan(def, &bindings, &ctx, &table).unwrap();
                match agg_name {
                    "CountEnemiesInRange" => {
                        assert_eq!(fast.as_scalar().unwrap(), slow.as_scalar().unwrap(), "row {row}");
                    }
                    "CentroidOfEnemyUnits" => {
                        for field in ["x", "y"] {
                            let f = fast.field(field).unwrap().as_f64().unwrap();
                            let s = slow.field(field).unwrap().as_f64().unwrap();
                            assert!((f - s).abs() < 1e-9, "row {row} field {field}: {f} vs {s}");
                        }
                    }
                    "getNearestEnemy" => {
                        // Distances must agree even if ties pick different keys.
                        let fk = fast.field("key").unwrap().as_i64().unwrap();
                        let sk = slow.field("key").unwrap().as_i64().unwrap();
                        let dist = |key: i64| {
                            let idx = table.find_key_readonly(key).unwrap();
                            let p = table.row(idx);
                            let dx = p.get_f64(spatial.x).unwrap() - unit.get_f64(spatial.x).unwrap();
                            let dy = p.get_f64(spatial.y).unwrap() - unit.get_f64(spatial.y).unwrap();
                            dx * dx + dy * dy
                        };
                        assert!((dist(fk) - dist(sk)).abs() < 1e-9, "row {row}");
                    }
                    _ => unreachable!(),
                }
            }
            // Indexes are reused across probes.
            assert!(cache.stats.indexes_built <= 4, "{agg_name} built {}", cache.stats.indexes_built);
            assert_eq!(cache.stats.index_probes, table.len());
        }
    }

    #[test]
    fn sweep_min_aggregate_agrees_with_scan() {
        use sgl_env::Value;
        use sgl_lang::ast::{Cond, Term};
        use sgl_lang::builtins::{enemy_filter, rect_range_filter, AggOutput, AggregateDef};

        let (schema, table) = make_table(80);
        let registry = paper_registry();
        let spatial = SpatialAttrs::from_schema(&schema).unwrap();
        let constants = registry.constants().clone();
        let rng = GameRng::new(7).for_tick(3);
        let def = AggregateDef {
            name: "WeakestEnemyHealth".into(),
            params: vec!["u".into(), "range".into()],
            filter: Cond::and(rect_range_filter(Term::name("range")), enemy_filter()),
            spec: AggSpec::Simple {
                outputs: vec![AggOutput {
                    name: "value".into(),
                    func: SimpleAgg::Min,
                    value: Term::row("health"),
                    default: Value::Float(-1.0),
                }],
            },
        };
        let planned = plan_aggregate(&def, &schema, Some(spatial));
        assert_eq!(planned.strategy, AggStrategy::SweepMinMax);
        let mut cache = IndexCache::new(&table, spatial, true, &constants);
        for row in 0..table.len() {
            let unit = table.row(row).clone();
            let ctx = EvalContext::new(&schema, &unit, &rng, &constants);
            let args = vec![ScriptValue::scalar(0i64), ScriptValue::scalar(10.0)];
            let bindings = bind_params(&def.name, &def.params, &args).unwrap();
            let fast = cache.evaluate(&planned, &bindings, &ctx).unwrap().unwrap();
            let slow = eval_aggregate_scan(&def, &bindings, &ctx, &table).unwrap();
            assert_eq!(
                fast.field("value").unwrap().as_f64().unwrap(),
                slow.field("value").unwrap().as_f64().unwrap(),
                "row {row}"
            );
        }
        // One sweep per (player value) — two sweeps for the whole batch.
        assert!(cache.stats.indexes_built <= 2);
    }

    #[test]
    fn enum_queries_return_rows_in_rect() {
        let (schema, table) = make_table(50);
        let registry = paper_registry();
        let spatial = SpatialAttrs::from_schema(&schema).unwrap();
        let constants = registry.constants().clone();
        let mut cache = IndexCache::new(&table, spatial, true, &constants);
        let player_attr = schema.attr_id("player").unwrap();
        let keys = cache.partition_keys_for(&[player_attr]).unwrap();
        assert_eq!(keys.len(), 2);
        let rect = Rect::new(0.0, 60.0, 0.0, 60.0);
        let total: usize = keys.iter().map(|k| cache.enum_query(&[player_attr], k, &rect).unwrap().len()).sum();
        assert_eq!(total, 50);
    }
}
