//! Set-at-a-time interpretation of logical plans and action application.
//!
//! Both executors interpret the *same* optimized plan and share the same
//! semantics; they differ only in how `ExtendAgg` nodes and action clauses
//! are answered:
//!
//! * the **naive** backend scans the environment for every aggregate probe and
//!   for every action clause (`O(n)` per unit, `O(n²)` per tick);
//! * the **indexed** backend answers aggregates from the per-tick
//!   [`IndexCache`] and resolves targeted/area action clauses through key
//!   look-ups and enumeration indexes (§5.3/§5.4).

use rustc_hash::FxHashMap;

use sgl_algebra::LogicalPlan;
use sgl_env::{EffectBuffer, EnvTable, TickRandom, Value};
use sgl_lang::ast::{AggCall, Term};
use sgl_lang::builtins::{ActionDef, Registry};
use sgl_lang::eval::{eval_cond, eval_term, EvalContext, NoAggregates, ScriptValue};

use crate::builtin_eval::{bind_params, eval_aggregate_scan, eval_call_args};
use crate::config::{ExecConfig, ExecMode, TickStats};
use crate::error::{ExecError, Result};
use crate::filter::analyze_filter;
use crate::indexes::{IndexManager, TickIndexes};
use crate::planner::{plan_aggregate, PlannedAggregate};

/// One script to run in a tick: its optimized plan plus the acting units
/// (row indices into the environment) that execute it.
#[derive(Debug, Clone)]
pub struct ScriptRun<'p> {
    /// The optimized logical plan of the script.
    pub plan: &'p LogicalPlan,
    /// Row indices of the units running this script.
    pub acting_rows: Vec<u32>,
}

/// Execute one clock tick with a throwaway [`IndexManager`] (every index is
/// rebuilt, regardless of the configured policy — callers that want
/// cross-tick maintenance keep a manager alive and use
/// [`execute_tick_with`], as `sgl_engine::Simulation` does).
pub fn execute_tick(
    table: &EnvTable,
    registry: &Registry,
    runs: &[ScriptRun<'_>],
    rng: &TickRandom,
    config: &ExecConfig,
) -> Result<(EffectBuffer, TickStats)> {
    let mut manager = IndexManager::new(config);
    execute_tick_with(table, registry, runs, rng, config, &mut manager)
}

/// Plan every registry aggregate once (index selection is per-definition).
pub fn plan_registry(
    registry: &Registry,
    table: &EnvTable,
    config: &ExecConfig,
) -> FxHashMap<String, PlannedAggregate> {
    let schema = table.schema();
    let mut planned: FxHashMap<String, PlannedAggregate> = FxHashMap::default();
    for name in registry.aggregate_names() {
        let def = registry.aggregate(name).expect("name listed");
        planned.insert(
            name.to_string(),
            plan_aggregate(def, schema, config.spatial),
        );
    }
    planned
}

/// Execute one clock tick: run every script over its acting units and return
/// the combined effect relation plus execution statistics.  Index structures
/// come from `manager` according to its maintenance policy.
pub fn execute_tick_with(
    table: &EnvTable,
    registry: &Registry,
    runs: &[ScriptRun<'_>],
    rng: &TickRandom,
    config: &ExecConfig,
    manager: &mut IndexManager,
) -> Result<(EffectBuffer, TickStats)> {
    let planned = plan_registry(registry, table, config);
    let constants = registry.constants().clone();
    execute_tick_planned(
        table, registry, runs, rng, config, manager, &planned, &constants,
    )
}

/// [`execute_tick_with`] with the aggregate plans and constants supplied by
/// the caller — the engine caches both across ticks (they depend only on
/// the registry, schema and configuration) instead of re-deriving them
/// every tick.
#[allow(clippy::too_many_arguments)]
pub fn execute_tick_planned(
    table: &EnvTable,
    registry: &Registry,
    runs: &[ScriptRun<'_>],
    rng: &TickRandom,
    config: &ExecConfig,
    manager: &mut IndexManager,
    planned: &FxHashMap<String, PlannedAggregate>,
    constants: &FxHashMap<String, Value>,
) -> Result<(EffectBuffer, TickStats)> {
    let schema = table.schema().clone();
    let mut effects = EffectBuffer::new(schema.clone());
    let mut stats = TickStats::default();

    let mut cache = if config.mode == ExecMode::Indexed {
        manager.begin_tick(table, config, planned, constants)?
    } else {
        None
    };
    // Memo of aggregate results per (call site rendering, unit row).
    let mut memo: FxHashMap<(String, u32), ScriptValue> = FxHashMap::default();

    for run in runs {
        let mut interp = Interp {
            table,
            registry,
            config,
            rng,
            constants,
            planned,
            cache: cache.as_mut(),
            memo: &mut memo,
            effects: &mut effects,
            stats: &mut stats,
        };
        interp.run_effects(
            run.plan,
            &run.acting_rows,
            &vec![FxHashMap::default(); run.acting_rows.len()],
        )?;
    }
    if let Some(cache) = cache {
        stats.merge(&cache.stats);
    }
    stats.effect_rows = effects.len();
    Ok((effects, stats))
}

struct Interp<'a, 'p> {
    table: &'a EnvTable,
    registry: &'a Registry,
    config: &'a ExecConfig,
    rng: &'a TickRandom,
    constants: &'a FxHashMap<String, Value>,
    planned: &'a FxHashMap<String, PlannedAggregate>,
    cache: Option<&'p mut TickIndexes<'a>>,
    memo: &'p mut FxHashMap<(String, u32), ScriptValue>,
    effects: &'p mut EffectBuffer,
    stats: &'p mut TickStats,
}

type Bindings = FxHashMap<String, ScriptValue>;

impl<'a, 'p> Interp<'a, 'p> {
    fn ctx_for(&self, row: u32, bindings: &Bindings) -> EvalContext<'a> {
        let schema = self.table.schema();
        let unit = self.table.row(row as usize);
        let mut ctx = EvalContext::new(schema, unit, self.rng, self.constants);
        ctx.bindings = bindings.clone();
        ctx
    }

    /// Evaluate a relation-producing node: returns the surviving rows and
    /// their extended-column bindings.
    fn eval_rel(
        &mut self,
        plan: &LogicalPlan,
        acting: &[u32],
        binds: &[Bindings],
    ) -> Result<(Vec<u32>, Vec<Bindings>)> {
        match plan {
            LogicalPlan::Scan => Ok((acting.to_vec(), binds.to_vec())),
            LogicalPlan::Select { input, predicate } => {
                let (rows, bs) = self.eval_rel(input, acting, binds)?;
                let mut out_rows = Vec::with_capacity(rows.len());
                let mut out_binds = Vec::with_capacity(rows.len());
                let mut no_aggs = NoAggregates;
                for (row, b) in rows.into_iter().zip(bs) {
                    let ctx = self.ctx_for(row, &b);
                    if eval_cond(predicate, &ctx, &mut no_aggs)? {
                        out_rows.push(row);
                        out_binds.push(b);
                    }
                }
                Ok((out_rows, out_binds))
            }
            LogicalPlan::ExtendExpr { input, name, term } => {
                let (rows, mut bs) = self.eval_rel(input, acting, binds)?;
                let mut no_aggs = NoAggregates;
                for (row, b) in rows.iter().zip(bs.iter_mut()) {
                    let ctx = self.ctx_for(*row, b);
                    let v = eval_term(term, &ctx, &mut no_aggs)?;
                    b.insert(name.clone(), v);
                }
                Ok((rows, bs))
            }
            LogicalPlan::ExtendAgg { input, name, call } => {
                let (rows, mut bs) = self.eval_rel(input, acting, binds)?;
                for (row, b) in rows.iter().zip(bs.iter_mut()) {
                    let v = self.eval_aggregate(call, *row, b)?;
                    b.insert(name.clone(), v);
                }
                Ok((rows, bs))
            }
            other => Err(ExecError::Internal(format!(
                "{other:?} is not a relation-producing node"
            ))),
        }
    }

    /// Run an effect-producing node.
    fn run_effects(
        &mut self,
        plan: &LogicalPlan,
        acting: &[u32],
        binds: &[Bindings],
    ) -> Result<()> {
        match plan {
            LogicalPlan::Empty => Ok(()),
            LogicalPlan::CombineWithEnv { input } => self.run_effects(input, acting, binds),
            LogicalPlan::Combine { inputs } => {
                for input in inputs {
                    self.run_effects(input, acting, binds)?;
                }
                Ok(())
            }
            LogicalPlan::Apply {
                input,
                action,
                args,
            } => {
                let (rows, bs) = self.eval_rel(input, acting, binds)?;
                let def = self
                    .registry
                    .action(action)
                    .ok_or_else(|| ExecError::UnknownBuiltin(action.clone()))?
                    .clone();
                self.stats.acting_units += rows.len();
                for (row, b) in rows.iter().zip(bs.iter()) {
                    self.apply_action(&def, args, *row, b)?;
                }
                Ok(())
            }
            // A bare relation node at the effect level produces no effects
            // (can appear for scripts that only compute).
            _ => Ok(()),
        }
    }

    /// Evaluate one aggregate call for one unit.
    fn eval_aggregate(
        &mut self,
        call: &AggCall,
        row: u32,
        bindings: &Bindings,
    ) -> Result<ScriptValue> {
        self.stats.aggregate_probes += 1;
        let memo_key = if self.config.share_aggregates {
            // Aggregates whose arguments depend on let-bound columns cannot be
            // keyed on the call alone; include the rendered argument values.
            let ctx = self.ctx_for(row, bindings);
            let args = eval_call_args(&call.args, &ctx)?;
            Some((format!("{}::{:?}", call.name, args), row))
        } else {
            None
        };
        if let Some(key) = &memo_key {
            if let Some(v) = self.memo.get(key) {
                self.stats.shared_hits += 1;
                return Ok(v.clone());
            }
        }
        let def = self
            .registry
            .aggregate(&call.name)
            .ok_or_else(|| ExecError::UnknownBuiltin(call.name.clone()))?;
        let ctx = self.ctx_for(row, bindings);
        let args = eval_call_args(&call.args, &ctx)?;
        let params = bind_params(&def.name, &def.params, &args)?;

        let result = if self.config.mode == ExecMode::Indexed {
            let planned = self
                .planned
                .get(&call.name)
                .expect("all registry aggregates planned");
            let via_index = match self.cache.as_mut() {
                Some(cache) => cache.evaluate(planned, &params, &ctx)?,
                None => None,
            };
            match via_index {
                Some(v) => v,
                None => {
                    self.stats.naive_scans += 1;
                    eval_aggregate_scan(def, &params, &ctx, self.table)?
                }
            }
        } else {
            self.stats.naive_scans += 1;
            eval_aggregate_scan(def, &params, &ctx, self.table)?
        };
        if let Some(key) = memo_key {
            self.memo.insert(key, result.clone());
        }
        Ok(result)
    }

    /// Apply a built-in action for one acting unit.
    fn apply_action(
        &mut self,
        def: &ActionDef,
        args: &[Term],
        row: u32,
        bindings: &Bindings,
    ) -> Result<()> {
        let ctx = self.ctx_for(row, bindings);
        let arg_values = eval_call_args(args, &ctx)?;
        let params = bind_params(&def.name, &def.params, &arg_values)?;
        let mut full_ctx = self.ctx_for(row, bindings);
        for (k, v) in &params {
            full_ctx.bindings.insert(k.clone(), v.clone());
        }
        let schema = self.table.schema();
        let mut no_aggs = NoAggregates;

        for clause in &def.clauses {
            // Determine the affected rows.
            let candidates: Vec<u32> = if self.config.mode == ExecMode::Indexed {
                let analysis = analyze_filter(&clause.filter, schema, self.config.spatial);
                if let Some(key_term) = &analysis.key_eq {
                    // Targeted effect: O(1) key look-up.
                    let key = eval_term(key_term, &full_ctx, &mut no_aggs)?
                        .as_scalar()?
                        .as_i64()?;
                    match self.table.find_key_readonly(key) {
                        Some(idx) => vec![idx as u32],
                        None => Vec::new(),
                    }
                } else if self.config.aoe_index && analysis.has_rect() && analysis.conjunctive {
                    // Area-of-effect: enumerate candidates through the spatial
                    // index of every partition (§5.4-style processing).
                    let mut no_aggs2 = NoAggregates;
                    let lo_x =
                        eval_term(analysis.x_lo.as_ref().unwrap(), &full_ctx, &mut no_aggs2)?
                            .as_scalar()?
                            .as_f64()?;
                    let hi_x =
                        eval_term(analysis.x_hi.as_ref().unwrap(), &full_ctx, &mut no_aggs2)?
                            .as_scalar()?
                            .as_f64()?;
                    let lo_y =
                        eval_term(analysis.y_lo.as_ref().unwrap(), &full_ctx, &mut no_aggs2)?
                            .as_scalar()?
                            .as_f64()?;
                    let hi_y =
                        eval_term(analysis.y_hi.as_ref().unwrap(), &full_ctx, &mut no_aggs2)?
                            .as_scalar()?
                            .as_f64()?;
                    let rect = sgl_index::Rect::new(lo_x, hi_x, lo_y, hi_y);
                    match self.cache.as_mut() {
                        Some(cache) => {
                            let fps = cache.partition_fps_for(&[])?;
                            let mut rows = Vec::new();
                            for fp in fps {
                                rows.extend(cache.enum_query(&[], fp, &rect)?);
                            }
                            rows
                        }
                        None => (0..self.table.len() as u32).collect(),
                    }
                } else {
                    (0..self.table.len() as u32).collect()
                }
            } else {
                (0..self.table.len() as u32).collect()
            };

            for target in candidates {
                let target_row = self.table.row(target as usize);
                let row_ctx = full_ctx.with_row(target_row);
                if !eval_cond(&clause.filter, &row_ctx, &mut no_aggs)? {
                    continue;
                }
                let target_key = target_row.key(schema);
                for (attr_name, term) in &clause.effects {
                    let attr = schema.attr_id(attr_name).ok_or_else(|| {
                        ExecError::Internal(format!("unknown effect attribute `{attr_name}`"))
                    })?;
                    let value = eval_term(term, &row_ctx, &mut no_aggs)?
                        .as_scalar()?
                        .clone();
                    self.effects
                        .apply(target_key, attr, value)
                        .map_err(ExecError::from)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_algebra::{optimize, translate};
    use sgl_env::{schema::paper_schema, GameRng, Schema, TupleBuilder};
    use sgl_lang::builtins::paper_registry;
    use sgl_lang::normalize::normalize;
    use sgl_lang::parse_script;
    use std::sync::Arc;

    fn make_table(n: usize, spread: f64) -> (Arc<Schema>, EnvTable) {
        let schema = paper_schema().into_shared();
        let mut table = EnvTable::new(Arc::clone(&schema));
        let mut state = 99u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        for key in 0..n {
            let t = TupleBuilder::new(&schema)
                .set("key", key as i64)
                .unwrap()
                .set("player", (key % 2) as i64)
                .unwrap()
                .set("posx", next() * spread)
                .unwrap()
                .set("posy", next() * spread)
                .unwrap()
                .set("health", 20i64)
                .unwrap()
                .build();
            table.insert(t).unwrap();
        }
        (schema, table)
    }

    fn compile(src: &str, registry: &Registry) -> LogicalPlan {
        let script = parse_script(src).unwrap();
        let normal = normalize(&script, registry).unwrap();
        optimize(translate(&normal), registry).plan
    }

    const SCRIPT: &str = r#"
        main(u) {
          (let c = CountEnemiesInRange(u, 12))
          if c > 3 then
            perform MoveInDirection(u, u.posx - 5, u.posy - 5);
          else if c > 0 and u.cooldown = 0 then
            perform FireAt(u, getNearestEnemy(u).key);
        }
    "#;

    fn run_mode(
        mode_config: ExecConfig,
        table: &EnvTable,
        registry: &Registry,
        plan: &LogicalPlan,
    ) -> (EffectBuffer, TickStats) {
        let rng = GameRng::new(42).for_tick(1);
        let acting: Vec<u32> = (0..table.len() as u32).collect();
        let runs = vec![ScriptRun {
            plan,
            acting_rows: acting,
        }];
        execute_tick(table, registry, &runs, &rng, &mode_config).unwrap()
    }

    #[test]
    fn naive_and_indexed_execution_produce_the_same_effects() {
        let registry = paper_registry();
        let (schema, table) = make_table(60, 40.0);
        let plan = compile(SCRIPT, &registry);
        let (naive, naive_stats) = run_mode(ExecConfig::naive(&schema), &table, &registry, &plan);
        let (indexed, indexed_stats) =
            run_mode(ExecConfig::indexed(&schema), &table, &registry, &plan);

        // Same units affected, same integer effects; float effects equal up to
        // summation order.
        let a = naive.canonical();
        let b = indexed.canonical();
        assert_eq!(a.len(), b.len());
        for ((ka, aa, va), (kb, ab, vb)) in a.iter().zip(b.iter()) {
            assert_eq!((ka, aa), (kb, ab));
            let fa = va.as_f64().unwrap();
            let fb = vb.as_f64().unwrap();
            assert!((fa - fb).abs() < 1e-9, "key {ka} attr {aa}: {fa} vs {fb}");
        }
        // The naive run answered every aggregate by scanning; the indexed one
        // answered (almost) everything through indexes or the memo.
        assert!(naive_stats.naive_scans > 0);
        assert_eq!(indexed_stats.naive_scans, 0);
        assert!(indexed_stats.index_probes > 0 || indexed_stats.shared_hits > 0);
    }

    #[test]
    fn heal_area_of_effect_reaches_allies_in_range_only() {
        let registry = paper_registry();
        let schema = paper_schema().into_shared();
        let mut table = EnvTable::new(Arc::clone(&schema));
        // Healer (key 0, player 0) at origin; ally in range (key 1); ally far
        // away (key 2); enemy in range (key 3).
        for (key, player, x) in [(0i64, 0i64, 0.0), (1, 0, 3.0), (2, 0, 50.0), (3, 1, 2.0)] {
            let t = TupleBuilder::new(&schema)
                .set("key", key)
                .unwrap()
                .set("player", player)
                .unwrap()
                .set("posx", x)
                .unwrap()
                .set("posy", 0.0)
                .unwrap()
                .set("health", 10i64)
                .unwrap()
                .build();
            table.insert(t).unwrap();
        }
        let plan = compile("main(u) { perform Heal(u); }", &registry);
        for config in [ExecConfig::naive(&schema), ExecConfig::indexed(&schema)] {
            let rng = GameRng::new(1).for_tick(0);
            let runs = vec![ScriptRun {
                plan: &plan,
                acting_rows: vec![0],
            }];
            let (effects, _) = execute_tick(&table, &registry, &runs, &rng, &config).unwrap();
            let aura = schema.attr_id("inaura").unwrap();
            assert!(
                effects.get(0, aura).is_some(),
                "healer heals itself (ally in range)"
            );
            assert!(effects.get(1, aura).is_some());
            assert_eq!(effects.get(2, aura), None, "ally out of range");
            assert_eq!(effects.get(3, aura), None, "enemies are not healed");
        }
    }

    #[test]
    fn fire_at_damages_target_and_marks_shooter() {
        let registry = paper_registry();
        let schema = paper_schema().into_shared();
        let mut table = EnvTable::new(Arc::clone(&schema));
        for (key, player, x) in [(0i64, 0i64, 0.0), (1, 1, 4.0)] {
            let t = TupleBuilder::new(&schema)
                .set("key", key)
                .unwrap()
                .set("player", player)
                .unwrap()
                .set("posx", x)
                .unwrap()
                .set("posy", 0.0)
                .unwrap()
                .set("health", 10i64)
                .unwrap()
                .build();
            table.insert(t).unwrap();
        }
        let plan = compile(
            "main(u) { if u.cooldown = 0 then perform FireAt(u, getNearestEnemy(u).key); }",
            &registry,
        );
        let config = ExecConfig::indexed(&schema);
        let rng = GameRng::new(5).for_tick(2);
        let runs = vec![ScriptRun {
            plan: &plan,
            acting_rows: vec![0],
        }];
        let (effects, stats) = execute_tick(&table, &registry, &runs, &rng, &config).unwrap();
        let weapon = schema.attr_id("weaponused").unwrap();
        let damage = schema.attr_id("damage").unwrap();
        assert_eq!(effects.get(0, weapon), Some(&Value::Int(1)));
        // The damage roll is (6 - 2) * (Random(1) mod 2) — either 0 or 4, but
        // always recorded for the target.
        let dmg = effects.get(1, damage).unwrap().as_i64().unwrap();
        assert!(dmg == 0 || dmg == 4);
        assert_eq!(stats.acting_units, 1);
    }

    #[test]
    fn empty_plan_and_unknown_action_errors() {
        let registry = paper_registry();
        let (schema, table) = make_table(4, 10.0);
        let plan = LogicalPlan::CombineWithEnv {
            input: Box::new(LogicalPlan::Empty),
        };
        let rng = GameRng::new(1).for_tick(0);
        let runs = vec![ScriptRun {
            plan: &plan,
            acting_rows: vec![0, 1, 2, 3],
        }];
        let (effects, stats) =
            execute_tick(&table, &registry, &runs, &rng, &ExecConfig::naive(&schema)).unwrap();
        assert!(effects.is_empty());
        assert_eq!(stats.aggregate_probes, 0);

        let bad = LogicalPlan::Scan.apply("Teleport", vec![]);
        let runs = vec![ScriptRun {
            plan: &bad,
            acting_rows: vec![0],
        }];
        let err = execute_tick(&table, &registry, &runs, &rng, &ExecConfig::naive(&schema));
        assert!(matches!(err, Err(ExecError::UnknownBuiltin(_))));
    }

    #[test]
    fn shared_aggregates_reduce_probes() {
        let registry = paper_registry();
        let (schema, table) = make_table(40, 30.0);
        // A script whose two branches both need the same count → the memo
        // answers the duplicated ExtendAgg nodes.
        let plan = compile(
            r#"main(u) {
                (let c = CountEnemiesInRange(u, 9))
                if c > 2 then perform MoveInDirection(u, 0, 0);
                else perform MoveInDirection(u, u.posx, u.posy);
            }"#,
            &registry,
        );
        let (_, stats) = run_mode(ExecConfig::indexed(&schema), &table, &registry, &plan);
        assert!(
            stats.shared_hits > 0,
            "duplicated branch aggregates should hit the memo: {stats:?}"
        );
    }
}
