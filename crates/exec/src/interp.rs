//! Set-at-a-time interpretation of logical plans and action application.
//!
//! Both executors interpret the *same* optimized plan and share the same
//! semantics; they differ only in how `ExtendAgg` nodes and action clauses
//! are answered:
//!
//! * the **naive** backend scans the environment for every aggregate probe and
//!   for every action clause (`O(n)` per unit, `O(n²)` per tick);
//! * the **indexed** backend answers aggregates from the per-tick
//!   [`TickIndexes`] cache and resolves targeted/area action clauses through
//!   key look-ups and enumeration indexes (§5.3/§5.4).
//!
//! Either backend can fan the acting units out over worker threads
//! ([`crate::config::Parallelism`]).  The state-effect pattern makes this a
//! pure performance knob: within a tick every unit reads the same immutable
//! environment and the per-tick random function is a pure hash of
//! `(seed, tick, unit key, i)`, so each shard emits exactly the effects its
//! units would emit serially.  Shards record those effects in *ordered
//! per-run logs*; replaying them run-major (run 0 across all shards, then
//! run 1, ...) reproduces the serial executor's exact sequence of `⊕` fold
//! steps, so the combined effect relation (and hence the state digest) is
//! bit-identical to serial execution — even for float-sum attributes, where
//! IEEE addition is commutative but not associative and any regrouping or
//! reordering of the partial sums could change the last bits.

use std::hash::Hasher;

use rustc_hash::FxHashMap;

use sgl_algebra::LogicalPlan;
use sgl_env::{AttrId, EffectBuffer, EnvTable, TickRandom, Value};
use sgl_lang::ast::{AggCall, Term};
use sgl_lang::builtins::{ActionDef, Registry};
use sgl_lang::eval::{eval_cond, eval_term, EvalContext, NoAggregates, ScriptValue};

use sgl_algebra::cost::PhysicalBackend;

use crate::builtin_eval::{bind_params, eval_aggregate_scan, eval_call_args};
use crate::compile::CompiledScript;
use crate::config::{ExecConfig, ExecMode, TickStats};
use crate::error::{ExecError, Result};
use crate::filter::analyze_filter;
use crate::indexes::{hash_value, IndexManager, MatWrite, TickIndexes};
use crate::planner::{plan_aggregate, PlannedAggregate};
use crate::stats::TickObservations;

/// One script to run in a tick: its optimized plan plus the acting units
/// (row indices into the environment) that execute it.
#[derive(Debug, Clone)]
pub struct ScriptRun<'p> {
    /// The optimized logical plan of the script.
    pub plan: &'p LogicalPlan,
    /// Row indices of the units running this script.
    pub acting_rows: Vec<u32>,
    /// Register bytecode for the script, if it was compiled.  Under
    /// [`ExecMode::Compiled`] the run executes on the dispatch-loop VM;
    /// a run without bytecode (or any other mode) walks the plan.
    pub compiled: Option<&'p CompiledScript>,
}

impl<'p> ScriptRun<'p> {
    /// A plan-walking run (no bytecode attached).
    pub fn new(plan: &'p LogicalPlan, acting_rows: Vec<u32>) -> Self {
        ScriptRun {
            plan,
            acting_rows,
            compiled: None,
        }
    }

    /// Attach compiled bytecode, used when the mode is
    /// [`ExecMode::Compiled`].
    pub fn with_compiled(mut self, compiled: &'p CompiledScript) -> Self {
        self.compiled = Some(compiled);
        self
    }
}

/// Execute one clock tick with a throwaway [`IndexManager`] (every index is
/// rebuilt, regardless of the configured policy — callers that want
/// cross-tick maintenance keep a manager alive and use
/// [`execute_tick_with`], as `sgl_engine::Simulation` does).
pub fn execute_tick(
    table: &EnvTable,
    registry: &Registry,
    runs: &[ScriptRun<'_>],
    rng: &TickRandom,
    config: &ExecConfig,
) -> Result<(EffectBuffer, TickStats)> {
    let mut manager = IndexManager::new(config);
    execute_tick_with(table, registry, runs, rng, config, &mut manager)
}

/// Plan every registry aggregate once (index selection is per-definition).
pub fn plan_registry(
    registry: &Registry,
    table: &EnvTable,
    config: &ExecConfig,
) -> FxHashMap<String, PlannedAggregate> {
    let schema = table.schema();
    let mut planned: FxHashMap<String, PlannedAggregate> = FxHashMap::default();
    for (name, def) in registry.aggregates() {
        planned.insert(
            name.to_string(),
            plan_aggregate(def, schema, config.spatial),
        );
    }
    planned
}

/// Execute one clock tick: run every script over its acting units and return
/// the combined effect relation plus execution statistics.  Index structures
/// come from `manager` according to its maintenance policy.
pub fn execute_tick_with(
    table: &EnvTable,
    registry: &Registry,
    runs: &[ScriptRun<'_>],
    rng: &TickRandom,
    config: &ExecConfig,
    manager: &mut IndexManager,
) -> Result<(EffectBuffer, TickStats)> {
    let planned = plan_registry(registry, table, config);
    let constants = registry.constants().clone();
    execute_tick_planned(
        table, registry, runs, rng, config, manager, &planned, &constants,
    )
    .map(|(effects, stats, _)| (effects, stats))
}

/// [`execute_tick_with`] with the aggregate plans and constants supplied by
/// the caller — the engine caches both across ticks (they depend only on
/// the registry, schema and configuration) instead of re-deriving them
/// every tick.  Also returns the tick's per-call-site
/// [`TickObservations`], which the engine feeds into the cost-based
/// planner's statistics store.
#[allow(clippy::too_many_arguments)]
pub fn execute_tick_planned(
    table: &EnvTable,
    registry: &Registry,
    runs: &[ScriptRun<'_>],
    rng: &TickRandom,
    config: &ExecConfig,
    manager: &mut IndexManager,
    planned: &FxHashMap<String, PlannedAggregate>,
    constants: &FxHashMap<String, Value>,
) -> Result<(EffectBuffer, TickStats, TickObservations)> {
    let total_acting: usize = runs.iter().map(|r| r.acting_rows.len()).sum();
    let shards = config.parallelism.resolve(total_acting);

    // Sync cross-tick maintained structures once, through the only mutable
    // borrow of the tick; the fan-out below probes the manager read-only.
    let maint = if config.mode.uses_indexes() {
        manager.prepare(table, planned, constants)?
    } else {
        crate::indexes::MaintStats::default()
    };
    let shared = TickShared {
        table,
        registry,
        config,
        rng,
        constants,
        planned,
    };
    let manager_view = config.mode.uses_indexes().then_some(&*manager);

    let mut stats = TickStats {
        index_delta_ops: maint.delta_ops,
        partition_rebuilds: maint.partition_rebuilds,
        ..TickStats::default()
    };

    if shards <= 1 {
        // Serial: fold every emission straight into the tick's buffer (no
        // logging detour for the default configuration).
        let (sink, shard_stats, obs, mat_writes) = run_shard(&shared, manager_view, runs, true)?;
        let EffectSink::Direct(effects) = sink else {
            return Err(ExecError::Internal(
                "direct shard returned a log sink".into(),
            ));
        };
        stats.merge(&shard_stats);
        stats.effect_rows = effects.len();
        manager.absorb_materialized(mat_writes);
        return Ok((effects, stats, obs));
    }

    let shard_runs = shard_runs(runs, shards);
    let shared_ref = &shared;
    let shard_results: Vec<(EffectSink, TickStats, TickObservations, Vec<MatWrite>)> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = shard_runs
                .iter()
                .map(|shard| scope.spawn(move || run_shard(shared_ref, manager_view, shard, false)))
                .collect();
            handles
                .into_iter()
                .map(|handle| match handle.join() {
                    Ok(result) => result,
                    Err(panic) => std::panic::resume_unwind(panic),
                })
                .collect::<Result<Vec<_>>>()
        })?;

    // Replay the shards' per-run effect logs in the serial executor's order
    // — run-major (run 0 across all shards, then run 1, ...), each shard
    // holding a contiguous segment of its run's acting rows — so this
    // applies the exact `⊕` fold sequence of serial execution.
    let mut effects = EffectBuffer::new(table.schema().clone());
    let mut run_logs: Vec<Vec<EffectLog>> = Vec::with_capacity(shards);
    let mut obs = TickObservations::default();
    let mut mat_writes: Vec<MatWrite> = Vec::new();
    for (sink, shard_stats, shard_obs, shard_writes) in shard_results {
        let EffectSink::Logs { done: logs, .. } = sink else {
            return Err(ExecError::Internal(
                "parallel shard returned a direct sink".into(),
            ));
        };
        run_logs.push(logs);
        stats.merge(&shard_stats);
        obs.merge(&shard_obs);
        mat_writes.extend(shard_writes);
    }
    // Materialize the shards' miss-path recomputes now that the immutable
    // fan-out borrows are done.  Absorbing sorts the combined writes, so the
    // resulting store is identical for every shard count.
    manager.absorb_materialized(mat_writes);
    for run_idx in 0..runs.len() {
        for logs in run_logs.iter_mut() {
            for (key, attr, value) in std::mem::take(&mut logs[run_idx]) {
                effects.apply(key, attr, value).map_err(ExecError::from)?;
            }
        }
    }
    stats.effect_rows = effects.len();
    Ok((effects, stats, obs))
}

/// Effects emitted for one run by one shard, in emission order — the unit of
/// the deterministic run-major replay above.
pub(crate) type EffectLog = Vec<(i64, AttrId, Value)>;

/// Where a shard's effects go: the single-shard (serial) path folds into the
/// tick's `EffectBuffer` directly; parallel shards log per run so the main
/// thread can replay the serial fold order.
pub(crate) enum EffectSink {
    /// Fold each emission immediately (exactly the pre-parallelism path).
    Direct(EffectBuffer),
    /// Ordered per-run logs, replayed run-major across shards.  `current`
    /// always holds the log of the run in flight (so emitting never needs a
    /// "log opened" precondition); [`EffectSink::finish_run`] rolls it into
    /// `done`.
    Logs {
        /// Completed runs' logs, one per run, in run order.
        done: Vec<EffectLog>,
        /// The in-flight run's log.
        current: EffectLog,
    },
}

impl EffectSink {
    fn logs(runs: usize) -> Self {
        EffectSink::Logs {
            done: Vec::with_capacity(runs),
            current: EffectLog::new(),
        }
    }

    pub(crate) fn emit(&mut self, key: i64, attr: AttrId, value: Value) -> Result<()> {
        match self {
            EffectSink::Direct(buffer) => buffer.apply(key, attr, value).map_err(ExecError::from),
            EffectSink::Logs { current, .. } => {
                current.push((key, attr, value));
                Ok(())
            }
        }
    }

    /// Close the in-flight run's log and open the next one.  A no-op for the
    /// direct sink.
    fn finish_run(&mut self) {
        if let EffectSink::Logs { done, current } = self {
            done.push(std::mem::take(current));
        }
    }
}

/// Split every run's acting rows into `shards` contiguous chunks: shard `s`
/// executes the `s`-th segment of the serial iteration order of each run.
fn shard_runs<'p>(runs: &[ScriptRun<'p>], shards: usize) -> Vec<Vec<ScriptRun<'p>>> {
    (0..shards)
        .map(|s| {
            runs.iter()
                .map(|run| {
                    let rows = &run.acting_rows;
                    let base = rows.len() / shards;
                    let rem = rows.len() % shards;
                    let start = s * base + s.min(rem);
                    let end = start + base + usize::from(s < rem);
                    ScriptRun {
                        plan: run.plan,
                        acting_rows: rows[start..end].to_vec(),
                        compiled: run.compiled,
                    }
                })
                .collect()
        })
        .collect()
}

/// Execute one shard's slice of the tick: every run over the shard's acting
/// rows, with shard-private effects, statistics, memo and probe cache.
/// `direct` selects the [`EffectSink`] flavour (single-shard fold vs
/// per-run logs for the parallel replay).
fn run_shard<'a>(
    shared: &TickShared<'a>,
    manager: Option<&'a IndexManager>,
    runs: &[ScriptRun<'_>],
    direct: bool,
) -> Result<(EffectSink, TickStats, TickObservations, Vec<MatWrite>)> {
    let cache = match manager {
        Some(manager) => manager.tick_view(shared.table, shared.config, shared.constants)?,
        None => None,
    };
    let mut state = ShardState {
        cache,
        memo: FxHashMap::default(),
        obs: TickObservations::default(),
        effects: if direct {
            EffectSink::Direct(EffectBuffer::new(shared.table.schema().clone()))
        } else {
            EffectSink::logs(runs.len())
        },
        stats: TickStats::default(),
    };
    for run in runs {
        match run.compiled {
            // Compiled mode with bytecode: the register VM.  A compiled run
            // in any other mode still walks the plan — the bytecode is a
            // pure execution strategy, not a semantic switch.
            Some(compiled) if shared.config.mode == ExecMode::Compiled => {
                crate::vm::run_compiled(shared, &mut state, compiled, &run.acting_rows)?;
            }
            _ => {
                let mut interp = Interp {
                    shared,
                    state: &mut state,
                };
                interp.run_effects(
                    run.plan,
                    &run.acting_rows,
                    &vec![FxHashMap::default(); run.acting_rows.len()],
                )?;
            }
        }
        state.effects.finish_run();
    }
    let mut mat_writes = Vec::new();
    if let Some(mut cache) = state.cache.take() {
        mat_writes = cache.take_mat_writes();
        state.stats.merge(&cache.stats);
        state.obs.merge(&cache.obs);
    }
    Ok((state.effects, state.stats, state.obs, mat_writes))
}

/// Read-only state shared by every shard of a tick.  All fields are borrows
/// of `Sync` data: the parallel executor hands one `&TickShared` to each
/// worker thread.
pub(crate) struct TickShared<'a> {
    pub(crate) table: &'a EnvTable,
    pub(crate) registry: &'a Registry,
    pub(crate) config: &'a ExecConfig,
    pub(crate) rng: &'a TickRandom,
    pub(crate) constants: &'a FxHashMap<String, Value>,
    pub(crate) planned: &'a FxHashMap<String, PlannedAggregate>,
}

/// Mutable state owned by one shard: its effect sink and statistics, the
/// aggregate-sharing memo (keyed per unit row, so sharding never splits a
/// unit's probes) and, in indexed mode, its per-tick probe cache.
pub(crate) struct ShardState<'a> {
    pub(crate) cache: Option<TickIndexes<'a>>,
    /// Memo of aggregate results per (call fingerprint, unit row).
    pub(crate) memo: FxHashMap<(u64, u32), ScriptValue>,
    /// Per-call-site observations for the cost-based planner (merged with
    /// the cache's own observations at shard end).
    pub(crate) obs: TickObservations,
    pub(crate) effects: EffectSink,
    pub(crate) stats: TickStats,
}

/// Fingerprint of one aggregate probe for the sharing memo: the call name
/// plus the rendered argument values, every component length-delimited and
/// type-tagged so the *encoding* is injective before it is hashed to 64
/// bits — the same discipline (and the same residual 2⁻⁶⁴-per-pair collision
/// odds) as the partition-key fingerprints of `indexes.rs`.  Replaces the
/// former per-probe `format!("{name}::{args:?}")` string key.
pub(crate) fn fingerprint_call(name: &str, args: &[ScriptValue]) -> u64 {
    let mut h = rustc_hash::FxHasher::default();
    h.write_usize(name.len());
    h.write(name.as_bytes());
    for arg in args {
        match arg {
            ScriptValue::Scalar(v) => {
                h.write_u8(0);
                hash_value(&mut h, v);
            }
            ScriptValue::Record(fields) => {
                h.write_u8(1);
                h.write_usize(fields.len());
                for (field, v) in fields {
                    h.write_usize(field.len());
                    h.write(field.as_bytes());
                    hash_value(&mut h, v);
                }
            }
        }
    }
    h.finish()
}

struct Interp<'a, 'p> {
    shared: &'p TickShared<'a>,
    state: &'p mut ShardState<'a>,
}

type Bindings = FxHashMap<String, ScriptValue>;

impl<'a, 'p> Interp<'a, 'p> {
    fn ctx_for(&self, row: u32, bindings: &Bindings) -> EvalContext<'a> {
        let shared = self.shared;
        let schema = shared.table.schema();
        let unit = shared.table.row(row as usize);
        let mut ctx = EvalContext::new(schema, unit, shared.rng, shared.constants);
        ctx.bindings = bindings.clone();
        ctx
    }

    /// Evaluate a relation-producing node: returns the surviving rows and
    /// their extended-column bindings.
    fn eval_rel(
        &mut self,
        plan: &LogicalPlan,
        acting: &[u32],
        binds: &[Bindings],
    ) -> Result<(Vec<u32>, Vec<Bindings>)> {
        match plan {
            LogicalPlan::Scan => Ok((acting.to_vec(), binds.to_vec())),
            LogicalPlan::Select { input, predicate } => {
                let (rows, bs) = self.eval_rel(input, acting, binds)?;
                let mut out_rows = Vec::with_capacity(rows.len());
                let mut out_binds = Vec::with_capacity(rows.len());
                let mut no_aggs = NoAggregates;
                for (row, b) in rows.into_iter().zip(bs) {
                    let ctx = self.ctx_for(row, &b);
                    if eval_cond(predicate, &ctx, &mut no_aggs)? {
                        out_rows.push(row);
                        out_binds.push(b);
                    }
                }
                Ok((out_rows, out_binds))
            }
            LogicalPlan::ExtendExpr { input, name, term } => {
                let (rows, mut bs) = self.eval_rel(input, acting, binds)?;
                let mut no_aggs = NoAggregates;
                for (row, b) in rows.iter().zip(bs.iter_mut()) {
                    let ctx = self.ctx_for(*row, b);
                    let v = eval_term(term, &ctx, &mut no_aggs)?;
                    b.insert(name.clone(), v);
                }
                Ok((rows, bs))
            }
            LogicalPlan::ExtendAgg { input, name, call } => {
                let (rows, mut bs) = self.eval_rel(input, acting, binds)?;
                for (row, b) in rows.iter().zip(bs.iter_mut()) {
                    let v = self.eval_aggregate(call, *row, b)?;
                    b.insert(name.clone(), v);
                }
                Ok((rows, bs))
            }
            other => Err(ExecError::Internal(format!(
                "{other:?} is not a relation-producing node"
            ))),
        }
    }

    /// Run an effect-producing node.
    fn run_effects(
        &mut self,
        plan: &LogicalPlan,
        acting: &[u32],
        binds: &[Bindings],
    ) -> Result<()> {
        match plan {
            LogicalPlan::Empty => Ok(()),
            LogicalPlan::CombineWithEnv { input } => self.run_effects(input, acting, binds),
            LogicalPlan::Combine { inputs } => {
                for input in inputs {
                    self.run_effects(input, acting, binds)?;
                }
                Ok(())
            }
            LogicalPlan::Apply {
                input,
                action,
                args,
            } => {
                let (rows, bs) = self.eval_rel(input, acting, binds)?;
                let def = self
                    .shared
                    .registry
                    .action(action)
                    .ok_or_else(|| ExecError::UnknownBuiltin(action.clone()))?
                    .clone();
                self.state.stats.acting_units += rows.len();
                for (row, b) in rows.iter().zip(bs.iter()) {
                    self.apply_action(&def, args, *row, b)?;
                }
                Ok(())
            }
            // A bare relation node at the effect level produces no effects
            // (can appear for scripts that only compute).
            _ => Ok(()),
        }
    }

    /// Evaluate one aggregate call for one unit.
    fn eval_aggregate(
        &mut self,
        call: &AggCall,
        row: u32,
        bindings: &Bindings,
    ) -> Result<ScriptValue> {
        self.state.stats.aggregate_probes += 1;
        let ctx = self.ctx_for(row, bindings);
        let args = eval_call_args(&call.args, &ctx)?;
        // Aggregates whose arguments depend on let-bound columns cannot be
        // keyed on the call alone; the fingerprint covers the rendered
        // argument values.
        let memo_key = self
            .shared
            .config
            .share_aggregates
            .then(|| (fingerprint_call(&call.name, &args), row));
        if let Some(key) = &memo_key {
            if let Some(v) = self.state.memo.get(key) {
                self.state.stats.shared_hits += 1;
                return Ok(v.clone());
            }
        }
        let def = self
            .shared
            .registry
            .aggregate(&call.name)
            .ok_or_else(|| ExecError::UnknownBuiltin(call.name.clone()))?;
        let params = bind_params(&def.name, &def.params, &args)?;

        self.state.obs.record_probe(&call.name);
        let result = if self.shared.config.mode.uses_indexes() {
            let planned = self.shared.planned.get(&call.name).ok_or_else(|| {
                ExecError::Internal(format!(
                    "aggregate `{}` missing from the plan cache",
                    call.name
                ))
            })?;
            // Built-in definitions are closed (see `TickIndexes::evaluate`),
            // so the probe context carries the bound parameters and nothing
            // from the calling script's scope.
            let probe_ctx = EvalContext {
                schema: ctx.schema,
                unit: ctx.unit,
                unit_key: ctx.unit_key,
                row: None,
                rng: ctx.rng,
                constants: ctx.constants,
                bindings: params,
            };
            let via_index = match self.state.cache.as_mut() {
                Some(cache) => cache.evaluate(planned, &probe_ctx)?,
                None => None,
            };
            match via_index {
                Some(v) => v,
                None => {
                    self.state.stats.naive_scans += 1;
                    self.state
                        .obs
                        .record_served(&call.name, PhysicalBackend::Scan);
                    eval_aggregate_scan(def, &probe_ctx.bindings, &ctx, self.shared.table)?
                }
            }
        } else {
            self.state.stats.naive_scans += 1;
            self.state
                .obs
                .record_served(&call.name, PhysicalBackend::Scan);
            eval_aggregate_scan(def, &params, &ctx, self.shared.table)?
        };
        if let Some(key) = memo_key {
            self.state.memo.insert(key, result.clone());
        }
        Ok(result)
    }

    /// Apply a built-in action for one acting unit.
    fn apply_action(
        &mut self,
        def: &ActionDef,
        args: &[Term],
        row: u32,
        bindings: &Bindings,
    ) -> Result<()> {
        let ctx = self.ctx_for(row, bindings);
        let arg_values = eval_call_args(args, &ctx)?;
        let params = bind_params(&def.name, &def.params, &arg_values)?;
        let mut full_ctx = self.ctx_for(row, bindings);
        for (k, v) in &params {
            full_ctx.bindings.insert(k.clone(), v.clone());
        }
        let config = self.shared.config;
        let schema = self.shared.table.schema();
        let mut no_aggs = NoAggregates;

        for clause in &def.clauses {
            // Determine the affected rows.
            let full_range = || (0..self.shared.table.len() as u32).collect::<Vec<u32>>();
            let candidates: Vec<u32> = if config.mode.uses_indexes() {
                let analysis = analyze_filter(&clause.filter, schema, config.spatial);
                if let Some(key_term) = &analysis.key_eq {
                    // Targeted effect: O(1) key look-up.
                    let key = eval_term(key_term, &full_ctx, &mut no_aggs)?
                        .as_scalar()?
                        .as_i64()?;
                    match self.shared.table.find_key_readonly(key) {
                        Some(idx) => vec![idx as u32],
                        None => Vec::new(),
                    }
                } else if let (true, Some(x_lo), Some(x_hi), Some(y_lo), Some(y_hi)) = (
                    config.aoe_index && analysis.conjunctive,
                    &analysis.x_lo,
                    &analysis.x_hi,
                    &analysis.y_lo,
                    &analysis.y_hi,
                ) {
                    // Area-of-effect: enumerate candidates through the spatial
                    // index of every partition (§5.4-style processing).
                    let mut no_aggs2 = NoAggregates;
                    let lo_x = eval_term(x_lo, &full_ctx, &mut no_aggs2)?
                        .as_scalar()?
                        .as_f64()?;
                    let hi_x = eval_term(x_hi, &full_ctx, &mut no_aggs2)?
                        .as_scalar()?
                        .as_f64()?;
                    let lo_y = eval_term(y_lo, &full_ctx, &mut no_aggs2)?
                        .as_scalar()?
                        .as_f64()?;
                    let hi_y = eval_term(y_hi, &full_ctx, &mut no_aggs2)?
                        .as_scalar()?
                        .as_f64()?;
                    let rect = sgl_index::Rect::new(lo_x, hi_x, lo_y, hi_y);
                    match self.state.cache.as_mut() {
                        Some(cache) => {
                            let fps = cache.partition_fps_for(&[])?;
                            let mut rows = Vec::new();
                            for fp in fps {
                                rows.extend(cache.enum_query(&[], fp, &rect)?);
                            }
                            rows
                        }
                        None => full_range(),
                    }
                } else {
                    full_range()
                }
            } else {
                full_range()
            };

            for target in candidates {
                let target_row = self.shared.table.row(target as usize);
                let row_ctx = full_ctx.with_row(target_row);
                if !eval_cond(&clause.filter, &row_ctx, &mut no_aggs)? {
                    continue;
                }
                let target_key = target_row.key(schema);
                for (attr_name, term) in &clause.effects {
                    let attr = schema.attr_id(attr_name).ok_or_else(|| {
                        ExecError::Internal(format!("unknown effect attribute `{attr_name}`"))
                    })?;
                    let value = eval_term(term, &row_ctx, &mut no_aggs)?
                        .as_scalar()?
                        .clone();
                    self.state.effects.emit(target_key, attr, value)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_algebra::{optimize, translate};
    use sgl_env::{schema::paper_schema, GameRng, Schema, TupleBuilder};
    use sgl_lang::builtins::paper_registry;
    use sgl_lang::normalize::normalize;
    use sgl_lang::parse_script;
    use std::sync::Arc;

    fn make_table(n: usize, spread: f64) -> (Arc<Schema>, EnvTable) {
        let schema = paper_schema().into_shared();
        let mut table = EnvTable::new(Arc::clone(&schema));
        let mut state = 99u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        for key in 0..n {
            let t = TupleBuilder::new(&schema)
                .set("key", key as i64)
                .unwrap()
                .set("player", (key % 2) as i64)
                .unwrap()
                .set("posx", next() * spread)
                .unwrap()
                .set("posy", next() * spread)
                .unwrap()
                .set("health", 20i64)
                .unwrap()
                .build();
            table.insert(t).unwrap();
        }
        (schema, table)
    }

    fn compile(src: &str, registry: &Registry) -> LogicalPlan {
        let script = parse_script(src).unwrap();
        let normal = normalize(&script, registry).unwrap();
        optimize(translate(&normal), registry).plan
    }

    const SCRIPT: &str = r#"
        main(u) {
          (let c = CountEnemiesInRange(u, 12))
          if c > 3 then
            perform MoveInDirection(u, u.posx - 5, u.posy - 5);
          else if c > 0 and u.cooldown = 0 then
            perform FireAt(u, getNearestEnemy(u).key);
        }
    "#;

    fn run_mode(
        mode_config: ExecConfig,
        table: &EnvTable,
        registry: &Registry,
        plan: &LogicalPlan,
    ) -> (EffectBuffer, TickStats) {
        let rng = GameRng::new(42).for_tick(1);
        let acting: Vec<u32> = (0..table.len() as u32).collect();
        let runs = vec![ScriptRun::new(plan, acting)];
        execute_tick(table, registry, &runs, &rng, &mode_config).unwrap()
    }

    #[test]
    fn naive_and_indexed_execution_produce_the_same_effects() {
        let registry = paper_registry();
        let (schema, table) = make_table(60, 40.0);
        let plan = compile(SCRIPT, &registry);
        let (naive, naive_stats) = run_mode(ExecConfig::naive(&schema), &table, &registry, &plan);
        let (indexed, indexed_stats) =
            run_mode(ExecConfig::indexed(&schema), &table, &registry, &plan);

        // Same units affected, same integer effects; float effects equal up to
        // summation order.
        let a = naive.canonical();
        let b = indexed.canonical();
        assert_eq!(a.len(), b.len());
        for ((ka, aa, va), (kb, ab, vb)) in a.iter().zip(b.iter()) {
            assert_eq!((ka, aa), (kb, ab));
            let fa = va.as_f64().unwrap();
            let fb = vb.as_f64().unwrap();
            assert!((fa - fb).abs() < 1e-9, "key {ka} attr {aa}: {fa} vs {fb}");
        }
        // The naive run answered every aggregate by scanning; the indexed one
        // answered (almost) everything through indexes or the memo.
        assert!(naive_stats.naive_scans > 0);
        assert_eq!(indexed_stats.naive_scans, 0);
        assert!(indexed_stats.index_probes > 0 || indexed_stats.shared_hits > 0);
    }

    #[test]
    fn heal_area_of_effect_reaches_allies_in_range_only() {
        let registry = paper_registry();
        let schema = paper_schema().into_shared();
        let mut table = EnvTable::new(Arc::clone(&schema));
        // Healer (key 0, player 0) at origin; ally in range (key 1); ally far
        // away (key 2); enemy in range (key 3).
        for (key, player, x) in [(0i64, 0i64, 0.0), (1, 0, 3.0), (2, 0, 50.0), (3, 1, 2.0)] {
            let t = TupleBuilder::new(&schema)
                .set("key", key)
                .unwrap()
                .set("player", player)
                .unwrap()
                .set("posx", x)
                .unwrap()
                .set("posy", 0.0)
                .unwrap()
                .set("health", 10i64)
                .unwrap()
                .build();
            table.insert(t).unwrap();
        }
        let plan = compile("main(u) { perform Heal(u); }", &registry);
        for config in [ExecConfig::naive(&schema), ExecConfig::indexed(&schema)] {
            let rng = GameRng::new(1).for_tick(0);
            let runs = vec![ScriptRun::new(&plan, vec![0])];
            let (effects, _) = execute_tick(&table, &registry, &runs, &rng, &config).unwrap();
            let aura = schema.attr_id("inaura").unwrap();
            assert!(
                effects.get(0, aura).is_some(),
                "healer heals itself (ally in range)"
            );
            assert!(effects.get(1, aura).is_some());
            assert_eq!(effects.get(2, aura), None, "ally out of range");
            assert_eq!(effects.get(3, aura), None, "enemies are not healed");
        }
    }

    #[test]
    fn fire_at_damages_target_and_marks_shooter() {
        let registry = paper_registry();
        let schema = paper_schema().into_shared();
        let mut table = EnvTable::new(Arc::clone(&schema));
        for (key, player, x) in [(0i64, 0i64, 0.0), (1, 1, 4.0)] {
            let t = TupleBuilder::new(&schema)
                .set("key", key)
                .unwrap()
                .set("player", player)
                .unwrap()
                .set("posx", x)
                .unwrap()
                .set("posy", 0.0)
                .unwrap()
                .set("health", 10i64)
                .unwrap()
                .build();
            table.insert(t).unwrap();
        }
        let plan = compile(
            "main(u) { if u.cooldown = 0 then perform FireAt(u, getNearestEnemy(u).key); }",
            &registry,
        );
        let config = ExecConfig::indexed(&schema);
        let rng = GameRng::new(5).for_tick(2);
        let runs = vec![ScriptRun::new(&plan, vec![0])];
        let (effects, stats) = execute_tick(&table, &registry, &runs, &rng, &config).unwrap();
        let weapon = schema.attr_id("weaponused").unwrap();
        let damage = schema.attr_id("damage").unwrap();
        assert_eq!(effects.get(0, weapon), Some(&Value::Int(1)));
        // The damage roll is (6 - 2) * (Random(1) mod 2) — either 0 or 4, but
        // always recorded for the target.
        let dmg = effects.get(1, damage).unwrap().as_i64().unwrap();
        assert!(dmg == 0 || dmg == 4);
        assert_eq!(stats.acting_units, 1);
    }

    #[test]
    fn empty_plan_and_unknown_action_errors() {
        let registry = paper_registry();
        let (schema, table) = make_table(4, 10.0);
        let plan = LogicalPlan::CombineWithEnv {
            input: Box::new(LogicalPlan::Empty),
        };
        let rng = GameRng::new(1).for_tick(0);
        let runs = vec![ScriptRun::new(&plan, vec![0, 1, 2, 3])];
        let (effects, stats) =
            execute_tick(&table, &registry, &runs, &rng, &ExecConfig::naive(&schema)).unwrap();
        assert!(effects.is_empty());
        assert_eq!(stats.aggregate_probes, 0);

        let bad = LogicalPlan::Scan.apply("Teleport", vec![]);
        let runs = vec![ScriptRun::new(&bad, vec![0])];
        let err = execute_tick(&table, &registry, &runs, &rng, &ExecConfig::naive(&schema));
        assert!(matches!(err, Err(ExecError::UnknownBuiltin(_))));
    }

    /// The Send/Sync audit behind the parallel executor: everything a worker
    /// thread borrows must be `Sync`, everything it owns must be `Send`.
    #[test]
    fn tick_state_is_thread_safe() {
        fn assert_sync<T: Sync>() {}
        fn assert_send<T: Send>() {}
        assert_sync::<EnvTable>();
        assert_sync::<Registry>();
        assert_sync::<IndexManager>();
        assert_sync::<TickRandom>();
        assert_sync::<ExecConfig>();
        assert_sync::<FxHashMap<String, PlannedAggregate>>();
        assert_sync::<TickShared<'static>>();
        assert_send::<TickIndexes<'static>>();
        assert_send::<EvalContext<'static>>();
        assert_send::<EffectBuffer>();
        assert_send::<ShardState<'static>>();
    }

    #[test]
    fn parallel_execution_matches_serial_exactly() {
        use crate::config::Parallelism;
        let registry = paper_registry();
        let (schema, table) = make_table(97, 40.0);
        let plan = compile(SCRIPT, &registry);
        let (serial, serial_stats) =
            run_mode(ExecConfig::indexed(&schema), &table, &registry, &plan);
        for threads in [2usize, 3, 4, 16] {
            let config =
                ExecConfig::indexed(&schema).with_parallelism(Parallelism::Threads(threads));
            let (parallel, parallel_stats) = run_mode(config, &table, &registry, &plan);
            // Bit-identical combined effects, not just "close".
            assert_eq!(
                serial.canonical(),
                parallel.canonical(),
                "{threads} threads diverged from serial"
            );
            // The work counters that do not depend on shard-local caching
            // must agree; probes answered per shard still never fall back to
            // scans.
            assert_eq!(
                serial_stats.aggregate_probes,
                parallel_stats.aggregate_probes
            );
            assert_eq!(serial_stats.acting_units, parallel_stats.acting_units);
            assert_eq!(serial_stats.effect_rows, parallel_stats.effect_rows);
            assert_eq!(parallel_stats.naive_scans, 0);
        }
        // Naive mode shards the same way.
        let (naive, _) = run_mode(ExecConfig::naive(&schema), &table, &registry, &plan);
        let naive_parallel = ExecConfig::naive(&schema).with_parallelism(Parallelism::Threads(4));
        let (naive4, _) = run_mode(naive_parallel, &table, &registry, &plan);
        assert_eq!(naive.canonical(), naive4.canonical());
    }

    /// Float sums are commutative but not associative: merging per-shard
    /// *pre-combined* buffers would regroup `((a+b)+c)` into `(a+(b+c))` and
    /// change the last bits.  The shard-order log replay must reproduce the
    /// serial fold exactly even when units in different shards contribute
    /// float-sum effects to the same (unit, attribute).
    #[test]
    fn cross_shard_float_sums_reproduce_the_serial_fold_bitwise() {
        use crate::config::Parallelism;
        use sgl_lang::ast::{CmpOp, Cond};
        use sgl_lang::builtins::EffectClause;

        let mut registry = paper_registry();
        // Push(u, target): add the acting unit's posx to the *target's*
        // movement vector — a float-sum effect on a shared target.
        registry.register_action(sgl_lang::builtins::ActionDef {
            name: "Push".into(),
            params: vec!["u".into(), "target".into()],
            clauses: vec![EffectClause {
                filter: Cond::cmp(CmpOp::Eq, Term::row("key"), Term::name("target")),
                effects: vec![("movevect_x".into(), Term::unit("posx"))],
            }],
        });
        let schema = paper_schema().into_shared();
        let mut table = EnvTable::new(Arc::clone(&schema));
        // posx values chosen so the fold order is observable: serial
        // ((1e16 + 1) + 1) = 1e16, while the regrouped (1e16 + (1 + 1))
        // would be 1.0000000000000002e16.
        for (key, posx) in [(0i64, 1e16), (1, 1.0), (2, 1.0)] {
            let t = TupleBuilder::new(&schema)
                .set("key", key)
                .unwrap()
                .set("posx", posx)
                .unwrap()
                .set("health", 10i64)
                .unwrap()
                .build();
            table.insert(t).unwrap();
        }
        let plan = compile("main(u) { perform Push(u, 0); }", &registry);
        let run = |threads: usize| -> Value {
            let config = match threads {
                0 | 1 => ExecConfig::naive(&schema),
                n => ExecConfig::naive(&schema).with_parallelism(Parallelism::Threads(n)),
            };
            let rng = GameRng::new(1).for_tick(0);
            let runs = vec![ScriptRun::new(&plan, vec![0, 1, 2])];
            let (effects, _) = execute_tick(&table, &registry, &runs, &rng, &config).unwrap();
            effects
                .get(0, schema.attr_id("movevect_x").unwrap())
                .unwrap()
                .clone()
        };
        let serial = run(1);
        assert_eq!(serial, Value::Float(1e16), "serial fold is left-to-right");
        for threads in [2usize, 3] {
            assert_eq!(
                run(threads),
                serial,
                "{threads} threads regrouped the float sum"
            );
        }
    }

    /// Serial emission order is *run-major* (all of run 0's rows, then all
    /// of run 1's).  The parallel replay must interleave the shards' logs
    /// per run — replaying whole shards back-to-back would fold effects from
    /// different runs in the wrong order.
    #[test]
    fn cross_run_float_sums_reproduce_the_serial_fold_bitwise() {
        use crate::config::Parallelism;
        use sgl_lang::ast::{CmpOp, Cond};
        use sgl_lang::builtins::EffectClause;

        let mut registry = paper_registry();
        registry.register_action(sgl_lang::builtins::ActionDef {
            name: "Push".into(),
            params: vec!["u".into(), "target".into()],
            clauses: vec![EffectClause {
                filter: Cond::cmp(CmpOp::Eq, Term::row("key"), Term::name("target")),
                effects: vec![("movevect_x".into(), Term::unit("posx"))],
            }],
        });
        let schema = paper_schema().into_shared();
        let mut table = EnvTable::new(Arc::clone(&schema));
        // Run 0 contributes +1e16 (row 0) and +1.0 (row 1); run 1
        // contributes -1e16 (row 2).  Serial (run-major) order folds
        // ((1e16 + 1) - 1e16) = 0.0; a shard-major replay at 2 threads
        // would fold ((1e16 - 1e16) + 1) = 1.0.
        for (key, posx) in [(0i64, 1e16), (1, 1.0), (2, -1e16)] {
            let t = TupleBuilder::new(&schema)
                .set("key", key)
                .unwrap()
                .set("posx", posx)
                .unwrap()
                .set("health", 10i64)
                .unwrap()
                .build();
            table.insert(t).unwrap();
        }
        let plan = compile("main(u) { perform Push(u, 0); }", &registry);
        let run = |threads: usize| -> Value {
            let config = match threads {
                0 | 1 => ExecConfig::naive(&schema),
                n => ExecConfig::naive(&schema).with_parallelism(Parallelism::Threads(n)),
            };
            let rng = GameRng::new(1).for_tick(0);
            let runs = vec![
                ScriptRun::new(&plan, vec![0, 1]),
                ScriptRun::new(&plan, vec![2]),
            ];
            let (effects, _) = execute_tick(&table, &registry, &runs, &rng, &config).unwrap();
            effects
                .get(0, schema.attr_id("movevect_x").unwrap())
                .unwrap()
                .clone()
        };
        let serial = run(1);
        assert_eq!(serial, Value::Float(0.0), "serial fold is run-major");
        for threads in [2usize, 3] {
            assert_eq!(run(threads), serial, "{threads} threads reordered runs");
        }
    }

    #[test]
    fn sharding_splits_rows_contiguously_and_exhaustively() {
        let plan = LogicalPlan::Scan;
        let runs = vec![
            ScriptRun::new(&plan, (0..10).collect()),
            ScriptRun::new(&plan, vec![100, 101, 102]),
        ];
        let shards = shard_runs(&runs, 4);
        assert_eq!(shards.len(), 4);
        // Concatenating the shards reproduces each run's serial order.
        for run_idx in 0..runs.len() {
            let glued: Vec<u32> = shards
                .iter()
                .flat_map(|s| s[run_idx].acting_rows.iter().copied())
                .collect();
            assert_eq!(glued, runs[run_idx].acting_rows);
        }
        // Each run is balanced to within one row across the shards.
        for run_idx in 0..runs.len() {
            let sizes: Vec<usize> = shards
                .iter()
                .map(|s| s[run_idx].acting_rows.len())
                .collect();
            assert_eq!(sizes.iter().sum::<usize>(), runs[run_idx].acting_rows.len());
            let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(hi - lo <= 1, "{sizes:?}");
        }
    }

    #[test]
    fn call_fingerprints_are_length_delimited() {
        let a = fingerprint_call("Count", &[ScriptValue::scalar(1i64)]);
        assert_eq!(a, fingerprint_call("Count", &[ScriptValue::scalar(1i64)]));
        assert_ne!(a, fingerprint_call("Count", &[ScriptValue::scalar(2i64)]));
        assert_ne!(a, fingerprint_call("Count", &[ScriptValue::scalar(1.0)]));
        assert_ne!(a, fingerprint_call("Coun", &[ScriptValue::scalar(1i64)]));
        // Record boundaries are delimited: {ab}{c} differs from {a}{bc}.
        let r1 = fingerprint_call(
            "f",
            &[ScriptValue::record(vec![
                ("ab".into(), Value::Int(1)),
                ("c".into(), Value::Int(2)),
            ])],
        );
        let r2 = fingerprint_call(
            "f",
            &[ScriptValue::record(vec![
                ("a".into(), Value::Int(1)),
                ("bc".into(), Value::Int(2)),
            ])],
        );
        assert_ne!(r1, r2);
    }

    #[test]
    fn shared_aggregates_reduce_probes() {
        let registry = paper_registry();
        let (schema, table) = make_table(40, 30.0);
        // A script whose two branches both need the same count → the memo
        // answers the duplicated ExtendAgg nodes.
        let plan = compile(
            r#"main(u) {
                (let c = CountEnemiesInRange(u, 9))
                if c > 2 then perform MoveInDirection(u, 0, 0);
                else perform MoveInDirection(u, u.posx, u.posy);
            }"#,
            &registry,
        );
        let (_, stats) = run_mode(ExecConfig::indexed(&schema), &table, &registry, &plan);
        assert!(
            stats.shared_hits > 0,
            "duplicated branch aggregates should hit the memo: {stats:?}"
        );
    }
}
