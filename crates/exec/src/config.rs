//! Executor configuration and per-tick statistics.

use sgl_env::{AttrId, Schema};

use crate::error::ExecError;

/// Which execution strategy evaluates the aggregate queries of a tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Straightforward per-unit evaluation: every aggregate scans the whole
    /// environment (`O(n)` per unit, `O(n²)` per tick) — the baseline of §6.
    Naive,
    /// Set-at-a-time evaluation through per-tick index structures
    /// (`O(n log n)` per tick) — the paper's contribution, with script
    /// statements evaluated by the tree-walking interpreter.
    Indexed,
    /// Indexed execution with scripts lowered to register bytecode
    /// ([`crate::compile`]) and run by the dispatch-loop VM
    /// (`vm` module).  Observationally identical to [`ExecMode::Indexed`];
    /// scripts registered without sources (no normalized AST to compile)
    /// transparently fall back to the interpreter.
    Compiled,
    /// The reference interpreter of the conformance suite: tree-walking
    /// evaluation of the *normalized script AST* itself — no planner, no
    /// optimizer, no indexes, no aggregate sharing, strictly serial (see
    /// [`crate::oracle`]).  Deliberately the simplest possible execution so
    /// every other configuration can be differentially tested against it.
    Oracle,
}

impl ExecMode {
    /// True for the modes that plan aggregates and probe index structures
    /// (`Indexed` and `Compiled` differ only in how script *statements* are
    /// evaluated; the aggregate/index machinery is shared).
    pub fn uses_indexes(self) -> bool {
        matches!(self, ExecMode::Indexed | ExecMode::Compiled)
    }

    /// The planned-execution mode selected by the `SGL_EXEC_MODE`
    /// environment variable (`compiled`, or `interp`/`indexed` to force the
    /// tree-walking interpreter), defaulting to [`ExecMode::Compiled`].
    /// Unrecognised values warn and keep the default — presets must never
    /// panic on environment noise.
    fn planned_from_env() -> ExecMode {
        match std::env::var("SGL_EXEC_MODE") {
            Err(_) => ExecMode::Compiled,
            Ok(raw) => match raw.trim().to_ascii_lowercase().as_str() {
                "" | "compiled" => ExecMode::Compiled,
                "interp" | "interpreter" | "indexed" => ExecMode::Indexed,
                _ => {
                    eprintln!(
                        "warning: SGL_EXEC_MODE must be `compiled` or `interp`, \
                         got `{raw}`; using compiled"
                    );
                    ExecMode::Compiled
                }
            },
        }
    }
}

/// How aggregate index structures are kept in sync with the environment
/// across clock ticks (the §5.3 / §6.4 design axis this engine makes
/// pluggable).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MaintenancePolicy {
    /// Discard every structure at end of tick and rebuild lazily on first
    /// use in the next tick — the paper's choice for volatile attributes.
    RebuildEachTick,
    /// Keep dynamically maintained structures alive across ticks and apply
    /// only the per-unit deltas (movement, spawns, deaths, value changes)
    /// observed after each tick's post-processing.
    Incremental,
    /// Decide per partition each tick: partitions whose update ratio exceeds
    /// `rebuild_ratio` are rebuilt from scratch, the rest are maintained
    /// incrementally.
    Adaptive {
        /// Fraction of changed rows (0.0–1.0) above which a partition is
        /// rebuilt instead of patched.
        rebuild_ratio: f64,
    },
}

impl MaintenancePolicy {
    /// Default adaptive policy (rebuild a partition when more than 40 % of
    /// its rows changed).
    pub fn adaptive() -> MaintenancePolicy {
        MaintenancePolicy::Adaptive { rebuild_ratio: 0.4 }
    }

    /// True for the policies that keep maintained structures across ticks.
    pub fn is_dynamic(&self) -> bool {
        !matches!(self, MaintenancePolicy::RebuildEachTick)
    }
}

/// Which structure backs the per-tick (rebuilt) divisible-aggregate indexes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebuildBackend {
    /// Layered aggregate range tree (Figure 8) — the paper's structure.
    LayeredTree,
    /// Bucket PR quadtree with per-node summaries (ablation alternative that
    /// also answers exact MIN/MAX).
    QuadTree,
}

/// How many worker threads execute the decision/action phases of a tick.
///
/// The state-effect pattern makes per-unit action evaluation within a tick
/// order-independent ([`sgl_env::TickRandom`] is a pure hash of
/// `(seed, tick, unit key, i)` and effect combination is order-insensitive),
/// so acting units can be fanned out over shards without changing the
/// simulated game: the parallel executor produces the same `StateDigest` as
/// the serial one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// Serial execution on the calling thread (the default).
    Off,
    /// A fixed number of worker threads (clamped to at least 1).
    Threads(usize),
    /// One worker per available hardware thread, capped at 8.
    Auto,
}

impl Parallelism {
    /// Number of shards to use for `work_items` acting units: the configured
    /// thread count, never more than the number of items (and at least 1).
    pub fn resolve(self, work_items: usize) -> usize {
        let threads = match self {
            Parallelism::Off => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8),
        };
        threads.min(work_items.max(1))
    }

    /// Parse a `SGL_PARALLELISM`-style value (`off`, `auto`, or a thread
    /// count) into a typed result.  Malformed input is an
    /// [`ExecError::Config`], never a panic — the value usually arrives from
    /// the process environment, which the library does not control.
    pub fn parse(raw: &str) -> crate::error::Result<Parallelism> {
        match raw.trim().to_ascii_lowercase().as_str() {
            "" | "off" | "0" | "1" => Ok(Parallelism::Off),
            "auto" => Ok(Parallelism::Auto),
            n => n.parse::<usize>().map(Parallelism::Threads).map_err(|_| {
                ExecError::Config(format!(
                    "SGL_PARALLELISM must be `off`, `auto` or a thread count, got `{raw}`"
                ))
            }),
        }
    }

    /// Read the `SGL_PARALLELISM` environment variable.  Used by the
    /// [`ExecConfig`] presets so test matrices can exercise the parallel
    /// executor without touching call sites; explicit
    /// [`ExecConfig::with_parallelism`] always wins.  A malformed value
    /// warns and falls back to `None` (the preset default): CI matrices set
    /// the variable to prove the knob is behaviour-neutral, but a typo in a
    /// user environment must not abort the process.
    pub fn from_env() -> Option<Parallelism> {
        let raw = std::env::var("SGL_PARALLELISM").ok()?;
        match Parallelism::parse(&raw) {
            Ok(p) => Some(p),
            Err(e) => {
                eprintln!("warning: {e}; using serial execution");
                None
            }
        }
    }
}

/// Re-costing cadence of the cost-based planner: the planner re-prices every
/// physical alternative and may swap backends/maintenance per call site at
/// the start of every `ticks`-th tick (decisions only ever change at tick
/// boundaries, so a tick is always executed under one consistent plan).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveWindow {
    /// Re-cost every this many ticks (clamped to at least 1).
    pub ticks: u32,
}

impl AdaptiveWindow {
    /// Re-cost every `ticks` ticks.
    pub fn every(ticks: u32) -> AdaptiveWindow {
        AdaptiveWindow {
            ticks: ticks.max(1),
        }
    }
}

impl Default for AdaptiveWindow {
    fn default() -> AdaptiveWindow {
        AdaptiveWindow { ticks: 8 }
    }
}

/// How the physical backend of each aggregate call site is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannerMode {
    /// Fixed heuristics: the strategy planner's structure mapping driven by
    /// the configured [`MaintenancePolicy`] / [`RebuildBackend`] — the
    /// behaviour of every pre-cost-based configuration.
    Heuristic,
    /// Cost-based: price every alternative from runtime statistics
    /// (`sgl_algebra::cost`) and re-cost on the given window.  Only
    /// meaningful under [`ExecMode::Indexed`]; behaviour-neutral by
    /// construction (every alternative returns identical results), so state
    /// digests never depend on the mode.
    CostBased(AdaptiveWindow),
    /// Force the materialized-answer class on every call site where it is
    /// legal (divisible and MIN/MAX strategies; nearest sites keep their
    /// heuristic structures).  A testing/conformance knob: the generated
    /// worlds are short and calm enough that the cost model would rarely
    /// choose materialization on its own, and the lattice needs
    /// deterministic materialized rows to prove behaviour neutrality.
    ForceMaterialized,
}

impl PlannerMode {
    /// Cost-based planning re-costed every `ticks` ticks.
    pub fn cost_based(ticks: u32) -> PlannerMode {
        PlannerMode::CostBased(AdaptiveWindow::every(ticks))
    }

    /// True for [`PlannerMode::CostBased`].
    pub fn is_cost_based(&self) -> bool {
        matches!(self, PlannerMode::CostBased(_))
    }

    /// True for the modes that install per-call-site physical choices (the
    /// cost-based planner and the forced-materialized testing mode).
    pub fn installs_choices(&self) -> bool {
        !matches!(self, PlannerMode::Heuristic)
    }
}

/// Which attributes hold the spatial position of a unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpatialAttrs {
    /// The x position attribute.
    pub x: AttrId,
    /// The y position attribute.
    pub y: AttrId,
}

impl SpatialAttrs {
    /// Resolve the conventional `posx`/`posy` attributes from a schema.
    pub fn from_schema(schema: &Schema) -> Option<SpatialAttrs> {
        Some(SpatialAttrs {
            x: schema.attr_id("posx")?,
            y: schema.attr_id("posy")?,
        })
    }
}

/// Full executor configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecConfig {
    /// Naive or indexed execution.
    pub mode: ExecMode,
    /// Spatial attributes used by the index planner.
    pub spatial: Option<SpatialAttrs>,
    /// Use fractional cascading in the layered aggregate trees (§5.3.1).
    pub cascading: bool,
    /// Memoize the results of identical aggregate calls for the same unit
    /// within a tick (the multi-query sharing the optimizer exposes).
    pub share_aggregates: bool,
    /// Use the effect-centre index for area-of-effect actions (§5.4).
    pub aoe_index: bool,
    /// How index structures are maintained across ticks.
    pub policy: MaintenancePolicy,
    /// Structure backing rebuilt divisible indexes.
    pub backend: RebuildBackend,
    /// Worker threads for the decision/action phases of a tick.
    pub parallelism: Parallelism,
    /// How physical backends are chosen per aggregate call site.
    pub planner: PlannerMode,
}

impl ExecConfig {
    /// Configuration for naive execution against a schema.
    pub fn naive(schema: &Schema) -> ExecConfig {
        ExecConfig {
            mode: ExecMode::Naive,
            spatial: SpatialAttrs::from_schema(schema),
            cascading: false,
            share_aggregates: false,
            aoe_index: false,
            policy: MaintenancePolicy::RebuildEachTick,
            backend: RebuildBackend::LayeredTree,
            parallelism: Parallelism::from_env().unwrap_or(Parallelism::Off),
            planner: PlannerMode::Heuristic,
        }
    }

    /// Configuration for planned (indexed) execution against a schema, all
    /// paper optimizations enabled.  Scripts run on the bytecode VM by
    /// default ([`ExecMode::Compiled`]); set `SGL_EXEC_MODE=interp` — or call
    /// [`ExecConfig::with_mode`] — to force the tree-walking interpreter.
    pub fn indexed(schema: &Schema) -> ExecConfig {
        ExecConfig {
            mode: ExecMode::planned_from_env(),
            spatial: SpatialAttrs::from_schema(schema),
            cascading: true,
            share_aggregates: true,
            aoe_index: true,
            policy: MaintenancePolicy::RebuildEachTick,
            backend: RebuildBackend::LayeredTree,
            parallelism: Parallelism::from_env().unwrap_or(Parallelism::Off),
            planner: PlannerMode::Heuristic,
        }
    }

    /// Configuration for the cost-based planner: indexed execution whose
    /// physical backends are chosen per call site by the cost model of
    /// [`sgl_algebra::cost`], re-costed on the default
    /// [`AdaptiveWindow`].  The base maintenance policy stays
    /// `RebuildEachTick`; cross-tick maintained structures are created
    /// exactly for the call sites the cost model routes to the grid.
    pub fn cost_based(schema: &Schema) -> ExecConfig {
        ExecConfig {
            planner: PlannerMode::CostBased(AdaptiveWindow::default()),
            ..ExecConfig::indexed(schema)
        }
    }

    /// Configuration for the oracle interpreter (see [`crate::oracle`]):
    /// tree-walking AST evaluation with every optimization switched off.
    /// Always serial — the `SGL_PARALLELISM` default is deliberately ignored
    /// so the oracle stays the one configuration with no knobs at all.
    pub fn oracle(schema: &Schema) -> ExecConfig {
        ExecConfig {
            mode: ExecMode::Oracle,
            spatial: SpatialAttrs::from_schema(schema),
            cascading: false,
            share_aggregates: false,
            aoe_index: false,
            policy: MaintenancePolicy::RebuildEachTick,
            backend: RebuildBackend::LayeredTree,
            parallelism: Parallelism::Off,
            planner: PlannerMode::Heuristic,
        }
    }

    /// The preset configuration for an execution mode — the single mapping
    /// every scenario builder uses, so adding a mode means adding one arm
    /// here instead of one per call site.
    pub fn for_mode(mode: ExecMode, schema: &Schema) -> ExecConfig {
        match mode {
            ExecMode::Naive => ExecConfig::naive(schema),
            // The planned preset resolves its own default from the
            // environment; an explicit mode request overrides it.
            ExecMode::Indexed | ExecMode::Compiled => ExecConfig::indexed(schema).with_mode(mode),
            ExecMode::Oracle => ExecConfig::oracle(schema),
        }
    }

    /// Set the execution mode (e.g. force [`ExecMode::Indexed`] to pin the
    /// tree-walking interpreter on a planned preset).
    pub fn with_mode(mut self, mode: ExecMode) -> ExecConfig {
        self.mode = mode;
        self
    }

    /// Set the cross-tick maintenance policy.
    pub fn with_policy(mut self, policy: MaintenancePolicy) -> ExecConfig {
        self.policy = policy;
        self
    }

    /// Set the structure backing rebuilt divisible indexes.
    pub fn with_backend(mut self, backend: RebuildBackend) -> ExecConfig {
        self.backend = backend;
        self
    }

    /// Set the worker-thread count for tick execution.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> ExecConfig {
        self.parallelism = parallelism;
        self
    }

    /// Set the planner mode (heuristic vs cost-based).
    pub fn with_planner(mut self, planner: PlannerMode) -> ExecConfig {
        self.planner = planner;
        self
    }
}

/// Counters collected during a tick — used by tests, the ablation benchmarks
/// and the experiment harness to verify *why* one mode is faster.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TickStats {
    /// Aggregate evaluations requested by scripts (call sites × acting units).
    pub aggregate_probes: usize,
    /// Aggregate evaluations answered by a full scan of the environment.
    pub naive_scans: usize,
    /// Aggregate evaluations answered from an index structure.
    pub index_probes: usize,
    /// Aggregate evaluations answered from the per-tick memo cache.
    pub shared_hits: usize,
    /// Number of index structures built this tick.
    pub indexes_built: usize,
    /// Effect rows emitted by actions.
    pub effect_rows: usize,
    /// Units that performed at least one action.
    pub acting_units: usize,
    /// Incremental delta operations applied to maintained index structures.
    pub index_delta_ops: usize,
    /// Maintained partitions rebuilt from scratch (adaptive policy or
    /// invalidation).
    pub partition_rebuilds: usize,
    /// Aggregate evaluations answered by a cross-tick maintained structure.
    pub maintained_probes: usize,
    /// Aggregate evaluations served in O(1) from a materialized answer.
    pub materialized_serves: usize,
    /// Cost-based planner re-costing passes performed this tick (0 or 1).
    pub planner_recosts: usize,
    /// Call sites whose chosen backend/maintenance changed in this tick's
    /// re-costing pass.
    pub plan_switches: usize,
}

impl TickStats {
    /// Merge counters from another tick/fragment.
    pub fn merge(&mut self, other: &TickStats) {
        self.aggregate_probes += other.aggregate_probes;
        self.naive_scans += other.naive_scans;
        self.index_probes += other.index_probes;
        self.shared_hits += other.shared_hits;
        self.indexes_built += other.indexes_built;
        self.effect_rows += other.effect_rows;
        self.acting_units += other.acting_units;
        self.index_delta_ops += other.index_delta_ops;
        self.partition_rebuilds += other.partition_rebuilds;
        self.maintained_probes += other.maintained_probes;
        self.materialized_serves += other.materialized_serves;
        self.planner_recosts += other.planner_recosts;
        self.plan_switches += other.plan_switches;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_env::schema::paper_schema;

    #[test]
    fn spatial_attrs_resolve_from_paper_schema() {
        let schema = paper_schema();
        let s = SpatialAttrs::from_schema(&schema).unwrap();
        assert_eq!(s.x, schema.attr_id("posx").unwrap());
        assert_eq!(s.y, schema.attr_id("posy").unwrap());
    }

    #[test]
    fn spatial_attrs_missing_positions() {
        let mut b = Schema::builder();
        b.key("key").sum_attr("damage", 0i64);
        let schema = b.build().unwrap();
        assert!(SpatialAttrs::from_schema(&schema).is_none());
    }

    #[test]
    fn config_presets() {
        let schema = paper_schema();
        let naive = ExecConfig::naive(&schema);
        assert_eq!(naive.mode, ExecMode::Naive);
        assert!(!naive.share_aggregates);
        let indexed = ExecConfig::indexed(&schema);
        // The planned preset defaults to the bytecode VM (SGL_EXEC_MODE can
        // force the interpreter); either way it is an index-using mode.
        assert!(indexed.mode.uses_indexes());
        assert_eq!(indexed.with_mode(ExecMode::Indexed).mode, ExecMode::Indexed);
        assert!(indexed.cascading && indexed.share_aggregates && indexed.aoe_index);
        assert_eq!(indexed.policy, MaintenancePolicy::RebuildEachTick);
        assert_eq!(indexed.backend, RebuildBackend::LayeredTree);
        let incremental = indexed.with_policy(MaintenancePolicy::Incremental);
        assert!(incremental.policy.is_dynamic());
        assert!(MaintenancePolicy::adaptive().is_dynamic());
        assert!(!MaintenancePolicy::RebuildEachTick.is_dynamic());
        let quad = indexed.with_backend(RebuildBackend::QuadTree);
        assert_eq!(quad.backend, RebuildBackend::QuadTree);
        let oracle = ExecConfig::oracle(&schema);
        assert_eq!(oracle.mode, ExecMode::Oracle);
        assert!(!oracle.cascading && !oracle.share_aggregates && !oracle.aoe_index);
        // The oracle is serial even when SGL_PARALLELISM asks for threads.
        assert_eq!(oracle.parallelism, Parallelism::Off);
    }

    #[test]
    fn parallelism_resolves_to_shard_counts() {
        assert_eq!(Parallelism::Off.resolve(100), 1);
        assert_eq!(Parallelism::Threads(4).resolve(100), 4);
        assert_eq!(Parallelism::Threads(0).resolve(100), 1);
        // Never more shards than acting units (and at least one).
        assert_eq!(Parallelism::Threads(8).resolve(3), 3);
        assert_eq!(Parallelism::Threads(4).resolve(0), 1);
        let auto = Parallelism::Auto.resolve(1_000_000);
        assert!((1..=8).contains(&auto));
        let schema = paper_schema();
        let config = ExecConfig::indexed(&schema).with_parallelism(Parallelism::Threads(2));
        assert_eq!(config.parallelism, Parallelism::Threads(2));
    }

    #[test]
    fn parallelism_parse_accepts_the_documented_values() {
        assert_eq!(Parallelism::parse("off").unwrap(), Parallelism::Off);
        assert_eq!(Parallelism::parse("OFF").unwrap(), Parallelism::Off);
        assert_eq!(Parallelism::parse("").unwrap(), Parallelism::Off);
        assert_eq!(Parallelism::parse("0").unwrap(), Parallelism::Off);
        assert_eq!(Parallelism::parse("1").unwrap(), Parallelism::Off);
        assert_eq!(Parallelism::parse("auto").unwrap(), Parallelism::Auto);
        assert_eq!(Parallelism::parse(" 4 ").unwrap(), Parallelism::Threads(4));
        // Huge-but-parsable counts are accepted; `resolve` clamps them to
        // the number of work items at use time.
        let huge = Parallelism::parse("100000").unwrap();
        assert_eq!(huge, Parallelism::Threads(100_000));
        assert_eq!(huge.resolve(7), 7);
    }

    #[test]
    fn parallelism_parse_rejects_garbage_without_panicking() {
        for bad in ["garbage", "-3", "3.5", "two", "auto!"] {
            let err = Parallelism::parse(bad).unwrap_err();
            assert!(
                matches!(err, ExecError::Config(_)),
                "`{bad}` should be a Config error, got {err:?}"
            );
            assert!(err.to_string().contains(bad), "message names the input");
        }
    }

    #[test]
    fn exec_modes_classify_index_usage() {
        assert!(ExecMode::Indexed.uses_indexes());
        assert!(ExecMode::Compiled.uses_indexes());
        assert!(!ExecMode::Naive.uses_indexes());
        assert!(!ExecMode::Oracle.uses_indexes());
        let schema = paper_schema();
        // `for_mode` honours an explicit request even though the planned
        // preset resolves its own default.
        assert_eq!(
            ExecConfig::for_mode(ExecMode::Indexed, &schema).mode,
            ExecMode::Indexed
        );
        assert_eq!(
            ExecConfig::for_mode(ExecMode::Compiled, &schema).mode,
            ExecMode::Compiled
        );
    }

    #[test]
    fn stats_merge_adds_counters() {
        let mut a = TickStats {
            aggregate_probes: 1,
            naive_scans: 2,
            ..TickStats::default()
        };
        let b = TickStats {
            aggregate_probes: 10,
            index_probes: 5,
            indexes_built: 1,
            ..TickStats::default()
        };
        a.merge(&b);
        assert_eq!(a.aggregate_probes, 11);
        assert_eq!(a.naive_scans, 2);
        assert_eq!(a.index_probes, 5);
        assert_eq!(a.indexes_built, 1);
    }
}
