//! Lowering normalised scripts to register bytecode (§5-style physical
//! compilation of the script layer).
//!
//! The tree-walking interpreter of [`crate::interp`] re-resolves every name,
//! attribute and built-in on every tick for every unit.  This pass runs once
//! per script install instead: it flattens the normalised action tree into a
//! [`CompiledScript`] — a flat instruction array over virtual registers with
//! a constant pool, pre-resolved [`AttrId`] attribute slots, and aggregate /
//! perform *call sites* whose argument registers, parameter names, filter
//! analyses and effect attribute ids are all computed ahead of time — so no
//! name lookup survives into the per-unit hot loop of the VM (`vm` module).
//!
//! Compilation is semantically conservative: every construct the evaluator
//! of `sgl-lang` supports is lowered to an instruction that calls the *same*
//! shared semantics helpers (`ScriptValue::zip_binop`, `as_scalar`,
//! `loose_eq`/`compare`), so compiled execution is bit-identical to the
//! interpreter; anything outside the normal form (nested aggregates, row
//! references in a script body, unknown names) is a [`CompileError`] and the
//! engine transparently falls back to the interpreter for that script.
//!
//! One deliberate restriction: built-in definitions are *closed* SQL
//! fragments (they may reference their parameters, `u.*`, `e.*` and game
//! constants, never a script-local `let` variable), so compiled call sites
//! evaluate them in a context without the script's let bindings.  The
//! interpreter happens to leak script bindings into definition evaluation;
//! no well-formed registry definition can observe the difference.

use std::fmt;

use sgl_env::{AttrId, Schema, Value};
use sgl_lang::ast::{Action, AggCall, BinOp, CmpOp, Cond, Term, VarRef};
use sgl_lang::builtins::Registry;
use sgl_lang::normalize::NormalScript;

use crate::config::SpatialAttrs;
use crate::filter::{analyze_filter, FilterAnalysis};

/// A virtual register index.  Registers hold `ScriptValue`s and are written
/// exactly once per unit execution before any read (the compiler emits
/// straight-line code per scope, so no clearing between units is needed).
pub(crate) type Reg = u16;

/// Why a script could not be lowered to bytecode.  The engine treats any
/// compile error as "run this script through the tree-walking interpreter",
/// which reproduces the exact runtime behaviour (including runtime errors)
/// the script would have anyway.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// A bare name is neither a let binding in scope, a registry constant,
    /// nor the conventional unit marker `u`/`self` in call-argument position.
    Unresolved(String),
    /// A construct outside the compilable normal form (nested aggregates,
    /// `e.*` in a script body, unknown built-ins or attributes, or a script
    /// too large for 16-bit registers).
    Unsupported(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Unresolved(name) => {
                write!(f, "cannot compile script: unresolved name `{name}`")
            }
            CompileError::Unsupported(what) => write!(f, "cannot compile script: {what}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// One bytecode instruction.  All operands are pre-resolved indices — into
/// the register file, the constant pools or the call-site tables — so the
/// dispatch loop never touches a string.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Instr {
    /// `dst = consts[idx]` (literal constant from the pool).
    Const { dst: Reg, idx: u16 },
    /// `dst = constants[const_names[idx]]` — a registry game constant,
    /// re-resolved once per shard run so late registry edits behave exactly
    /// like the interpreter's per-probe lookup.
    NamedConst { dst: Reg, idx: u16 },
    /// `dst = u.attr` (pre-resolved attribute slot of the acting unit).
    UnitAttr { dst: Reg, attr: AttrId },
    /// `dst = key(u)` — the bare `u`/`self` marker in call-argument position.
    UnitKey { dst: Reg },
    /// `dst = Random(seed)` (the deterministic per-tick random function).
    Random { dst: Reg, seed: Reg },
    /// `dst = a op b` via the shared `zip_binop` semantics.
    Bin { dst: Reg, op: BinOp, a: Reg, b: Reg },
    /// `dst = -src` (per-field on records).
    Neg { dst: Reg, src: Reg },
    /// `dst = abs(src)` (scalar).
    Abs { dst: Reg, src: Reg },
    /// `dst = sqrt(src)` (scalar).
    Sqrt { dst: Reg, src: Reg },
    /// `dst = src.field` with a per-VM inline cache (`cache` indexes the
    /// VM's field-position cache; records produced by a given site have a
    /// stable layout, so the cached position almost always hits).
    Field {
        /// Destination register.
        dst: Reg,
        /// Record-valued source register.
        src: Reg,
        /// Index into the compiled field-name table.
        field: u16,
        /// Inline-cache slot.
        cache: u16,
    },
    /// `dst = (items...)` — a tuple literal with `_0`, `_1`, ... field names.
    Tuple { dst: Reg, items: Vec<Reg> },
    /// `dst = aggregate call site `site`` (memo/probe-cache keyed by the
    /// call fingerprint, answered by indexes or the reference scan).
    CallAgg { dst: Reg, site: u16 },
    /// Execute perform call site `site` (buffers its effects site-major).
    Perform { site: u16 },
    /// Unconditional jump.
    Jump { target: u32 },
    /// Evaluate `a op b` on scalars (loose equality for `=`/`!=`, ordered
    /// comparison otherwise) and jump to `if_true` or `if_false`.
    Branch {
        /// Comparison operator.
        op: CmpOp,
        /// Left operand register.
        a: Reg,
        /// Right operand register.
        b: Reg,
        /// Target when the comparison holds.
        if_true: u32,
        /// Target when it does not.
        if_false: u32,
    },
    /// End of the script for one unit.
    Return,
}

/// One aggregate call site: the pre-resolved name and argument registers.
/// The definition and its physical plan are looked up once per tick (the
/// cost-based planner may switch backends between ticks), never per unit.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct AggSite {
    /// Aggregate name (also the memo/observation key).
    pub(crate) name: String,
    /// Argument registers, in call order.
    pub(crate) args: Vec<Reg>,
}

/// One compiled effect clause of a perform site: the original filter (for
/// the per-target residual check), its ahead-of-time [`FilterAnalysis`]
/// (computed per *install*, not per unit per tick as the interpreter does)
/// and the effect assignments with attribute ids already resolved.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CompiledClause {
    /// The clause filter, evaluated per candidate row.
    pub(crate) filter: Cond,
    /// Pre-computed index analysis of the filter.
    pub(crate) analysis: FilterAnalysis,
    /// `(attribute id, attribute name, value term)` per effect.
    pub(crate) effects: Vec<(AttrId, String, Term)>,
}

/// One perform call site: argument registers plus a snapshot of the action
/// definition with everything the hot loop needs pre-resolved.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct PerformSite {
    /// Action name (for arity errors and display).
    pub(crate) name: String,
    /// Parameter names of the definition (first is the implicit unit).
    pub(crate) params: Vec<String>,
    /// Argument registers, in call order.
    pub(crate) args: Vec<Reg>,
    /// Compiled effect clauses.
    pub(crate) clauses: Vec<CompiledClause>,
}

/// A script lowered to register bytecode.  Everything here is immutable,
/// `Send + Sync` plain data: worker shards share one `&CompiledScript` and
/// keep their mutable state (registers, inline caches, effect buffers) in
/// their own VM instance (`vm` module).  Checkpoints never serialise this —
/// resume recompiles from the stored normalised AST.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledScript {
    /// Script name (display only).
    pub(crate) name: String,
    /// Literal constant pool.
    pub(crate) consts: Vec<Value>,
    /// Names of referenced registry constants (resolved once per shard run).
    pub(crate) const_names: Vec<String>,
    /// Record field names referenced by `Field` instructions.
    pub(crate) field_names: Vec<String>,
    /// Display names for the unit attributes referenced by `UnitAttr`.
    pub(crate) attr_names: Vec<(AttrId, String)>,
    /// Placeholder field names `_0`, `_1`, ... shared by tuple literals.
    pub(crate) placeholder_names: Vec<String>,
    /// The flat instruction array.
    pub(crate) instrs: Vec<Instr>,
    /// Number of virtual registers.
    pub(crate) num_regs: usize,
    /// Number of inline-cache slots for `Field` instructions.
    pub(crate) num_field_caches: usize,
    /// Aggregate call sites.
    pub(crate) agg_sites: Vec<AggSite>,
    /// Perform call sites.
    pub(crate) perform_sites: Vec<PerformSite>,
}

impl CompiledScript {
    /// Number of instructions (for `explain` output and tests).
    pub fn instr_count(&self) -> usize {
        self.instrs.len()
    }

    /// Number of virtual registers.
    pub fn reg_count(&self) -> usize {
        self.num_regs
    }

    /// One human-readable line per aggregate call site, keyed by aggregate
    /// name — the engine's `explain()` attaches these as `↳ compiled:`
    /// annotations under the matching cost lines.
    pub fn agg_site_lines(&self) -> Vec<(String, String)> {
        self.agg_sites
            .iter()
            .enumerate()
            .map(|(i, site)| {
                (
                    site.name.clone(),
                    format!("site #{i} {}({})", site.name, regs_list(&site.args)),
                )
            })
            .collect()
    }

    /// One human-readable line per perform call site, keyed by action name.
    pub fn perform_site_lines(&self) -> Vec<(String, String)> {
        self.perform_sites
            .iter()
            .enumerate()
            .map(|(i, site)| {
                let shapes: Vec<&str> = site.clauses.iter().map(clause_shape).collect();
                (
                    site.name.clone(),
                    format!(
                        "site #{i} {}({}) [{}]",
                        site.name,
                        regs_list(&site.args),
                        shapes.join(", ")
                    ),
                )
            })
            .collect()
    }

    fn attr_name(&self, attr: AttrId) -> &str {
        self.attr_names
            .iter()
            .find(|(a, _)| *a == attr)
            .map(|(_, n)| n.as_str())
            .unwrap_or("?")
    }
}

fn regs_list(regs: &[Reg]) -> String {
    let parts: Vec<String> = regs.iter().map(|r| format!("r{r}")).collect();
    parts.join(", ")
}

/// Shape of a compiled clause, as the candidate enumerator will treat it.
fn clause_shape(clause: &CompiledClause) -> &'static str {
    if clause.analysis.key_eq.is_some() {
        "targeted"
    } else if clause.analysis.has_rect() && clause.analysis.conjunctive {
        "rect"
    } else {
        "scan"
    }
}

fn bin_symbol(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Mod => "mod",
    }
}

fn cmp_symbol(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "=",
        CmpOp::Ne => "!=",
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
    }
}

impl fmt::Display for CompiledScript {
    /// The disassembler: a stable, line-oriented rendering used by the
    /// golden-snapshot tests.  Every operand resolves back to a readable
    /// name so a diff in a golden file reads like a code review.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "compiled script `{}`: {} instrs, {} regs, {} agg sites, {} perform sites",
            self.name,
            self.instrs.len(),
            self.num_regs,
            self.agg_sites.len(),
            self.perform_sites.len()
        )?;
        for (i, v) in self.consts.iter().enumerate() {
            writeln!(f, "  const c{i} = {v}")?;
        }
        for (i, n) in self.const_names.iter().enumerate() {
            writeln!(f, "  name  n{i} = {n}")?;
        }
        for (pc, instr) in self.instrs.iter().enumerate() {
            write!(f, "  {pc:3}: ")?;
            match instr {
                Instr::Const { dst, idx } => {
                    writeln!(f, "r{dst} = c{idx} ({})", self.consts[*idx as usize])?
                }
                Instr::NamedConst { dst, idx } => {
                    writeln!(f, "r{dst} = n{idx} ({})", self.const_names[*idx as usize])?
                }
                Instr::UnitAttr { dst, attr } => {
                    writeln!(f, "r{dst} = u.{}", self.attr_name(*attr))?
                }
                Instr::UnitKey { dst } => writeln!(f, "r{dst} = unit-key")?,
                Instr::Random { dst, seed } => writeln!(f, "r{dst} = random(r{seed})")?,
                Instr::Bin { dst, op, a, b } => {
                    writeln!(f, "r{dst} = r{a} {} r{b}", bin_symbol(*op))?
                }
                Instr::Neg { dst, src } => writeln!(f, "r{dst} = -r{src}")?,
                Instr::Abs { dst, src } => writeln!(f, "r{dst} = abs(r{src})")?,
                Instr::Sqrt { dst, src } => writeln!(f, "r{dst} = sqrt(r{src})")?,
                Instr::Field {
                    dst,
                    src,
                    field,
                    cache,
                } => writeln!(
                    f,
                    "r{dst} = r{src}.{} [ic{cache}]",
                    self.field_names[*field as usize]
                )?,
                Instr::Tuple { dst, items } => writeln!(f, "r{dst} = ({})", regs_list(items))?,
                Instr::CallAgg { dst, site } => {
                    let s = &self.agg_sites[*site as usize];
                    writeln!(f, "r{dst} = agg#{site} {}({})", s.name, regs_list(&s.args))?
                }
                Instr::Perform { site } => {
                    let s = &self.perform_sites[*site as usize];
                    let shapes: Vec<&str> = s.clauses.iter().map(clause_shape).collect();
                    writeln!(
                        f,
                        "perform#{site} {}({}) [{}]",
                        s.name,
                        regs_list(&s.args),
                        shapes.join(", ")
                    )?
                }
                Instr::Jump { target } => writeln!(f, "jump {target}")?,
                Instr::Branch {
                    op,
                    a,
                    b,
                    if_true,
                    if_false,
                } => writeln!(
                    f,
                    "if r{a} {} r{b} then {if_true} else {if_false}",
                    cmp_symbol(*op)
                )?,
                Instr::Return => writeln!(f, "return")?,
            }
        }
        Ok(())
    }
}

/// A jump label: an index into the compiler's label table, resolved to an
/// instruction address after the whole body is emitted.
#[derive(Debug, Clone, Copy)]
struct Label(u32);

struct Compiler<'a> {
    registry: &'a Registry,
    schema: &'a Schema,
    spatial: Option<SpatialAttrs>,
    instrs: Vec<Instr>,
    consts: Vec<Value>,
    const_names: Vec<String>,
    field_names: Vec<String>,
    attr_names: Vec<(AttrId, String)>,
    agg_sites: Vec<AggSite>,
    perform_sites: Vec<PerformSite>,
    /// Lexical scope: let-bound names to the register holding their value.
    /// Later entries shadow earlier ones, mirroring the interpreter's
    /// binding-map insert order.
    scope: Vec<(String, Reg)>,
    num_regs: usize,
    num_field_caches: usize,
    max_tuple_arity: usize,
    /// Label table: `u32::MAX` until bound to an instruction address.
    labels: Vec<u32>,
}

/// Compile a normalised script into register bytecode.  `spatial` must be
/// the executing configuration's spatial-attribute mapping — the per-clause
/// filter analyses bake it in, so the engine recompiles when the exec
/// configuration changes.
pub fn compile_script(
    name: &str,
    normal: &NormalScript,
    registry: &Registry,
    schema: &Schema,
    spatial: Option<SpatialAttrs>,
) -> Result<CompiledScript, CompileError> {
    let mut c = Compiler {
        registry,
        schema,
        spatial,
        instrs: Vec::new(),
        consts: Vec::new(),
        const_names: Vec::new(),
        field_names: Vec::new(),
        attr_names: Vec::new(),
        agg_sites: Vec::new(),
        perform_sites: Vec::new(),
        scope: Vec::new(),
        num_regs: 0,
        num_field_caches: 0,
        max_tuple_arity: 0,
        labels: Vec::new(),
    };
    c.compile_action(&normal.body)?;
    c.instrs.push(Instr::Return);
    c.patch_labels()?;
    Ok(CompiledScript {
        name: name.to_string(),
        consts: c.consts,
        const_names: c.const_names,
        field_names: c.field_names,
        attr_names: c.attr_names,
        placeholder_names: (0..c.max_tuple_arity).map(|i| format!("_{i}")).collect(),
        instrs: c.instrs,
        num_regs: c.num_regs,
        num_field_caches: c.num_field_caches,
        agg_sites: c.agg_sites,
        perform_sites: c.perform_sites,
    })
}

impl<'a> Compiler<'a> {
    fn fresh(&mut self) -> Result<Reg, CompileError> {
        if self.num_regs > Reg::MAX as usize {
            return Err(CompileError::Unsupported(
                "script needs more than 65536 registers".into(),
            ));
        }
        let reg = self.num_regs as Reg;
        self.num_regs += 1;
        Ok(reg)
    }

    fn u16_index(len: usize, what: &str) -> Result<u16, CompileError> {
        u16::try_from(len).map_err(|_| CompileError::Unsupported(format!("too many {what}")))
    }

    fn lookup(&self, name: &str) -> Option<Reg> {
        self.scope
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, r)| *r)
    }

    fn const_idx(&mut self, v: &Value) -> Result<u16, CompileError> {
        if let Some(i) = self.consts.iter().position(|c| c == v) {
            return Self::u16_index(i, "constants");
        }
        self.consts.push(v.clone());
        Self::u16_index(self.consts.len() - 1, "constants")
    }

    fn const_name_idx(&mut self, name: &str) -> Result<u16, CompileError> {
        if let Some(i) = self.const_names.iter().position(|n| n == name) {
            return Self::u16_index(i, "constant names");
        }
        self.const_names.push(name.to_string());
        Self::u16_index(self.const_names.len() - 1, "constant names")
    }

    fn field_idx(&mut self, name: &str) -> Result<u16, CompileError> {
        if let Some(i) = self.field_names.iter().position(|n| n == name) {
            return Self::u16_index(i, "field names");
        }
        self.field_names.push(name.to_string());
        Self::u16_index(self.field_names.len() - 1, "field names")
    }

    fn attr_id(&mut self, name: &str) -> Result<AttrId, CompileError> {
        let id = self
            .schema
            .attr_id(name)
            .ok_or_else(|| CompileError::Unsupported(format!("unknown attribute `{name}`")))?;
        if !self.attr_names.iter().any(|(a, _)| *a == id) {
            self.attr_names.push((id, name.to_string()));
        }
        Ok(id)
    }

    fn new_label(&mut self) -> Label {
        self.labels.push(u32::MAX);
        Label(self.labels.len() as u32 - 1)
    }

    fn bind_label(&mut self, label: Label) {
        self.labels[label.0 as usize] = self.instrs.len() as u32;
    }

    /// Rewrite label ids stored in jump targets into instruction addresses.
    fn patch_labels(&mut self) -> Result<(), CompileError> {
        let resolve = |labels: &[u32], id: u32| -> Result<u32, CompileError> {
            let pc = labels[id as usize];
            if pc == u32::MAX {
                return Err(CompileError::Unsupported("unbound jump label".into()));
            }
            Ok(pc)
        };
        let labels = std::mem::take(&mut self.labels);
        for instr in &mut self.instrs {
            match instr {
                Instr::Jump { target } => *target = resolve(&labels, *target)?,
                Instr::Branch {
                    if_true, if_false, ..
                } => {
                    *if_true = resolve(&labels, *if_true)?;
                    *if_false = resolve(&labels, *if_false)?;
                }
                _ => {}
            }
        }
        Ok(())
    }

    fn compile_action(&mut self, action: &Action) -> Result<(), CompileError> {
        match action {
            Action::Let { name, term, body } => {
                let reg = match term {
                    Term::Agg(call) => self.compile_agg_call(call)?,
                    other => self.compile_term(other)?,
                };
                self.scope.push((name.clone(), reg));
                self.compile_action(body)?;
                self.scope.pop();
                Ok(())
            }
            Action::Seq(items) => {
                for item in items {
                    self.compile_action(item)?;
                }
                Ok(())
            }
            Action::If { cond, then, els } => {
                let t = self.new_label();
                let end = self.new_label();
                match els {
                    None => {
                        self.compile_cond(cond, t, end)?;
                        self.bind_label(t);
                        self.compile_action(then)?;
                        self.bind_label(end);
                    }
                    Some(els) => {
                        let f = self.new_label();
                        self.compile_cond(cond, t, f)?;
                        self.bind_label(t);
                        self.compile_action(then)?;
                        self.instrs.push(Instr::Jump { target: end.0 });
                        self.bind_label(f);
                        self.compile_action(els)?;
                        self.bind_label(end);
                    }
                }
                Ok(())
            }
            Action::Perform { name, args } => self.compile_perform(name, args),
            Action::Nop => Ok(()),
        }
    }

    /// Two-target condition compilation: emit code that transfers control to
    /// `t` when the condition holds and `f` otherwise.  Native short-circuit
    /// (`and` skips its right operand on false, `or` on true) with the same
    /// left-to-right evaluation/error order as [`sgl_lang::eval::eval_cond`].
    fn compile_cond(&mut self, cond: &Cond, t: Label, f: Label) -> Result<(), CompileError> {
        match cond {
            Cond::Lit(true) => {
                self.instrs.push(Instr::Jump { target: t.0 });
                Ok(())
            }
            Cond::Lit(false) => {
                self.instrs.push(Instr::Jump { target: f.0 });
                Ok(())
            }
            Cond::Cmp { op, left, right } => {
                let a = self.compile_term(left)?;
                let b = self.compile_term(right)?;
                self.instrs.push(Instr::Branch {
                    op: *op,
                    a,
                    b,
                    if_true: t.0,
                    if_false: f.0,
                });
                Ok(())
            }
            Cond::And(x, y) => {
                let mid = self.new_label();
                self.compile_cond(x, mid, f)?;
                self.bind_label(mid);
                self.compile_cond(y, t, f)
            }
            Cond::Or(x, y) => {
                let mid = self.new_label();
                self.compile_cond(x, t, mid)?;
                self.bind_label(mid);
                self.compile_cond(y, t, f)
            }
            Cond::Not(c) => self.compile_cond(c, f, t),
        }
    }

    fn compile_term(&mut self, term: &Term) -> Result<Reg, CompileError> {
        match term {
            Term::Const(v) => {
                let idx = self.const_idx(v)?;
                let dst = self.fresh()?;
                self.instrs.push(Instr::Const { dst, idx });
                Ok(dst)
            }
            Term::Var(VarRef::Unit(attr)) => {
                let attr = self.attr_id(attr)?;
                let dst = self.fresh()?;
                self.instrs.push(Instr::UnitAttr { dst, attr });
                Ok(dst)
            }
            Term::Var(VarRef::Row(attr)) => Err(CompileError::Unsupported(format!(
                "`e.{attr}` referenced in a script body"
            ))),
            Term::Var(VarRef::Name(name)) => {
                // The interpreter resolves bindings first, then constants.
                if let Some(reg) = self.lookup(name) {
                    return Ok(reg);
                }
                if self.registry.constant(name).is_some() {
                    let idx = self.const_name_idx(name)?;
                    let dst = self.fresh()?;
                    self.instrs.push(Instr::NamedConst { dst, idx });
                    return Ok(dst);
                }
                Err(CompileError::Unresolved(name.clone()))
            }
            Term::Random(seed) => {
                let seed = self.compile_term(seed)?;
                let dst = self.fresh()?;
                self.instrs.push(Instr::Random { dst, seed });
                Ok(dst)
            }
            Term::Agg(call) => Err(CompileError::Unsupported(format!(
                "aggregate `{}` nested inside a term (script not in normal form)",
                call.name
            ))),
            Term::Bin { op, left, right } => {
                let a = self.compile_term(left)?;
                let b = self.compile_term(right)?;
                let dst = self.fresh()?;
                self.instrs.push(Instr::Bin { dst, op: *op, a, b });
                Ok(dst)
            }
            Term::Neg(t) => {
                let src = self.compile_term(t)?;
                let dst = self.fresh()?;
                self.instrs.push(Instr::Neg { dst, src });
                Ok(dst)
            }
            Term::Abs(t) => {
                let src = self.compile_term(t)?;
                let dst = self.fresh()?;
                self.instrs.push(Instr::Abs { dst, src });
                Ok(dst)
            }
            Term::Sqrt(t) => {
                let src = self.compile_term(t)?;
                let dst = self.fresh()?;
                self.instrs.push(Instr::Sqrt { dst, src });
                Ok(dst)
            }
            Term::Field(t, field) => {
                let src = self.compile_term(t)?;
                let field = self.field_idx(field)?;
                let cache = Self::u16_index(self.num_field_caches, "field caches")?;
                self.num_field_caches += 1;
                let dst = self.fresh()?;
                self.instrs.push(Instr::Field {
                    dst,
                    src,
                    field,
                    cache,
                });
                Ok(dst)
            }
            Term::Tuple(items) => {
                let regs = items
                    .iter()
                    .map(|i| self.compile_term(i))
                    .collect::<Result<Vec<_>, _>>()?;
                self.max_tuple_arity = self.max_tuple_arity.max(items.len());
                let dst = self.fresh()?;
                self.instrs.push(Instr::Tuple { dst, items: regs });
                Ok(dst)
            }
        }
    }

    /// Compile one call argument.  Mirrors `eval_call_args`: the bare names
    /// `u`/`self` act as a unit marker when (and only when) they are neither
    /// let-bound nor a registry constant.
    fn compile_call_arg(&mut self, arg: &Term) -> Result<Reg, CompileError> {
        if let Term::Var(VarRef::Name(n)) = arg {
            if (n == "u" || n == "self")
                && self.lookup(n).is_none()
                && self.registry.constant(n).is_none()
            {
                let dst = self.fresh()?;
                self.instrs.push(Instr::UnitKey { dst });
                return Ok(dst);
            }
        }
        self.compile_term(arg)
    }

    fn compile_agg_call(&mut self, call: &AggCall) -> Result<Reg, CompileError> {
        if self.registry.aggregate(&call.name).is_none() {
            return Err(CompileError::Unsupported(format!(
                "unknown aggregate `{}`",
                call.name
            )));
        }
        let args = call
            .args
            .iter()
            .map(|a| self.compile_call_arg(a))
            .collect::<Result<Vec<_>, _>>()?;
        let site = Self::u16_index(self.agg_sites.len(), "aggregate call sites")?;
        self.agg_sites.push(AggSite {
            name: call.name.clone(),
            args,
        });
        let dst = self.fresh()?;
        self.instrs.push(Instr::CallAgg { dst, site });
        Ok(dst)
    }

    fn compile_perform(&mut self, name: &str, args: &[Term]) -> Result<(), CompileError> {
        let def = self
            .registry
            .action(name)
            .ok_or_else(|| CompileError::Unsupported(format!("unknown action `{name}`")))?
            .clone();
        let args = args
            .iter()
            .map(|a| self.compile_call_arg(a))
            .collect::<Result<Vec<_>, _>>()?;
        let mut clauses = Vec::with_capacity(def.clauses.len());
        for clause in &def.clauses {
            let analysis = analyze_filter(&clause.filter, self.schema, self.spatial);
            let effects = clause
                .effects
                .iter()
                .map(|(attr_name, term)| {
                    Ok((self.attr_id(attr_name)?, attr_name.clone(), term.clone()))
                })
                .collect::<Result<Vec<_>, CompileError>>()?;
            clauses.push(CompiledClause {
                filter: clause.filter.clone(),
                analysis,
                effects,
            });
        }
        let site = Self::u16_index(self.perform_sites.len(), "perform call sites")?;
        self.perform_sites.push(PerformSite {
            name: def.name.clone(),
            params: def.params.clone(),
            args,
            clauses,
        });
        self.instrs.push(Instr::Perform { site });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_env::schema::paper_schema;
    use sgl_lang::builtins::paper_registry;
    use sgl_lang::normalize::normalize;
    use sgl_lang::parse_script;

    fn compiled(src: &str) -> CompiledScript {
        let registry = paper_registry();
        let schema = paper_schema();
        let script = parse_script(src).unwrap();
        let normal = normalize(&script, &registry).unwrap();
        compile_script(
            "test",
            &normal,
            &registry,
            &schema,
            SpatialAttrs::from_schema(&schema),
        )
        .unwrap()
    }

    const SCRIPT: &str = r#"
        main(u) {
          (let c = CountEnemiesInRange(u, 12))
          if c > 3 then
            perform MoveInDirection(u, u.posx - 5, u.posy - 5);
          else if c > 0 and u.cooldown = 0 then
            perform FireAt(u, getNearestEnemy(u).key);
        }
    "#;

    #[test]
    fn compiles_the_paper_script_shape() {
        let c = compiled(SCRIPT);
        assert_eq!(c.agg_sites.len(), 2, "{c}");
        assert_eq!(c.perform_sites.len(), 2, "{c}");
        assert!(c.instr_count() > 5);
        assert!(c.reg_count() > 0);
        // Pre-resolved call metadata: FireAt's targeted clause and the
        // MoveInDirection self-clause are both key-equality shapes.
        for site in &c.perform_sites {
            assert!(!site.clauses.is_empty());
            for clause in &site.clauses {
                assert!(clause.analysis.key_eq.is_some());
                assert!(!clause.effects.is_empty());
            }
        }
        assert!(c.instrs.iter().any(|i| matches!(i, Instr::UnitKey { .. })));
        assert_eq!(c.instrs.last(), Some(&Instr::Return));
    }

    #[test]
    fn jump_targets_resolve_to_instruction_addresses() {
        let c = compiled(SCRIPT);
        let len = c.instrs.len() as u32;
        for instr in &c.instrs {
            match instr {
                Instr::Jump { target } => assert!(*target < len || *target == len - 1),
                Instr::Branch {
                    if_true, if_false, ..
                } => {
                    assert!(*if_true < len);
                    assert!(*if_false < len);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn disassembly_is_stable_and_readable() {
        let c = compiled(SCRIPT);
        let text = format!("{c}");
        assert!(text.contains("compiled script `test`"), "{text}");
        assert!(text.contains("CountEnemiesInRange"), "{text}");
        assert!(text.contains("getNearestEnemy"), "{text}");
        assert!(text.contains("perform#"), "{text}");
        assert!(text.contains("return"), "{text}");
        // Deterministic.
        assert_eq!(text, format!("{}", compiled(SCRIPT)));
    }

    #[test]
    fn named_constants_are_resolved_per_run_not_inlined() {
        let c = compiled("main(u) { perform MoveInDirection(u, _ARMOR, 0); }");
        assert_eq!(c.const_names, vec!["_ARMOR".to_string()]);
        assert!(c
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::NamedConst { .. })));
    }

    #[test]
    fn let_bindings_shadow_and_pop() {
        let c = compiled(
            r#"main(u) {
                (let x = 1)
                (let x = x + 1)
                perform MoveInDirection(u, x, x);
            }"#,
        );
        // Both uses of the inner `x` are the same register (no re-eval).
        let site = &c.perform_sites[0];
        assert_eq!(site.args[1], site.args[2]);
    }

    #[test]
    fn unresolved_names_and_row_refs_fail_to_compile() {
        let registry = paper_registry();
        let schema = paper_schema();
        let script = parse_script("main(u) { perform MoveInDirection(u, nope, 0); }").unwrap();
        let normal = normalize(&script, &registry).unwrap();
        let err = compile_script("t", &normal, &registry, &schema, None).unwrap_err();
        assert!(matches!(err, CompileError::Unresolved(n) if n == "nope"));

        let script = parse_script("main(u) { perform Vanish(u); }").unwrap();
        let normal = normalize(&script, &registry).unwrap();
        let err = compile_script("t", &normal, &registry, &schema, None).unwrap_err();
        assert!(matches!(err, CompileError::Unsupported(_)));
        assert!(err.to_string().contains("Vanish"));
    }

    #[test]
    fn short_circuit_conditions_lower_to_branches() {
        let c = compiled(
            r#"main(u) {
                if u.health > 0 and (u.cooldown = 0 or u.health > 10) then
                  perform Heal(u);
            }"#,
        );
        let branches = c
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::Branch { .. }))
            .count();
        assert_eq!(branches, 3, "{c}");
    }
}
