//! The oracle interpreter — the reference semantics of the conformance suite.
//!
//! Every other execution path in this workspace earns its speed through
//! machinery that could, in principle, change the simulated game: the
//! algebraic optimizer rewrites plans, the planner picks index structures,
//! the executors memoize shared aggregates, maintain structures across ticks
//! and fan units out over threads.  The paper's correctness claim is that
//! none of that is observable.  This module is the other side of that
//! differential test: a deliberately naive interpreter that walks the
//! *normalized script AST* directly (no logical plan at all) and answers
//! every aggregate by scanning the environment.  It has no configuration
//! knobs — no planner, no indexes, no memo, no sharing, strictly serial — so
//! when an optimized configuration and the oracle disagree on a
//! `StateDigest`, the optimized configuration is wrong.
//!
//! The oracle iterates *unit-major* (each acting unit evaluates its whole
//! script before the next unit starts) while the plan executors iterate
//! node-major (every unit flows through one plan node before the next node
//! runs).  The two orders fold the combined effect relation identically
//! because effect combination is per `(unit, attribute)`: the per-key
//! subsequence of emissions is the same in both traversals for
//! self-targeting effects, and cross-unit effects in the built-in repertoire
//! combine through order-insensitive operators (integer sums, max).
//! `tests/conformance.rs` holds the oracle to that promise over thousands of
//! generated scripts and worlds.

use rustc_hash::FxHashMap;

use sgl_env::{EffectBuffer, EnvTable, TickRandom, Value};
use sgl_lang::ast::{Action, AggCall, Term};
use sgl_lang::builtins::Registry;
use sgl_lang::eval::{eval_cond, eval_term, EvalContext, NoAggregates, ScriptValue};
use sgl_lang::normalize::NormalScript;

use crate::builtin_eval::{bind_params, eval_aggregate_scan, eval_call_args};
use crate::config::TickStats;
use crate::error::{ExecError, Result};

/// One script to interpret in a tick: the normalized AST plus the acting
/// units (row indices into the environment) that run it.  The oracle works
/// from the AST on purpose — a differential harness that re-used the
/// optimized logical plan would be blind to translation and optimizer bugs.
#[derive(Debug, Clone)]
pub struct OracleRun<'p> {
    /// The normalized script (aggregates only as `let` right-hand sides).
    pub script: &'p NormalScript,
    /// Row indices of the units running this script.
    pub acting_rows: Vec<u32>,
}

/// Execute one clock tick with the oracle interpreter: every acting unit of
/// every run walks its script AST top to bottom, aggregates are answered by
/// scanning `table`, actions by testing every row against each effect
/// clause.  Returns the combined effect relation and (scan-heavy) statistics.
pub fn execute_tick_oracle(
    table: &EnvTable,
    registry: &Registry,
    runs: &[OracleRun<'_>],
    rng: &TickRandom,
) -> Result<(EffectBuffer, TickStats)> {
    let mut effects = EffectBuffer::new(table.schema().clone());
    let mut stats = TickStats::default();
    let constants = registry.constants();
    for run in runs {
        for &row in &run.acting_rows {
            let mut interp = OracleInterp {
                table,
                registry,
                rng,
                constants,
                effects: &mut effects,
                stats: &mut stats,
                row,
            };
            let bindings = Bindings::default();
            interp.run_action(&run.script.body, &bindings)?;
        }
    }
    stats.effect_rows = effects.len();
    Ok((effects, stats))
}

type Bindings = FxHashMap<String, ScriptValue>;

struct OracleInterp<'a> {
    table: &'a EnvTable,
    registry: &'a Registry,
    rng: &'a TickRandom,
    constants: &'a FxHashMap<String, Value>,
    effects: &'a mut EffectBuffer,
    stats: &'a mut TickStats,
    row: u32,
}

impl<'a> OracleInterp<'a> {
    fn ctx(&self, bindings: &Bindings) -> EvalContext<'a> {
        let unit = self.table.row(self.row as usize);
        let mut ctx = EvalContext::new(self.table.schema(), unit, self.rng, self.constants);
        ctx.bindings = bindings.clone();
        ctx
    }

    /// Evaluate a term, answering any embedded aggregate call by scanning.
    /// Normalized scripts only carry aggregates as entire `let` right-hand
    /// sides, but the oracle is also the reference for *unnormalized* input
    /// in unit tests, so it handles the general shape.
    fn eval_term_scanning(&mut self, term: &Term, bindings: &Bindings) -> Result<ScriptValue> {
        match term {
            Term::Agg(call) => self.eval_aggregate(call, bindings),
            _ if !term.contains_aggregate() => {
                let ctx = self.ctx(bindings);
                let mut no_aggs = NoAggregates;
                eval_term(term, &ctx, &mut no_aggs).map_err(ExecError::from)
            }
            _ => {
                let ctx = self.ctx(bindings);
                let mut provider = ScanProvider { interp: self };
                eval_term(term, &ctx, &mut provider).map_err(ExecError::from)
            }
        }
    }

    fn run_action(&mut self, action: &Action, bindings: &Bindings) -> Result<()> {
        match action {
            Action::Nop => Ok(()),
            Action::Seq(items) => {
                for item in items {
                    self.run_action(item, bindings)?;
                }
                Ok(())
            }
            Action::Let { name, term, body } => {
                let value = self.eval_term_scanning(term, bindings)?;
                let mut inner = bindings.clone();
                inner.insert(name.clone(), value);
                self.run_action(body, &inner)
            }
            Action::If { cond, then, els } => {
                let holds = self.eval_cond_scanning(cond, bindings)?;
                if holds {
                    self.run_action(then, bindings)
                } else if let Some(e) = els {
                    self.run_action(e, bindings)
                } else {
                    Ok(())
                }
            }
            Action::Perform { name, args } => self.perform(name, args, bindings),
        }
    }

    /// Evaluate a condition, answering any embedded aggregate by scanning
    /// (normalized scripts keep conditions aggregate-free).
    fn eval_cond_scanning(
        &mut self,
        cond: &sgl_lang::ast::Cond,
        bindings: &Bindings,
    ) -> Result<bool> {
        if !cond.contains_aggregate() {
            let ctx = self.ctx(bindings);
            let mut no_aggs = NoAggregates;
            return eval_cond(cond, &ctx, &mut no_aggs).map_err(ExecError::from);
        }
        let ctx = self.ctx(bindings);
        let mut provider = ScanProvider { interp: self };
        eval_cond(cond, &ctx, &mut provider).map_err(ExecError::from)
    }

    /// Evaluate call arguments.  Aggregate-free arguments — every argument
    /// the normalizer emits — delegate to [`eval_call_args`], the executor's
    /// own routine (including its bare-`u`/`self` unit-marker convention),
    /// so the oracle cannot drift from the semantics it referees.  Only
    /// unnormalized aggregate-bearing arguments take the scanning path.
    fn eval_args_scanning(
        &mut self,
        args: &[Term],
        bindings: &Bindings,
    ) -> Result<Vec<ScriptValue>> {
        args.iter()
            .map(|a| {
                if a.contains_aggregate() {
                    self.eval_term_scanning(a, bindings)
                } else {
                    eval_call_args(std::slice::from_ref(a), &self.ctx(bindings)).and_then(
                        |mut values| {
                            values.pop().ok_or_else(|| {
                                ExecError::Internal(
                                    "eval_call_args returned no value for one argument".into(),
                                )
                            })
                        },
                    )
                }
            })
            .collect()
    }

    /// Evaluate one aggregate call by scanning the environment — exactly
    /// [`eval_aggregate_scan`], the semantics the indexed strategies must
    /// reproduce.
    fn eval_aggregate(&mut self, call: &AggCall, bindings: &Bindings) -> Result<ScriptValue> {
        self.stats.aggregate_probes += 1;
        self.stats.naive_scans += 1;
        let args = self.eval_args_scanning(&call.args, bindings)?;
        let ctx = self.ctx(bindings);
        let def = self
            .registry
            .aggregate(&call.name)
            .ok_or_else(|| ExecError::UnknownBuiltin(call.name.clone()))?;
        let params = bind_params(&def.name, &def.params, &args)?;
        eval_aggregate_scan(def, &params, &ctx, self.table)
    }

    /// Apply a built-in action: test every row of the environment against
    /// each effect clause, in row order (the naive candidate enumeration).
    fn perform(&mut self, name: &str, args: &[Term], bindings: &Bindings) -> Result<()> {
        let def = self
            .registry
            .action(name)
            .ok_or_else(|| ExecError::UnknownBuiltin(name.to_string()))?
            .clone();
        self.stats.acting_units += 1;
        let arg_values = self.eval_args_scanning(args, bindings)?;
        let params = bind_params(&def.name, &def.params, &arg_values)?;
        let mut full_ctx = self.ctx(bindings);
        for (k, v) in &params {
            full_ctx.bindings.insert(k.clone(), v.clone());
        }
        let schema = self.table.schema();
        let mut no_aggs = NoAggregates;
        for clause in &def.clauses {
            for target in 0..self.table.len() {
                let target_row = self.table.row(target);
                let row_ctx = full_ctx.with_row(target_row);
                if !eval_cond(&clause.filter, &row_ctx, &mut no_aggs)? {
                    continue;
                }
                let target_key = target_row.key(schema);
                for (attr_name, term) in &clause.effects {
                    let attr = schema.attr_id(attr_name).ok_or_else(|| {
                        ExecError::Internal(format!("unknown effect attribute `{attr_name}`"))
                    })?;
                    let value = eval_term(term, &row_ctx, &mut no_aggs)?
                        .as_scalar()?
                        .clone();
                    self.effects
                        .apply(target_key, attr, value)
                        .map_err(ExecError::from)?;
                }
            }
        }
        Ok(())
    }
}

/// Aggregate provider used for the (rare) unnormalized terms: answers each
/// embedded call by scanning, with the oracle's statistics accounting.
struct ScanProvider<'b, 'a> {
    interp: &'b mut OracleInterp<'a>,
}

impl sgl_lang::eval::AggregateProvider for ScanProvider<'_, '_> {
    fn evaluate(&mut self, call: &AggCall, ctx: &EvalContext<'_>) -> sgl_lang::Result<ScriptValue> {
        let bindings = ctx.bindings.clone();
        self.interp
            .eval_aggregate(call, &bindings)
            .map_err(|e| sgl_lang::LangError::Semantic(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExecConfig;
    use crate::interp::{execute_tick, ScriptRun};
    use sgl_algebra::{optimize, translate};
    use sgl_env::{schema::paper_schema, GameRng, Schema, TupleBuilder};
    use sgl_lang::builtins::paper_registry;
    use sgl_lang::normalize::normalize;
    use sgl_lang::parse_script;
    use std::sync::Arc;

    fn make_table(n: usize, spread: f64) -> (Arc<Schema>, EnvTable) {
        let schema = paper_schema().into_shared();
        let mut table = EnvTable::new(Arc::clone(&schema));
        let mut state = 7u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        for key in 0..n {
            let t = TupleBuilder::new(&schema)
                .set("key", key as i64)
                .unwrap()
                .set("player", (key % 2) as i64)
                .unwrap()
                .set("posx", next() * spread)
                .unwrap()
                .set("posy", next() * spread)
                .unwrap()
                .set("health", 20i64)
                .unwrap()
                .build();
            table.insert(t).unwrap();
        }
        (schema, table)
    }

    const SCRIPT: &str = r#"
        main(u) {
          (let c = CountEnemiesInRange(u, 12))
          if c > 3 then
            perform MoveInDirection(u, u.posx - 5, u.posy - 5);
          else if c > 0 and u.cooldown = 0 then
            perform FireAt(u, getNearestEnemy(u).key);
          else
            perform MoveInDirection(u, 25, 25);
        }
    "#;

    #[test]
    fn oracle_matches_plan_execution_on_the_running_example() {
        let registry = paper_registry();
        let (schema, table) = make_table(40, 35.0);
        let script = parse_script(SCRIPT).unwrap();
        let normal = normalize(&script, &registry).unwrap();
        let plan = optimize(translate(&normal), &registry).plan;
        let rng = GameRng::new(11).for_tick(3);
        let acting: Vec<u32> = (0..table.len() as u32).collect();

        let (oracle_effects, oracle_stats) = execute_tick_oracle(
            &table,
            &registry,
            &[OracleRun {
                script: &normal,
                acting_rows: acting.clone(),
            }],
            &rng,
        )
        .unwrap();

        for config in [ExecConfig::naive(&schema), ExecConfig::indexed(&schema)] {
            let runs = vec![ScriptRun::new(&plan, acting.clone())];
            let (effects, stats) = execute_tick(&table, &registry, &runs, &rng, &config).unwrap();
            assert_eq!(
                oracle_effects.canonical(),
                effects.canonical(),
                "{:?} diverged from the oracle",
                config.mode
            );
            assert_eq!(oracle_stats.acting_units, stats.acting_units);
        }
        // The oracle scanned for every probe and shared nothing.
        assert_eq!(oracle_stats.naive_scans, oracle_stats.aggregate_probes);
        assert!(oracle_stats.naive_scans > 0);
    }

    #[test]
    fn oracle_handles_unnormalized_aggregate_terms() {
        // Aggregates nested inside conditions/args — legal input for the
        // oracle even though the plan pipeline would normalize it first.
        let registry = paper_registry();
        let (_, table) = make_table(10, 20.0);
        let script =
            parse_script("main(u) { if CountEnemiesInRange(u, 30) > 0 then perform FireAt(u, getNearestEnemy(u).key); }")
                .unwrap();
        let raw = NormalScript {
            unit_param: "u".into(),
            body: script.main.body.clone(),
        };
        let rng = GameRng::new(2).for_tick(0);
        let (effects, stats) = execute_tick_oracle(
            &table,
            &registry,
            &[OracleRun {
                script: &raw,
                acting_rows: vec![0],
            }],
            &rng,
        )
        .unwrap();
        assert!(stats.aggregate_probes >= 2);
        assert!(!effects.is_empty());
    }

    #[test]
    fn oracle_reports_unknown_builtins() {
        let registry = paper_registry();
        let (_, table) = make_table(4, 10.0);
        let script = parse_script("main(u) { perform Vanish(u); }").unwrap();
        let raw = NormalScript {
            unit_param: "u".into(),
            body: script.main.body.clone(),
        };
        let rng = GameRng::new(2).for_tick(0);
        let err = execute_tick_oracle(
            &table,
            &registry,
            &[OracleRun {
                script: &raw,
                acting_rows: vec![0],
            }],
            &rng,
        );
        assert!(matches!(err, Err(ExecError::UnknownBuiltin(_))));
    }
}
