//! # sgl-exec — naive and indexed execution of SGL plans
//!
//! The physical layer of *Scaling Games to Epic Proportions*: both executors
//! interpret the optimized logical plans of `sgl-algebra` set-at-a-time, but
//! the **naive** executor answers every aggregate probe and action clause by
//! scanning the environment (`O(n²)` per tick — the baseline of §6), while
//! the **indexed** executor answers each probe in `O(log n)` from the index
//! structures of `sgl-index` (layered aggregate range trees, quadtrees,
//! kD-trees, sweep-lines and maintained grids behind a categorical hash
//! layer).  Whether those structures are rebuilt per tick or maintained
//! across ticks is decided by the [`MaintenancePolicy`] carried in
//! [`ExecConfig`] and enforced by the cross-tick [`IndexManager`].
//!
//! Main entry points: [`execute_tick`] (throwaway manager) and
//! [`execute_tick_with`] (caller-owned manager, used by the engine).

#![warn(missing_docs)]

pub mod builtin_eval;
pub mod checkpoint;
pub mod compile;
pub mod config;
pub mod error;
pub mod filter;
pub mod indexes;
pub mod interp;
pub mod oracle;
pub mod planner;
pub mod stats;
pub(crate) mod vm;

pub use compile::{compile_script, CompileError, CompiledScript};
pub use config::{
    AdaptiveWindow, ExecConfig, ExecMode, MaintenancePolicy, Parallelism, PlannerMode,
    RebuildBackend, SpatialAttrs, TickStats,
};
pub use error::{ExecError, Result};
pub use filter::{analyze_filter, FilterAnalysis};
pub use indexes::{fingerprint_values, IndexManager, MaintStats, TickIndexes};
pub use interp::{execute_tick, execute_tick_planned, execute_tick_with, plan_registry, ScriptRun};
pub use oracle::{execute_tick_oracle, OracleRun};
pub use planner::{
    choose_physical, force_materialized, plan_aggregate, strategy_class, AggStrategy,
    PhysicalChoice, PlannedAggregate,
};
pub use stats::{CallObs, CallSiteStats, RuntimeStats, TickObservations, BACKEND_COUNT};
