//! # sgl-exec — naive and indexed execution of SGL plans
//!
//! The physical layer of *Scaling Games to Epic Proportions*: both executors
//! interpret the optimized logical plans of `sgl-algebra` set-at-a-time, but
//! the **naive** executor answers every aggregate probe and action clause by
//! scanning the environment (`O(n²)` per tick — the baseline of §6), while
//! the **indexed** executor builds the per-tick index structures of
//! `sgl-index` (layered aggregate range trees, kD-trees, sweep-lines behind a
//! categorical hash layer) and answers each probe in `O(log n)`.
//!
//! Main entry point: [`execute_tick`].

#![warn(missing_docs)]

pub mod builtin_eval;
pub mod config;
pub mod error;
pub mod filter;
pub mod indexes;
pub mod interp;
pub mod planner;

pub use config::{ExecConfig, ExecMode, SpatialAttrs, TickStats};
pub use error::{ExecError, Result};
pub use filter::{analyze_filter, FilterAnalysis};
pub use indexes::IndexCache;
pub use interp::{execute_tick, ScriptRun};
pub use planner::{plan_aggregate, AggStrategy, PlannedAggregate};
