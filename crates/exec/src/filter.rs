//! Analysis of built-in filters `φ(u, e, r)` for index selection (§5.3).
//!
//! The planner assumes conjunctive filters (the paper notes this covers the
//! scripts found in practice) and classifies each conjunct as
//!
//! * a **spatial bound** on the candidate row's position
//!   (`e.posx >= u.posx - range`), which together form the orthogonal range
//!   query answered by the range trees;
//! * a **categorical constraint** (`e.player <> u.player`,
//!   `e.unittype = "healer"`), which selects partitions of the hash layer;
//! * a **key equality** (`e.key = target_key`), the targeted-action case;
//! * anything else is **residual** and forces per-row evaluation.

use sgl_env::Schema;
use sgl_lang::ast::{CmpOp, Cond, Term, VarRef};

use crate::config::SpatialAttrs;

/// A categorical constraint: `e.attr = value` or `e.attr ≠ value`.
#[derive(Debug, Clone, PartialEq)]
pub struct CatConstraint {
    /// Attribute name on the candidate row.
    pub attr: String,
    /// True for equality, false for inequality.
    pub equal: bool,
    /// The comparison value (a term over `u.*` and parameters).
    pub value: Term,
}

/// Result of analysing a filter.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FilterAnalysis {
    /// Whether the filter was a conjunctive query at all.
    pub conjunctive: bool,
    /// Lower bound on `e.<x>` (term over `u`/parameters).
    pub x_lo: Option<Term>,
    /// Upper bound on `e.<x>`.
    pub x_hi: Option<Term>,
    /// Lower bound on `e.<y>`.
    pub y_lo: Option<Term>,
    /// Upper bound on `e.<y>`.
    pub y_hi: Option<Term>,
    /// Categorical constraints.
    pub cats: Vec<CatConstraint>,
    /// `e.key = term` constraint, if present.
    pub key_eq: Option<Term>,
    /// Conjuncts that could not be classified.
    pub residual: Vec<Cond>,
}

impl FilterAnalysis {
    /// True when all four spatial bounds are present (a complete orthogonal
    /// range query on the position).
    pub fn has_rect(&self) -> bool {
        self.x_lo.is_some() && self.x_hi.is_some() && self.y_lo.is_some() && self.y_hi.is_some()
    }

    /// True when the filter has no residual conjuncts (so indexes answer it
    /// exactly, with no per-row re-checking).
    pub fn is_exact(&self) -> bool {
        self.conjunctive && self.residual.is_empty()
    }

    /// Names of the categorical attributes, sorted and deduplicated — the
    /// partition signature of the hash layer.
    pub fn cat_attr_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.cats.iter().map(|c| c.attr.clone()).collect();
        names.sort();
        names.dedup();
        names
    }
}

fn is_row_attr(term: &Term) -> Option<&str> {
    match term {
        Term::Var(VarRef::Row(a)) => Some(a.as_str()),
        _ => None,
    }
}

/// Analyse a filter against the schema and the spatial attribute mapping.
pub fn analyze_filter(
    filter: &Cond,
    schema: &Schema,
    spatial: Option<SpatialAttrs>,
) -> FilterAnalysis {
    let mut analysis = FilterAnalysis {
        conjunctive: true,
        ..FilterAnalysis::default()
    };
    let conjuncts = match filter.conjuncts() {
        Some(c) => c,
        None => {
            analysis.conjunctive = false;
            analysis.residual.push(filter.clone());
            return analysis;
        }
    };
    let x_name = spatial.map(|s| schema.attr(s.x).name.clone());
    let y_name = spatial.map(|s| schema.attr(s.y).name.clone());
    let key_name = schema.attr(schema.key_attr()).name.clone();

    for conjunct in conjuncts {
        let (op, left, right) = match conjunct {
            Cond::Cmp { op, left, right } => (*op, left, right),
            other => {
                analysis.residual.push((*other).clone());
                continue;
            }
        };
        // Normalise so the row attribute is on the left.
        let (op, attr, value) = match (is_row_attr(left), is_row_attr(right)) {
            (Some(a), None) if !right.references_row() => (op, a, right.clone()),
            (None, Some(a)) if !left.references_row() => (op.flipped(), a, left.clone()),
            _ => {
                analysis.residual.push(conjunct.clone());
                continue;
            }
        };
        let is_x = x_name.as_deref() == Some(attr);
        let is_y = y_name.as_deref() == Some(attr);
        match op {
            CmpOp::Ge if is_x => analysis.x_lo = Some(value),
            CmpOp::Le if is_x => analysis.x_hi = Some(value),
            CmpOp::Ge if is_y => analysis.y_lo = Some(value),
            CmpOp::Le if is_y => analysis.y_hi = Some(value),
            CmpOp::Eq if attr == key_name => analysis.key_eq = Some(value),
            CmpOp::Eq => analysis.cats.push(CatConstraint {
                attr: attr.to_string(),
                equal: true,
                value,
            }),
            CmpOp::Ne => analysis.cats.push(CatConstraint {
                attr: attr.to_string(),
                equal: false,
                value,
            }),
            _ => analysis.residual.push(conjunct.clone()),
        }
    }
    analysis
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_env::schema::paper_schema;
    use sgl_lang::builtins::{ally_filter, enemy_filter, rect_range_filter};
    use sgl_lang::parse_cond;

    fn spatial(schema: &Schema) -> Option<SpatialAttrs> {
        SpatialAttrs::from_schema(schema)
    }

    #[test]
    fn paper_range_filter_is_a_full_rect_with_a_cat_constraint() {
        let schema = paper_schema();
        let filter = Cond::and(rect_range_filter(Term::name("range")), enemy_filter());
        let a = analyze_filter(&filter, &schema, spatial(&schema));
        assert!(a.conjunctive);
        assert!(a.has_rect());
        assert!(a.is_exact());
        assert_eq!(a.cats.len(), 1);
        assert_eq!(a.cats[0].attr, "player");
        assert!(!a.cats[0].equal);
        assert_eq!(a.cat_attr_names(), vec!["player".to_string()]);
        assert!(a.key_eq.is_none());
    }

    #[test]
    fn key_equality_is_recognised() {
        let schema = paper_schema();
        let filter = parse_cond("e.key = target_key").unwrap();
        let a = analyze_filter(&filter, &schema, spatial(&schema));
        assert!(a.key_eq.is_some());
        assert!(a.is_exact());
        assert!(!a.has_rect());
    }

    #[test]
    fn flipped_comparisons_are_normalised() {
        let schema = paper_schema();
        // `u.posx - 5 <= e.posx` means `e.posx >= u.posx - 5`.
        let filter = parse_cond("u.posx - 5 <= e.posx and e.posx <= u.posx + 5").unwrap();
        let a = analyze_filter(&filter, &schema, spatial(&schema));
        assert!(a.x_lo.is_some());
        assert!(a.x_hi.is_some());
        assert!(a.y_lo.is_none());
    }

    #[test]
    fn ally_filter_is_an_equality_constraint() {
        let schema = paper_schema();
        let a = analyze_filter(&ally_filter(), &schema, spatial(&schema));
        assert_eq!(a.cats.len(), 1);
        assert!(a.cats[0].equal);
    }

    #[test]
    fn disjunctive_filters_are_residual() {
        let schema = paper_schema();
        let filter = parse_cond("e.player = 1 or e.player = 2").unwrap();
        let a = analyze_filter(&filter, &schema, spatial(&schema));
        assert!(!a.conjunctive);
        assert!(!a.is_exact());
        assert_eq!(a.residual.len(), 1);
    }

    #[test]
    fn unclassifiable_conjuncts_go_to_residual() {
        let schema = paper_schema();
        // Strict inequality on position and a row-vs-row comparison.
        let filter = parse_cond("e.posx < u.posx and e.health <= e.damage").unwrap();
        let a = analyze_filter(&filter, &schema, spatial(&schema));
        assert_eq!(a.residual.len(), 2);
        assert!(!a.is_exact());
        assert!(!a.has_rect());
    }

    #[test]
    fn without_spatial_attrs_bounds_become_categorical_or_residual() {
        let schema = paper_schema();
        let filter = parse_cond("e.posx >= u.posx - 5").unwrap();
        let a = analyze_filter(&filter, &schema, None);
        assert!(!a.has_rect());
        assert_eq!(a.residual.len(), 1);
    }

    #[test]
    fn health_threshold_is_residual_but_exactness_reports_it() {
        let schema = paper_schema();
        let filter = parse_cond("e.health >= 1 and e.player != u.player").unwrap();
        let a = analyze_filter(&filter, &schema, spatial(&schema));
        // `e.health >= 1` is a non-spatial range: kept as residual (it could
        // also be a tree level; we post-filter instead).
        assert_eq!(a.residual.len(), 1);
        assert_eq!(a.cats.len(), 1);
    }
}
