//! Error type for plan execution.

use std::fmt;

/// Errors raised while executing a tick.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// Error from the language layer (term evaluation, unresolved names).
    Lang(sgl_lang::LangError),
    /// Error from the environment layer (arithmetic, schema).
    Env(sgl_env::EnvError),
    /// A plan referenced an unknown built-in.
    UnknownBuiltin(String),
    /// Malformed executor configuration (environment knobs, presets).
    Config(String),
    /// Internal invariant violation.
    Internal(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Lang(e) => write!(f, "{e}"),
            ExecError::Env(e) => write!(f, "{e}"),
            ExecError::UnknownBuiltin(name) => write!(f, "unknown builtin `{name}`"),
            ExecError::Config(msg) => write!(f, "executor configuration error: {msg}"),
            ExecError::Internal(msg) => write!(f, "internal executor error: {msg}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<sgl_lang::LangError> for ExecError {
    fn from(e: sgl_lang::LangError) -> Self {
        ExecError::Lang(e)
    }
}

impl From<sgl_env::EnvError> for ExecError {
    fn from(e: sgl_env::EnvError) -> Self {
        ExecError::Env(e)
    }
}

/// Result alias for the executor.
pub type Result<T> = std::result::Result<T, ExecError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: ExecError = sgl_env::EnvError::MissingKey.into();
        assert!(e.to_string().contains("key"));
        let e: ExecError = sgl_lang::LangError::Unresolved("x".into()).into();
        assert!(e.to_string().contains("x"));
        assert!(ExecError::UnknownBuiltin("Foo".into())
            .to_string()
            .contains("Foo"));
        assert!(ExecError::Internal("bad".into())
            .to_string()
            .contains("bad"));
        assert!(ExecError::Config("SGL_PARALLELISM".into())
            .to_string()
            .contains("configuration"));
    }
}
