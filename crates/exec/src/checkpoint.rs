//! Export/import of the executor's cross-tick state for checkpoints.
//!
//! The engine's checkpoint persists three pieces of executor state so a
//! resumed simulation continues the *same* trajectory as an uninterrupted
//! one — not just the same environment:
//!
//! * [`RuntimeStats`] — the EWMA store feeding the cost-based planner.
//!   Without it a resumed planner would re-bootstrap from priors and could
//!   (harmlessly but observably in `explain`) choose different backends for
//!   a few windows.
//! * the installed per-call-site [`PhysicalChoice`]s and the writer's
//!   [`PlannerMode`] — so a resume *mid* re-costing window continues under
//!   the exact physical plan the writer was executing, and the next re-cost
//!   happens at the same tick boundary it would have anyway.
//! * the [`MaintStats`] counters of the most recent maintenance pass, for
//!   monitoring continuity across a migration.
//!
//! All encodings go through [`sgl_env::checkpoint`]'s bounds-checked
//! primitives and fail with typed [`sgl_env::EnvError::Checkpoint`] errors.
//! Map contents are emitted sorted by call-site name, so the bytes are a
//! deterministic function of the state (the golden-checkpoint corpus pins
//! this).  Priced alternatives are *not* persisted: they are a pure display
//! artifact of `explain` and are reconstructed at the next re-costing pass.

use rustc_hash::FxHashMap;

use sgl_algebra::cost::{MaintenanceChoice, PhysicalBackend};
use sgl_env::checkpoint::{ByteReader, ByteWriter};
use sgl_env::{EnvError, Result};

use crate::config::{AdaptiveWindow, PlannerMode};
use crate::indexes::MaintStats;
use crate::planner::{strategy_class, PhysicalChoice, PlannedAggregate};
use crate::stats::{CallSiteStats, RuntimeStats, BACKEND_COUNT};

fn err(msg: impl Into<String>) -> EnvError {
    EnvError::Checkpoint(msg.into())
}

// ---------------------------------------------------------------------------
// Runtime statistics
// ---------------------------------------------------------------------------

/// Version stamp of the statistics section.  The legacy (unstamped) layout
/// opened directly with the tick counter; a tick counter can never be
/// `u64::MAX`, so the sentinel distinguishes the two unambiguously and
/// frozen pre-stamp checkpoints (the `.v1.ckpt` corpus) keep decoding.
const STATS_SENTINEL: u64 = u64::MAX;
/// Current statistics layout: per-site `have_probes` flag, 7 backend
/// counters (the materialized answer store added one).
const STATS_VERSION: u8 = 2;

/// Serialize the cross-tick runtime statistics (call sites sorted by name).
pub fn export_runtime_stats(stats: &RuntimeStats) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u64(STATS_SENTINEL);
    w.u8(STATS_VERSION);
    w.u64(stats.ticks);
    w.f64(stats.cardinality);
    w.f64(stats.update_rate);
    w.u8(stats.have_update_rate as u8);
    w.f64(stats.world_area);
    let mut names: Vec<&String> = stats.calls.keys().collect();
    names.sort();
    w.u32(names.len() as u32);
    for name in names {
        let site = &stats.calls[name];
        w.str(name);
        w.f64(site.probes);
        w.u8(site.have_probes as u8);
        w.f64(site.selectivity);
        w.u8(site.have_selectivity as u8);
        w.f64(site.area_fraction);
        w.u8(site.have_area as u8);
        w.f64(site.partitions);
        w.u32(BACKEND_COUNT as u32);
        for served in site.served_total {
            w.u64(served);
        }
    }
    w.finish()
}

/// Decode runtime statistics written by [`export_runtime_stats`].
pub fn import_runtime_stats(bytes: &[u8]) -> Result<RuntimeStats> {
    let mut r = ByteReader::new(bytes);
    let first = r.u64("stats tick count")?;
    let (version, ticks) = if first == STATS_SENTINEL {
        let version = r.u8("stats version")?;
        if version != STATS_VERSION {
            return Err(err(format!("unsupported statistics version {version}")));
        }
        (version, r.u64("stats tick count")?)
    } else {
        // Legacy unstamped layout: the u64 we just read *is* the counter.
        (1, first)
    };
    let mut stats = RuntimeStats {
        ticks,
        cardinality: r.f64("stats cardinality")?,
        update_rate: r.f64("stats update rate")?,
        have_update_rate: r.u8("stats update-rate flag")? != 0,
        world_area: r.f64("stats world area")?,
        calls: FxHashMap::default(),
    };
    let sites = r.u32("stats call-site count")? as usize;
    for _ in 0..sites {
        let name = r.str("call-site name")?;
        let probes = r.f64("call-site probes")?;
        let have_probes = if version >= 2 {
            r.u8("call-site probes flag")? != 0
        } else {
            // The legacy layout had no flag; `probes > 0` was its semantic.
            probes > 0.0
        };
        let mut site = CallSiteStats {
            probes,
            have_probes,
            selectivity: r.f64("call-site selectivity")?,
            have_selectivity: r.u8("call-site selectivity flag")? != 0,
            area_fraction: r.f64("call-site area fraction")?,
            have_area: r.u8("call-site area flag")? != 0,
            partitions: r.f64("call-site partitions")?,
            served_total: [0; BACKEND_COUNT],
        };
        // The backend-counter array is length-prefixed so adding a backend
        // extends the array decodably: legacy shorter arrays fill the
        // leading slots (new backends are appended, never reordered), while
        // a *longer* array than this build knows is rejected.
        let backends = r.u32("served-backend count")? as usize;
        if backends > BACKEND_COUNT || (version >= 2 && backends != BACKEND_COUNT) {
            return Err(err(format!(
                "call site `{name}` carries {backends} backend counters, \
                 this build has {BACKEND_COUNT}"
            )));
        }
        for slot in site.served_total.iter_mut().take(backends) {
            *slot = r.u64("served-backend counter")?;
        }
        if stats.calls.insert(name.clone(), site).is_some() {
            return Err(err(format!("duplicate call site `{name}` in statistics")));
        }
    }
    r.expect_end("runtime statistics")?;
    Ok(stats)
}

// ---------------------------------------------------------------------------
// Planner state
// ---------------------------------------------------------------------------

/// One decoded planner entry: call-site name and its installed choice.
pub type ImportedChoice = (String, PhysicalChoice);

/// Serialize the writer's planner mode and every installed physical choice,
/// sorted by call-site name.
pub fn export_planner_state(
    planner: PlannerMode,
    planned: &FxHashMap<String, PlannedAggregate>,
) -> Vec<u8> {
    let mut w = ByteWriter::new();
    match planner {
        PlannerMode::Heuristic => {
            w.u8(0);
            w.u32(0);
        }
        PlannerMode::CostBased(window) => {
            w.u8(1);
            w.u32(window.ticks);
        }
        PlannerMode::ForceMaterialized => {
            w.u8(2);
            w.u32(0);
        }
    }
    let mut entries: Vec<(&String, &PhysicalChoice)> = planned
        .iter()
        .filter_map(|(name, plan)| plan.choice.as_ref().map(|c| (name, c)))
        .collect();
    entries.sort_by(|a, b| a.0.cmp(b.0));
    w.u32(entries.len() as u32);
    for (name, choice) in entries {
        w.str(name);
        w.u8(choice.backend.index() as u8);
        w.u8(match choice.maintenance {
            MaintenanceChoice::PerTick => 0,
            MaintenanceChoice::Incremental => 1,
            MaintenanceChoice::Rebuild => 2,
        });
        w.f64(choice.est_us);
    }
    w.finish()
}

/// Decode planner state written by [`export_planner_state`]: the writer's
/// planner mode plus the installed choices (with empty alternative lists —
/// alternatives are re-priced at the next re-costing pass).
pub fn import_planner_state(bytes: &[u8]) -> Result<(PlannerMode, Vec<ImportedChoice>)> {
    let mut r = ByteReader::new(bytes);
    let mode = match r.u8("planner mode")? {
        0 => {
            let _ = r.u32("planner window")?;
            PlannerMode::Heuristic
        }
        1 => {
            let ticks = r.u32("planner window")?;
            PlannerMode::CostBased(AdaptiveWindow::every(ticks))
        }
        2 => {
            let _ = r.u32("planner window")?;
            PlannerMode::ForceMaterialized
        }
        other => return Err(err(format!("unknown planner mode {other}"))),
    };
    let count = r.u32("choice count")? as usize;
    let mut choices = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let name = r.str("choice call-site name")?;
        let backend_idx = r.u8("choice backend")? as usize;
        let backend = *PhysicalBackend::ALL
            .get(backend_idx)
            .ok_or_else(|| err(format!("unknown physical backend code {backend_idx}")))?;
        let maintenance = match r.u8("choice maintenance")? {
            0 => MaintenanceChoice::PerTick,
            1 => MaintenanceChoice::Incremental,
            2 => MaintenanceChoice::Rebuild,
            other => return Err(err(format!("unknown maintenance code {other}"))),
        };
        let est_us = r.f64("choice estimated cost")?;
        choices.push((
            name,
            PhysicalChoice {
                backend,
                maintenance,
                est_us,
                alternatives: Vec::new(),
            },
        ));
    }
    r.expect_end("planner state")?;
    Ok((mode, choices))
}

/// Install imported choices onto the re-planned call sites.  Only call sites
/// that still exist and still have alternatives to price accept a choice;
/// anything else is skipped (the next re-costing pass re-prices them), so a
/// checkpoint survives registry evolution that *adds* aggregates.
pub fn install_choices(
    planned: &mut FxHashMap<String, PlannedAggregate>,
    choices: Vec<ImportedChoice>,
) -> usize {
    let mut installed = 0;
    for (name, choice) in choices {
        if let Some(plan) = planned.get_mut(&name) {
            if strategy_class(&plan.strategy).is_some() {
                plan.choice = Some(choice);
                installed += 1;
            }
        }
    }
    installed
}

// ---------------------------------------------------------------------------
// Maintenance counters
// ---------------------------------------------------------------------------

/// Serialize the counters of the most recent maintenance pass.
pub fn export_maint_stats(stats: &MaintStats) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u64(stats.delta_ops as u64);
    w.u64(stats.partition_rebuilds as u64);
    w.u64(stats.rows_scanned as u64);
    w.u64(stats.effect_hints as u64);
    w.finish()
}

/// Decode maintenance counters written by [`export_maint_stats`].
pub fn import_maint_stats(bytes: &[u8]) -> Result<MaintStats> {
    let mut r = ByteReader::new(bytes);
    // The materialized-store counters are not on the wire: the store itself
    // is not checkpointed (rebuilt lazily on resume), so its counters start
    // from zero like the store does.
    let stats = MaintStats {
        delta_ops: r.u64("maintenance delta ops")? as usize,
        partition_rebuilds: r.u64("maintenance partition rebuilds")? as usize,
        rows_scanned: r.u64("maintenance rows scanned")? as usize,
        effect_hints: r.u64("maintenance effect hints")? as usize,
        ..MaintStats::default()
    };
    r.expect_end("maintenance counters")?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SpatialAttrs;
    use crate::planner::plan_aggregate;
    use crate::stats::TickObservations;
    use sgl_env::schema::paper_schema;

    fn sample_stats() -> RuntimeStats {
        let mut obs = TickObservations::default();
        obs.record_probe("Count");
        obs.record_served("Count", PhysicalBackend::MaintainedGrid);
        obs.record_matched("Count", 12);
        obs.record_rect_area("Count", 30.0);
        obs.record_partitions("Count", 2);
        obs.record_probe("Near");
        obs.record_served("Near", PhysicalBackend::KdTree);
        let mut stats = RuntimeStats::default();
        stats.observe_tick(80, 20, 500.0, None, &obs);
        stats.observe_tick(78, 30, 500.0, Some(0.2), &obs);
        stats
    }

    #[test]
    fn runtime_stats_round_trip_exactly() {
        let stats = sample_stats();
        let bytes = export_runtime_stats(&stats);
        let back = import_runtime_stats(&bytes).unwrap();
        assert_eq!(back.ticks, stats.ticks);
        assert_eq!(back.cardinality.to_bits(), stats.cardinality.to_bits());
        assert_eq!(back.update_rate.to_bits(), stats.update_rate.to_bits());
        assert_eq!(back.have_update_rate, stats.have_update_rate);
        assert_eq!(back.world_area.to_bits(), stats.world_area.to_bits());
        assert_eq!(back.calls.len(), stats.calls.len());
        for (name, site) in &stats.calls {
            let b = &back.calls[name];
            assert_eq!(b.probes.to_bits(), site.probes.to_bits(), "{name}");
            assert_eq!(b.selectivity.to_bits(), site.selectivity.to_bits());
            assert_eq!(b.have_selectivity, site.have_selectivity);
            assert_eq!(b.area_fraction.to_bits(), site.area_fraction.to_bits());
            assert_eq!(b.have_area, site.have_area);
            assert_eq!(b.partitions.to_bits(), site.partitions.to_bits());
            assert_eq!(b.served_total, site.served_total);
        }
        // Deterministic bytes (map order cannot leak into the encoding).
        assert_eq!(bytes, export_runtime_stats(&back));
    }

    /// Hand-written legacy (unstamped, v1) statistics stream: no per-site
    /// probes flag, 6 backend counters.  The frozen `.v1.ckpt` golden corpus
    /// carries this layout and is never re-blessed, so decoding it is pinned
    /// here at the unit level too.
    #[test]
    fn legacy_unstamped_stats_still_decode() {
        let mut w = ByteWriter::new();
        w.u64(7); // ticks — doubles as the "not the sentinel" discriminator
        w.f64(80.0); // cardinality
        w.f64(0.25); // update rate
        w.u8(1);
        w.f64(500.0); // world area
        w.u32(1); // one call site
        w.str("Count");
        w.f64(12.0); // probes (no flag byte in v1)
        w.f64(0.1); // selectivity
        w.u8(1);
        w.f64(0.05); // area fraction
        w.u8(1);
        w.f64(2.0); // partitions
        w.u32(6); // legacy backend-counter array (pre-materialized)
        for served in [3u64, 0, 1, 0, 0, 2] {
            w.u64(served);
        }
        let stats = import_runtime_stats(&w.finish()).unwrap();
        assert_eq!(stats.ticks, 7);
        let site = &stats.calls["Count"];
        assert!(site.have_probes, "legacy semantic: probes > 0 means seeded");
        assert_eq!(site.probes, 12.0);
        assert_eq!(site.served_total, [3, 0, 1, 0, 0, 2, 0]);
        // Re-exporting stamps the current version; the bytes round-trip.
        let back = import_runtime_stats(&export_runtime_stats(&stats)).unwrap();
        assert_eq!(back.calls["Count"].served_total, site.served_total);
    }

    #[test]
    fn runtime_stats_imports_reject_corruption() {
        let bytes = export_runtime_stats(&sample_stats());
        for cut in 0..bytes.len() {
            assert!(
                matches!(
                    import_runtime_stats(&bytes[..cut]),
                    Err(EnvError::Checkpoint(_))
                ),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn planner_state_round_trips_choices_and_mode() {
        let schema = paper_schema();
        let spatial = SpatialAttrs::from_schema(&schema);
        let registry = sgl_lang::builtins::paper_registry();
        let mut planned = FxHashMap::default();
        for name in registry.aggregate_names() {
            planned.insert(
                name.to_string(),
                plan_aggregate(registry.aggregate(name).unwrap(), &schema, spatial),
            );
        }
        let constants = sgl_algebra::cost::CostConstants::default();
        crate::planner::choose_physical(
            &mut planned,
            &RuntimeStats::default(),
            &constants,
            4000,
            true,
        );
        let installed_before: Vec<(String, PhysicalBackend, MaintenanceChoice)> = {
            let mut v: Vec<_> = planned
                .iter()
                .filter_map(|(n, p)| {
                    p.choice
                        .as_ref()
                        .map(|c| (n.clone(), c.backend, c.maintenance))
                })
                .collect();
            v.sort();
            v
        };
        assert!(!installed_before.is_empty());

        let mode = PlannerMode::cost_based(3);
        let bytes = export_planner_state(mode, &planned);
        let (back_mode, choices) = import_planner_state(&bytes).unwrap();
        assert_eq!(back_mode, mode);

        // Install onto a freshly planned map: same choices come back.
        let mut fresh = FxHashMap::default();
        for name in registry.aggregate_names() {
            fresh.insert(
                name.to_string(),
                plan_aggregate(registry.aggregate(name).unwrap(), &schema, spatial),
            );
        }
        let installed = install_choices(&mut fresh, choices);
        assert_eq!(installed, installed_before.len());
        let mut after: Vec<_> = fresh
            .iter()
            .filter_map(|(n, p)| {
                p.choice
                    .as_ref()
                    .map(|c| (n.clone(), c.backend, c.maintenance))
            })
            .collect();
        after.sort();
        assert_eq!(after, installed_before);
        // A re-cost with identical statistics keeps every installed choice
        // (zero switches) — the resumed planner continues, not restarts.
        assert_eq!(
            crate::planner::choose_physical(
                &mut fresh,
                &RuntimeStats::default(),
                &constants,
                4000,
                true,
            ),
            0
        );
    }

    #[test]
    fn planner_state_rejects_unknown_codes() {
        let mut w = ByteWriter::new();
        w.u8(9); // unknown mode
        assert!(matches!(
            import_planner_state(&w.finish()),
            Err(EnvError::Checkpoint(_))
        ));
        let mut w = ByteWriter::new();
        w.u8(0);
        w.u32(0);
        w.u32(1);
        w.str("X");
        w.u8(200); // unknown backend
        w.u8(0);
        w.f64(1.0);
        assert!(matches!(
            import_planner_state(&w.finish()),
            Err(EnvError::Checkpoint(_))
        ));
    }

    #[test]
    fn maint_stats_round_trip() {
        let stats = MaintStats {
            delta_ops: 10,
            partition_rebuilds: 3,
            rows_scanned: 250,
            effect_hints: 41,
            ..MaintStats::default()
        };
        let back = import_maint_stats(&export_maint_stats(&stats)).unwrap();
        assert_eq!(back, stats);
        assert!(import_maint_stats(&[1, 2, 3]).is_err());
    }
}
