//! The register-machine evaluator for [`CompiledScript`]s — the hot loop of
//! `ExecMode::Compiled`.
//!
//! One [`Vm`] executes one script for one shard's acting units.  Per unit it
//! runs the flat instruction array in a dispatch loop over a register file
//! of `ScriptValue`s; every name, attribute and call target was resolved at
//! compile time, and aggregate definitions / physical plans are resolved
//! once per shard run (the cost-based planner may change backends between
//! ticks), so nothing in the per-unit path performs a string lookup.
//!
//! **Determinism contract.**  The interpreter emits effects
//! *statement-major*: for each `perform` site, all acting units' effects in
//! unit order (clauses in definition order per unit).  The VM executes
//! *unit-major* (each unit runs its whole script before the next), which is
//! the cache-friendly order, and buffers effects per perform site; after the
//! shard's units finish it replays the buffers site-major.  The replayed
//! emission sequence is therefore exactly the interpreter's, so the `⊕`
//! fold — including non-associative float sums — stays bit-identical, and
//! the run-major parallel replay of `interp.rs` composes unchanged on top.
//!
//! Aggregate probes hit the same per-tick index cache and the same scan
//! fallback as the interpreter, but skip the interpreter's sharing memo: the
//! memo exists because the plan walker duplicates hoisted aggregate calls
//! across `Apply` statements, whereas the bytecode calls each site exactly
//! once per unit, so a `(site, unit)` key could never repeat within a run
//! and the fingerprint + map traffic would be pure overhead.  Results are
//! identical either way — aggregates are pure functions of the tick-frozen
//! environment — but the bookkeeping *counts* (`aggregate_probes`,
//! `shared_hits`) legitimately differ from interpreted runs, which the
//! conformance digests do not observe.  Per-call-site bookkeeping for the
//! cost-based planner is batched: the VM counts probes per site id during
//! the run and flushes once into [`TickObservations`] at the end.
//!
//! [`TickObservations`]: crate::stats::TickObservations

use rustc_hash::FxHashMap;

use sgl_lang::ast::CmpOp;
use sgl_lang::builtins::AggregateDef;
use sgl_lang::eval::{eval_cond, eval_term, EvalContext, NoAggregates, ScriptValue};

use sgl_algebra::cost::PhysicalBackend;
use sgl_env::{AttrId, Value};

use crate::builtin_eval::eval_aggregate_scan;
use crate::compile::{CompiledScript, Instr};
use crate::error::{ExecError, Result};
use crate::interp::{ShardState, TickShared};
use crate::planner::PlannedAggregate;

/// An aggregate call site resolved against this tick's registry and plan
/// cache, with its parameter map pre-keyed so a probe only overwrites
/// values (no per-probe map or key-string allocation).
struct ResolvedAgg<'a> {
    def: &'a AggregateDef,
    planned: &'a PlannedAggregate,
    /// Reusable parameter bindings (`def.params[1..]` → placeholder).
    params: FxHashMap<String, ScriptValue>,
    /// Probes evaluated at this site during the run (flushed to the
    /// planner's observations at run end, keyed by `def.name`).
    probes: u64,
    /// How many of them fell back to the naive scan.
    scans: u64,
}

/// Mutable per-shard execution state for one compiled script: the register
/// file, the inline caches for record-field reads and the per-site effect
/// buffers.  The compiled script itself stays shared and immutable.
struct Vm {
    regs: Vec<ScriptValue>,
    /// Cached field positions for `Field` instructions (`usize::MAX` =
    /// cold).  Records produced by a given site share a layout, so after
    /// the first unit every field read is a direct index plus a name check.
    field_cache: Vec<usize>,
    /// Effects buffered per perform site, replayed site-major at run end.
    site_logs: Vec<Vec<(i64, AttrId, Value)>>,
    /// Reusable parameter bindings per perform site.
    perform_params: Vec<FxHashMap<String, ScriptValue>>,
    /// Scratch buffer for flattened call arguments.
    flat: Vec<Value>,
    /// Scratch buffer for candidate rows of a perform clause.
    candidates: Vec<u32>,
}

/// Pre-key a reusable parameter map for a call site: one entry per declared
/// parameter after the implicit unit.  Probes overwrite the values in place.
fn param_slots(params: &[String]) -> FxHashMap<String, ScriptValue> {
    params
        .iter()
        .skip(1)
        .map(|p| (p.clone(), ScriptValue::Scalar(Value::Int(0))))
        .collect()
}

/// Flatten the argument registers after the implicit unit into `flat` and
/// overwrite the pre-keyed parameter map — the semantics of
/// [`crate::builtin_eval::bind_params`], minus its per-call allocations.
fn rebind_params(
    name: &str,
    declared: &[String],
    arg_regs: &[u16],
    regs: &[ScriptValue],
    flat: &mut Vec<Value>,
    params: &mut FxHashMap<String, ScriptValue>,
) -> Result<()> {
    flat.clear();
    for r in arg_regs.iter().skip(1) {
        match &regs[*r as usize] {
            ScriptValue::Scalar(v) => flat.push(v.clone()),
            ScriptValue::Record(fields) => flat.extend(fields.iter().map(|(_, v)| v.clone())),
        }
    }
    let expected = declared.len().saturating_sub(1);
    if flat.len() != expected {
        return Err(ExecError::Lang(sgl_lang::LangError::Semantic(format!(
            "builtin `{name}` expects {expected} scalar arguments after the unit, got {}",
            flat.len()
        ))));
    }
    for (param, value) in declared.iter().skip(1).zip(flat.drain(..)) {
        match params.get_mut(param) {
            Some(slot) => *slot = ScriptValue::Scalar(value),
            None => {
                return Err(ExecError::Internal(format!(
                    "parameter `{param}` of `{name}` missing from the pre-keyed bindings"
                )))
            }
        }
    }
    Ok(())
}

/// Execute one compiled script for `acting_rows` within a shard, emitting
/// effects into the shard's sink in the interpreter's exact order.
pub(crate) fn run_compiled(
    shared: &TickShared<'_>,
    state: &mut ShardState<'_>,
    compiled: &CompiledScript,
    acting_rows: &[u32],
) -> Result<()> {
    // Per-run (not per-unit) resolution of call sites and named constants.
    let mut aggs = compiled
        .agg_sites
        .iter()
        .map(|site| {
            let def = shared
                .registry
                .aggregate(&site.name)
                .ok_or_else(|| ExecError::UnknownBuiltin(site.name.clone()))?;
            let planned = shared.planned.get(&site.name).ok_or_else(|| {
                ExecError::Internal(format!(
                    "aggregate `{}` missing from the plan cache",
                    site.name
                ))
            })?;
            Ok(ResolvedAgg {
                def,
                planned,
                params: param_slots(&def.params),
                probes: 0,
                scans: 0,
            })
        })
        .collect::<Result<Vec<_>>>()?;
    // Missing names only error if an instruction actually reads them —
    // exactly when the interpreter's lazy per-probe lookup would.
    let consts: Vec<Option<&Value>> = compiled
        .const_names
        .iter()
        .map(|n| shared.constants.get(n))
        .collect();

    let mut vm = Vm {
        regs: vec![ScriptValue::Scalar(Value::Int(0)); compiled.num_regs],
        field_cache: vec![usize::MAX; compiled.num_field_caches],
        site_logs: vec![Vec::new(); compiled.perform_sites.len()],
        perform_params: compiled
            .perform_sites
            .iter()
            .map(|s| param_slots(&s.params))
            .collect(),
        flat: Vec::new(),
        candidates: Vec::new(),
    };
    let schema = shared.table.schema();
    for &row in acting_rows {
        let unit = shared.table.row(row as usize);
        let ctx = EvalContext::new(schema, unit, shared.rng, shared.constants);
        vm.run_unit(shared, state, compiled, &mut aggs, &consts, &ctx)?;
    }
    for site in &aggs {
        state.stats.aggregate_probes += site.probes as usize;
        state.stats.naive_scans += site.scans as usize;
        state.obs.record_probes(&site.def.name, site.probes);
        state
            .obs
            .record_served_n(&site.def.name, PhysicalBackend::Scan, site.scans);
    }
    // Site-major replay = the interpreter's statement-major emission order.
    for log in vm.site_logs {
        for (key, attr, value) in log {
            state.effects.emit(key, attr, value)?;
        }
    }
    Ok(())
}

impl Vm {
    #[allow(clippy::too_many_arguments)]
    fn run_unit(
        &mut self,
        shared: &TickShared<'_>,
        state: &mut ShardState<'_>,
        compiled: &CompiledScript,
        aggs: &mut [ResolvedAgg<'_>],
        consts: &[Option<&Value>],
        ctx: &EvalContext<'_>,
    ) -> Result<()> {
        let mut pc = 0usize;
        loop {
            match &compiled.instrs[pc] {
                Instr::Const { dst, idx } => {
                    self.regs[*dst as usize] =
                        ScriptValue::Scalar(compiled.consts[*idx as usize].clone());
                }
                Instr::NamedConst { dst, idx } => {
                    let v = consts[*idx as usize].ok_or_else(|| {
                        ExecError::Lang(sgl_lang::LangError::Unresolved(
                            compiled.const_names[*idx as usize].clone(),
                        ))
                    })?;
                    self.regs[*dst as usize] = ScriptValue::Scalar(v.clone());
                }
                Instr::UnitAttr { dst, attr } => {
                    self.regs[*dst as usize] = ScriptValue::Scalar(ctx.unit.get(*attr).clone());
                }
                Instr::UnitKey { dst } => {
                    self.regs[*dst as usize] = ScriptValue::Scalar(Value::Int(ctx.unit_key));
                }
                Instr::Random { dst, seed } => {
                    let i = self.regs[*seed as usize].as_scalar()?.as_i64()?;
                    self.regs[*dst as usize] =
                        ScriptValue::Scalar(Value::Int(ctx.rng.value(ctx.unit_key, i)));
                }
                Instr::Bin { dst, op, a, b } => {
                    self.regs[*dst as usize] = ScriptValue::zip_binop(
                        *op,
                        &self.regs[*a as usize],
                        &self.regs[*b as usize],
                    )?;
                }
                Instr::Neg { dst, src } => {
                    let v = match &self.regs[*src as usize] {
                        ScriptValue::Scalar(v) => ScriptValue::Scalar(v.neg()?),
                        ScriptValue::Record(fields) => ScriptValue::Record(
                            fields
                                .iter()
                                .map(|(n, v)| Ok((n.clone(), v.neg()?)))
                                .collect::<Result<Vec<_>>>()?,
                        ),
                    };
                    self.regs[*dst as usize] = v;
                }
                Instr::Abs { dst, src } => {
                    self.regs[*dst as usize] =
                        ScriptValue::Scalar(self.regs[*src as usize].as_scalar()?.abs()?);
                }
                Instr::Sqrt { dst, src } => {
                    self.regs[*dst as usize] =
                        ScriptValue::Scalar(self.regs[*src as usize].as_scalar()?.sqrt()?);
                }
                Instr::Field {
                    dst,
                    src,
                    field,
                    cache,
                } => {
                    let name = &compiled.field_names[*field as usize];
                    let slot = &mut self.field_cache[*cache as usize];
                    let value = {
                        let v = &self.regs[*src as usize];
                        match v {
                            ScriptValue::Record(fields) => match fields.get(*slot) {
                                Some((n, val)) if n == name => val.clone(),
                                _ => {
                                    let val = v.field(name)?.clone();
                                    if let Some(pos) = fields.iter().position(|(n, _)| n == name) {
                                        *slot = pos;
                                    }
                                    val
                                }
                            },
                            // Same error as the interpreter's `v.field(..)`.
                            ScriptValue::Scalar(_) => v.field(name)?.clone(),
                        }
                    };
                    self.regs[*dst as usize] = ScriptValue::Scalar(value);
                }
                Instr::Tuple { dst, items } => {
                    let mut fields = Vec::with_capacity(items.len());
                    for (i, r) in items.iter().enumerate() {
                        fields.push((
                            compiled.placeholder_names[i].clone(),
                            self.regs[*r as usize].as_scalar()?.clone(),
                        ));
                    }
                    self.regs[*dst as usize] = ScriptValue::Record(fields);
                }
                Instr::CallAgg { dst, site } => {
                    let v =
                        self.call_aggregate(shared, state, compiled, aggs, *site as usize, ctx)?;
                    self.regs[*dst as usize] = v;
                }
                Instr::Perform { site } => {
                    self.perform(shared, state, compiled, *site as usize, ctx)?;
                }
                Instr::Jump { target } => {
                    pc = *target as usize;
                    continue;
                }
                Instr::Branch {
                    op,
                    a,
                    b,
                    if_true,
                    if_false,
                } => {
                    let l = self.regs[*a as usize].as_scalar()?;
                    let r = self.regs[*b as usize].as_scalar()?;
                    let take = match op {
                        CmpOp::Eq => l.loose_eq(r),
                        CmpOp::Ne => !l.loose_eq(r),
                        _ => op.holds(l.compare(r)?),
                    };
                    pc = if take { *if_true } else { *if_false } as usize;
                    continue;
                }
                Instr::Return => return Ok(()),
            }
            pc += 1;
        }
    }

    /// One aggregate probe: the interpreter's `eval_aggregate` flow (index
    /// cache → scan fallback) with the definition and plan pre-resolved, the
    /// parameter map reused, and the sharing memo skipped (see the module
    /// docs — a `(site, unit)` key cannot repeat within a run).
    #[allow(clippy::too_many_arguments)]
    fn call_aggregate(
        &mut self,
        shared: &TickShared<'_>,
        state: &mut ShardState<'_>,
        compiled: &CompiledScript,
        aggs: &mut [ResolvedAgg<'_>],
        site_idx: usize,
        ctx: &EvalContext<'_>,
    ) -> Result<ScriptValue> {
        let site = &compiled.agg_sites[site_idx];
        let resolved = &mut aggs[site_idx];
        resolved.probes += 1;
        rebind_params(
            &resolved.def.name,
            &resolved.def.params,
            &site.args,
            &self.regs,
            &mut self.flat,
            &mut resolved.params,
        )?;
        // Lend the site's reusable parameter map to a closed probe context
        // (see `TickIndexes::evaluate`); it is handed back below.  An early
        // `?` abandons it, which is fine — the run is discarded on error.
        let probe_ctx = EvalContext {
            schema: ctx.schema,
            unit: ctx.unit,
            unit_key: ctx.unit_key,
            row: None,
            rng: ctx.rng,
            constants: ctx.constants,
            bindings: std::mem::take(&mut resolved.params),
        };
        let via_index = match state.cache.as_mut() {
            Some(cache) => cache.evaluate(resolved.planned, &probe_ctx)?,
            None => None,
        };
        let result = match via_index {
            Some(v) => v,
            None => {
                resolved.scans += 1;
                eval_aggregate_scan(resolved.def, &probe_ctx.bindings, ctx, shared.table)?
            }
        };
        resolved.params = probe_ctx.bindings;
        Ok(result)
    }

    /// One perform-site execution for one unit: the interpreter's
    /// `apply_action` with the filter analysis and effect attribute ids
    /// pre-computed, buffering emissions into the site's log.  The clause
    /// loop reuses one evaluation context, flipping its candidate row in
    /// place instead of cloning the bindings per target.
    fn perform(
        &mut self,
        shared: &TickShared<'_>,
        state: &mut ShardState<'_>,
        compiled: &CompiledScript,
        site_idx: usize,
        ctx: &EvalContext<'_>,
    ) -> Result<()> {
        let site = &compiled.perform_sites[site_idx];
        state.stats.acting_units += 1;
        rebind_params(
            &site.name,
            &site.params,
            &site.args,
            &self.regs,
            &mut self.flat,
            &mut self.perform_params[site_idx],
        )?;
        let mut full_ctx = EvalContext::new(ctx.schema, ctx.unit, ctx.rng, ctx.constants);
        // The map is moved into the context for the clause loop and moved
        // back below; an early `?` return abandons it, which is fine — the
        // whole run (and this `Vm`) is discarded when a tick errors.
        full_ctx.bindings = std::mem::take(&mut self.perform_params[site_idx]);
        let config = shared.config;
        let schema = shared.table.schema();
        let mut no_aggs = NoAggregates;

        for clause in &site.clauses {
            full_ctx.row = None;
            let analysis = &clause.analysis;
            self.candidates.clear();
            if let Some(key_term) = &analysis.key_eq {
                // Targeted effect: O(1) key look-up.
                let key = eval_term(key_term, &full_ctx, &mut no_aggs)?
                    .as_scalar()?
                    .as_i64()?;
                if let Some(idx) = shared.table.find_key_readonly(key) {
                    self.candidates.push(idx as u32);
                }
            } else if config.aoe_index && analysis.conjunctive {
                if let (Some(x_lo), Some(x_hi), Some(y_lo), Some(y_hi)) = (
                    &analysis.x_lo,
                    &analysis.x_hi,
                    &analysis.y_lo,
                    &analysis.y_hi,
                ) {
                    // Area-of-effect: enumerate through the spatial index.
                    let lo_x = eval_term(x_lo, &full_ctx, &mut no_aggs)?
                        .as_scalar()?
                        .as_f64()?;
                    let hi_x = eval_term(x_hi, &full_ctx, &mut no_aggs)?
                        .as_scalar()?
                        .as_f64()?;
                    let lo_y = eval_term(y_lo, &full_ctx, &mut no_aggs)?
                        .as_scalar()?
                        .as_f64()?;
                    let hi_y = eval_term(y_hi, &full_ctx, &mut no_aggs)?
                        .as_scalar()?
                        .as_f64()?;
                    let rect = sgl_index::Rect::new(lo_x, hi_x, lo_y, hi_y);
                    match state.cache.as_mut() {
                        Some(cache) => {
                            let fps = cache.partition_fps_for(&[])?;
                            for fp in fps {
                                self.candidates.extend(cache.enum_query(&[], fp, &rect)?);
                            }
                        }
                        None => self.candidates.extend(0..shared.table.len() as u32),
                    }
                } else {
                    self.candidates.extend(0..shared.table.len() as u32);
                }
            } else {
                self.candidates.extend(0..shared.table.len() as u32);
            }

            let log = &mut self.site_logs[site_idx];
            for &target in &self.candidates {
                let target_row = shared.table.row(target as usize);
                full_ctx.row = Some(target_row);
                if !eval_cond(&clause.filter, &full_ctx, &mut no_aggs)? {
                    continue;
                }
                let target_key = target_row.key(schema);
                for (attr, _attr_name, term) in &clause.effects {
                    let value = eval_term(term, &full_ctx, &mut no_aggs)?
                        .as_scalar()?
                        .clone();
                    log.push((target_key, *attr, value));
                }
            }
        }
        self.perform_params[site_idx] = std::mem::take(&mut full_ctx.bindings);
        Ok(())
    }
}
