//! Index selection for aggregate calls (the physical side of §5.3).
//!
//! For every aggregate definition the planner inspects the filter analysis
//! and the aggregate functions and picks one of four strategies:
//!
//! | strategy | used when | structure |
//! |---|---|---|
//! | `DivisibleTree` | all outputs divisible, exact conjunctive filter | layered aggregate range tree per categorical partition |
//! | `SweepMinMax` | MIN/MAX outputs over a full rectangle | sweep-line + segment tree (constant range size per batch) |
//! | `KdNearest` | argmin of squared distance | kD-tree per categorical partition |
//! | `Scan` | anything else | per-unit scan (identical to the naive executor) |

use rustc_hash::FxHashMap;

use sgl_algebra::cost::{
    best_alternative, price_alternatives, CostConstants, CostedAlternative, MaintenanceChoice,
    PhysicalBackend, StrategyClass,
};
use sgl_env::Schema;
use sgl_index::traits::AggStructureKind;
use sgl_lang::ast::Term;
use sgl_lang::builtins::{AggSpec, AggregateDef, SimpleAgg};

use crate::config::{ExecConfig, RebuildBackend, SpatialAttrs};
use crate::filter::{analyze_filter, FilterAnalysis};
use crate::stats::RuntimeStats;

/// The physical strategy chosen for an aggregate.
#[derive(Debug, Clone, PartialEq)]
pub enum AggStrategy {
    /// Prefix-aggregate layered range tree (Figure 8).
    DivisibleTree {
        /// The distinct channel value terms (over `e.*`) the tree carries.
        channels: Vec<Term>,
        /// For each output: `(output index into def outputs, channel index or
        /// None for COUNT)`.
        output_channels: Vec<Option<usize>>,
    },
    /// Sweep-line MIN/MAX (Figure 9); one sweep per output.
    SweepMinMax,
    /// kD-tree nearest neighbour (§5.3.2).
    KdNearest,
    /// Fall back to scanning the environment for each probing unit.
    Scan,
}

/// The cost-based planner's decision for one call site: the chosen physical
/// backend and maintenance, the modeled cost, and every priced alternative
/// (kept for `explain`).  `None` on a [`PlannedAggregate`] means the
/// heuristic mapping applies (policy/backend from the configuration).
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalChoice {
    /// The structure that answers this call site.
    pub backend: PhysicalBackend,
    /// How the structure is kept in sync.
    pub maintenance: MaintenanceChoice,
    /// Modeled per-tick cost of the chosen alternative (µs).
    pub est_us: f64,
    /// Every priced alternative, in pricing order.
    pub alternatives: Vec<CostedAlternative>,
}

/// A planned aggregate: definition + filter analysis + strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedAggregate {
    /// The aggregate definition.
    pub def: AggregateDef,
    /// Analysis of its filter.
    pub analysis: FilterAnalysis,
    /// Chosen strategy.
    pub strategy: AggStrategy,
    /// Cost-based physical choice; `None` under the heuristic planner.
    pub choice: Option<PhysicalChoice>,
}

impl PlannedAggregate {
    /// Select the concrete structure backing this aggregate under the given
    /// executor configuration — the physical half of the plan, separated
    /// from the strategy so one logical plan runs under every
    /// [`crate::config::MaintenancePolicy`] / [`RebuildBackend`] combination:
    ///
    /// * dynamic policies route every indexable aggregate to the maintained
    ///   [`AggStructureKind::DynamicGrid`];
    /// * rebuild policies pick the configured per-tick structure for
    ///   divisible aggregates, and a quadtree for MIN/MAX aggregates whose
    ///   probe rectangle is not centred on the unit (where the sweep-line
    ///   batch of Figure 9 does not apply);
    /// * `KdNearest` and `Scan` return `None` (kD-trees and scans are not
    ///   aggregate-accumulator structures).
    pub fn structure(&self, config: &ExecConfig) -> Option<AggStructureKind> {
        if let Some(choice) = &self.choice {
            // Cost-based: the choice names the structure directly.
            return match choice.backend {
                PhysicalBackend::Scan | PhysicalBackend::KdTree => None,
                PhysicalBackend::LayeredTree => Some(AggStructureKind::LayeredTree {
                    cascading: config.cascading,
                }),
                // `Sweep` keeps the quadtree as its fallback structure for
                // probes the sweep batch cannot serve (non-centred rects).
                PhysicalBackend::QuadTree | PhysicalBackend::Sweep => {
                    Some(AggStructureKind::QuadTree { bucket: 8 })
                }
                PhysicalBackend::MaintainedGrid => {
                    Some(AggStructureKind::DynamicGrid { cell: 0.0 })
                }
                // Materialized answers recompute through a per-tick quadtree
                // on a miss; it is only built on ticks that actually miss, so
                // the cheap-build structure wins over the layered tree here.
                PhysicalBackend::Materialized => Some(AggStructureKind::QuadTree { bucket: 8 }),
            };
        }
        match &self.strategy {
            AggStrategy::Scan | AggStrategy::KdNearest => None,
            AggStrategy::DivisibleTree { .. } | AggStrategy::SweepMinMax
                if config.policy.is_dynamic() =>
            {
                Some(AggStructureKind::DynamicGrid { cell: 0.0 })
            }
            AggStrategy::DivisibleTree { .. } => Some(match config.backend {
                RebuildBackend::LayeredTree => AggStructureKind::LayeredTree {
                    cascading: config.cascading,
                },
                RebuildBackend::QuadTree => AggStructureKind::QuadTree { bucket: 8 },
            }),
            // Fallback structure for sweep-ineligible probes.
            AggStrategy::SweepMinMax => Some(AggStructureKind::QuadTree { bucket: 8 }),
        }
    }

    /// The channel value terms the backing structure carries: the distinct
    /// divisible channels, one channel per MIN/MAX output, or none for
    /// nearest-neighbour / scan strategies.
    pub fn channel_terms(&self) -> Vec<Term> {
        match &self.strategy {
            AggStrategy::DivisibleTree { channels, .. } => channels.clone(),
            AggStrategy::SweepMinMax => match &self.def.spec {
                AggSpec::Simple { outputs } => outputs.iter().map(|o| o.value.clone()).collect(),
                AggSpec::ArgBest { .. } => Vec::new(),
            },
            AggStrategy::KdNearest | AggStrategy::Scan => Vec::new(),
        }
    }

    /// Whether the strategy is answered from an index at all.
    pub fn is_indexed(&self) -> bool {
        self.strategy != AggStrategy::Scan
    }
}

fn term_references_unit(term: &Term) -> bool {
    match term {
        Term::Var(sgl_lang::ast::VarRef::Unit(_)) => true,
        Term::Var(_) | Term::Const(_) => false,
        Term::Random(t) | Term::Neg(t) | Term::Abs(t) | Term::Sqrt(t) | Term::Field(t, _) => {
            term_references_unit(t)
        }
        Term::Bin { left, right, .. } => term_references_unit(left) || term_references_unit(right),
        Term::Tuple(items) => items.iter().any(term_references_unit),
        Term::Agg(call) => call.args.iter().any(term_references_unit),
    }
}

/// Index structures evaluate per-row value terms once at build time with a
/// fixed RNG context, so `Random(...)` inside a value term would diverge
/// from the per-probe naive evaluation — such terms must stay on the scan
/// path.
fn term_contains_random(term: &Term) -> bool {
    match term {
        Term::Random(_) => true,
        Term::Var(_) | Term::Const(_) => false,
        Term::Neg(t) | Term::Abs(t) | Term::Sqrt(t) | Term::Field(t, _) => term_contains_random(t),
        Term::Bin { left, right, .. } => term_contains_random(left) || term_contains_random(right),
        Term::Tuple(items) => items.iter().any(term_contains_random),
        Term::Agg(call) => call.args.iter().any(term_contains_random),
    }
}

/// A value term may be carried as an index channel only when it is stable
/// per row: independent of the probing unit and of the per-tick RNG.
fn indexable_value_term(term: &Term) -> bool {
    !term_references_unit(term) && !term_contains_random(term)
}

fn is_squared_distance(term: &Term, schema: &Schema, spatial: SpatialAttrs) -> bool {
    // Structural check against (e.x - u.x)² + (e.y - u.y)² in either order.
    let x = schema.attr(spatial.x).name.clone();
    let y = schema.attr(spatial.y).name.clone();
    let sq = |attr: &str| {
        let d = Term::bin(sgl_lang::ast::BinOp::Sub, Term::row(attr), Term::unit(attr));
        Term::bin(sgl_lang::ast::BinOp::Mul, d.clone(), d)
    };
    let a = Term::bin(sgl_lang::ast::BinOp::Add, sq(&x), sq(&y));
    let b = Term::bin(sgl_lang::ast::BinOp::Add, sq(&y), sq(&x));
    *term == a || *term == b
}

/// Plan a single aggregate definition.
pub fn plan_aggregate(
    def: &AggregateDef,
    schema: &Schema,
    spatial: Option<SpatialAttrs>,
) -> PlannedAggregate {
    let analysis = analyze_filter(&def.filter, schema, spatial);
    let strategy = choose_strategy(def, &analysis, schema, spatial);
    PlannedAggregate {
        def: def.clone(),
        analysis,
        strategy,
        choice: None,
    }
}

/// The cost-model strategy class of a planned aggregate; `None` for scan
/// strategies (no alternatives to price).
pub fn strategy_class(strategy: &AggStrategy) -> Option<StrategyClass> {
    match strategy {
        AggStrategy::DivisibleTree { .. } => Some(StrategyClass::Divisible),
        AggStrategy::SweepMinMax => Some(StrategyClass::MinMax),
        AggStrategy::KdNearest => Some(StrategyClass::Nearest),
        AggStrategy::Scan => None,
    }
}

/// One re-costing pass of the cost-based planner: price every alternative of
/// every indexable call site from the runtime statistics and install the
/// cheapest as the call site's [`PhysicalChoice`].  Returns how many call
/// sites changed backend or maintenance — the `plan_switches` counter.
///
/// Every alternative returns identical results (the conformance lattice
/// proves it), so this only ever moves *cost*, never observable behaviour.
pub fn choose_physical(
    planned: &mut FxHashMap<String, PlannedAggregate>,
    stats: &RuntimeStats,
    constants: &CostConstants,
    cardinality: usize,
    cascading: bool,
) -> usize {
    let mut switches = 0;
    for (name, plan) in planned.iter_mut() {
        let Some(class) = strategy_class(&plan.strategy) else {
            plan.choice = None;
            continue;
        };
        let inputs = stats.inputs_for(name, cardinality, cascading);
        let alternatives = price_alternatives(class, &inputs, constants);
        let best = best_alternative(&alternatives);
        let changed = plan
            .choice
            .as_ref()
            .map(|c| (c.backend, c.maintenance) != (best.backend, best.maintenance))
            .unwrap_or(true);
        if changed {
            switches += 1;
        }
        plan.choice = Some(PhysicalChoice {
            backend: best.backend,
            maintenance: best.maintenance,
            est_us: best.total_us(),
            alternatives,
        });
    }
    switches
}

/// Whether the materialized-answer class is legal for a strategy class:
/// divisible and MIN/MAX answers are pure functions of the matched multiset
/// (which the delta stream tracks), while nearest/argbest answers embed
/// arbitrary output terms of the winning row that can change without any
/// tracked delta.
pub fn materialization_legal(class: StrategyClass) -> bool {
    matches!(class, StrategyClass::Divisible | StrategyClass::MinMax)
}

/// Install the materialized-answer class on every call site where it is
/// legal, regardless of cost ([`crate::config::PlannerMode::ForceMaterialized`]).
/// Nearest sites and scans keep their heuristic plan (`choice = None`).
/// Returns how many call sites changed choice.
pub fn force_materialized(planned: &mut FxHashMap<String, PlannedAggregate>) -> usize {
    let mut switches = 0;
    for plan in planned.values_mut() {
        let legal = strategy_class(&plan.strategy).is_some_and(materialization_legal);
        if !legal {
            if plan.choice.take().is_some() {
                switches += 1;
            }
            continue;
        }
        let already = plan
            .choice
            .as_ref()
            .is_some_and(|c| c.backend == PhysicalBackend::Materialized);
        if !already {
            switches += 1;
        }
        plan.choice = Some(PhysicalChoice {
            backend: PhysicalBackend::Materialized,
            maintenance: MaintenanceChoice::Incremental,
            est_us: 0.0,
            alternatives: Vec::new(),
        });
    }
    switches
}

fn choose_strategy(
    def: &AggregateDef,
    analysis: &FilterAnalysis,
    schema: &Schema,
    spatial: Option<SpatialAttrs>,
) -> AggStrategy {
    let Some(spatial) = spatial else {
        return AggStrategy::Scan;
    };
    if !analysis.is_exact() || analysis.key_eq.is_some() {
        return AggStrategy::Scan;
    }
    match &def.spec {
        AggSpec::Simple { outputs } => {
            let all_divisible = outputs.iter().all(|o| o.func.is_divisible());
            // A shared index is only possible when the per-row value does not
            // depend on the probing unit (COUNT ignores its value term).
            let values_ok = outputs
                .iter()
                .all(|o| o.func == SimpleAgg::Count || indexable_value_term(&o.value));
            if all_divisible && values_ok {
                // Collect distinct channel terms.
                let mut channels: Vec<Term> = Vec::new();
                let mut output_channels = Vec::with_capacity(outputs.len());
                for o in outputs {
                    if o.func == SimpleAgg::Count {
                        output_channels.push(None);
                        continue;
                    }
                    let pos = channels
                        .iter()
                        .position(|c| *c == o.value)
                        .unwrap_or_else(|| {
                            channels.push(o.value.clone());
                            channels.len() - 1
                        });
                    output_channels.push(Some(pos));
                }
                return AggStrategy::DivisibleTree {
                    channels,
                    output_channels,
                };
            }
            let all_minmax = outputs.iter().all(|o| {
                matches!(o.func, SimpleAgg::Min | SimpleAgg::Max) && indexable_value_term(&o.value)
            });
            if all_minmax && analysis.has_rect() {
                return AggStrategy::SweepMinMax;
            }
            AggStrategy::Scan
        }
        AggSpec::ArgBest {
            minimize,
            rank,
            outputs,
        } => {
            let outputs_ok = outputs
                .iter()
                .all(|(_, t, _)| !term_references_unit(t) && !term_contains_random(t));
            // The nearest-neighbour structures answer the *unbounded*
            // nearest probe; a spatial bound in the filter would need the
            // nearest-inside-a-rectangle query, which they do not answer —
            // fall back to scanning rather than silently ignoring it.
            if *minimize
                && outputs_ok
                && !analysis.has_rect()
                && is_squared_distance(rank, schema, spatial)
            {
                AggStrategy::KdNearest
            } else {
                AggStrategy::Scan
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_env::schema::paper_schema;
    use sgl_env::Value;
    use sgl_lang::ast::{CmpOp, Cond};
    use sgl_lang::builtins::{enemy_filter, paper_registry, rect_range_filter, AggOutput};

    fn spatial(schema: &Schema) -> Option<SpatialAttrs> {
        SpatialAttrs::from_schema(schema)
    }

    #[test]
    fn count_and_centroid_use_the_divisible_tree() {
        let schema = paper_schema();
        let registry = paper_registry();
        let count = plan_aggregate(
            registry.aggregate("CountEnemiesInRange").unwrap(),
            &schema,
            spatial(&schema),
        );
        match count.strategy {
            AggStrategy::DivisibleTree {
                channels,
                output_channels,
            } => {
                assert!(channels.is_empty());
                assert_eq!(output_channels, vec![None]);
            }
            other => panic!("unexpected {other:?}"),
        }
        let centroid = plan_aggregate(
            registry.aggregate("CentroidOfEnemyUnits").unwrap(),
            &schema,
            spatial(&schema),
        );
        match centroid.strategy {
            AggStrategy::DivisibleTree {
                channels,
                output_channels,
            } => {
                assert_eq!(channels.len(), 2);
                assert_eq!(output_channels, vec![Some(0), Some(1)]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nearest_enemy_uses_the_kd_tree() {
        let schema = paper_schema();
        let registry = paper_registry();
        let plan = plan_aggregate(
            registry.aggregate("getNearestEnemy").unwrap(),
            &schema,
            spatial(&schema),
        );
        assert_eq!(plan.strategy, AggStrategy::KdNearest);
    }

    #[test]
    fn min_aggregate_over_a_rect_uses_the_sweep_line() {
        let schema = paper_schema();
        let def = AggregateDef {
            name: "WeakestEnemyHealth".into(),
            params: vec!["u".into(), "range".into()],
            filter: Cond::and(rect_range_filter(Term::name("range")), enemy_filter()),
            spec: AggSpec::Simple {
                outputs: vec![AggOutput {
                    name: "value".into(),
                    func: SimpleAgg::Min,
                    value: Term::row("health"),
                    default: Value::Float(f64::INFINITY),
                }],
            },
        };
        let plan = plan_aggregate(&def, &schema, spatial(&schema));
        assert_eq!(plan.strategy, AggStrategy::SweepMinMax);
    }

    #[test]
    fn residual_filters_fall_back_to_scans() {
        let schema = paper_schema();
        let def = AggregateDef {
            name: "CountWounded".into(),
            params: vec!["u".into()],
            filter: sgl_lang::parse_cond("e.health <= e.damage").unwrap(),
            spec: AggSpec::Simple {
                outputs: vec![AggOutput {
                    name: "value".into(),
                    func: SimpleAgg::Count,
                    value: Term::int(1),
                    default: Value::Int(0),
                }],
            },
        };
        let plan = plan_aggregate(&def, &schema, spatial(&schema));
        assert_eq!(plan.strategy, AggStrategy::Scan);
    }

    #[test]
    fn value_terms_referencing_the_unit_force_scans() {
        let schema = paper_schema();
        let def = AggregateDef {
            name: "SumRelativeHealth".into(),
            params: vec!["u".into(), "range".into()],
            filter: rect_range_filter(Term::name("range")),
            spec: AggSpec::Simple {
                outputs: vec![AggOutput {
                    name: "value".into(),
                    func: SimpleAgg::Sum,
                    value: Term::bin(
                        sgl_lang::ast::BinOp::Sub,
                        Term::row("health"),
                        Term::unit("health"),
                    ),
                    default: Value::Float(0.0),
                }],
            },
        };
        let plan = plan_aggregate(&def, &schema, spatial(&schema));
        assert_eq!(plan.strategy, AggStrategy::Scan);
    }

    #[test]
    fn missing_spatial_attributes_force_scans() {
        let schema = paper_schema();
        let registry = paper_registry();
        let plan = plan_aggregate(
            registry.aggregate("CountEnemiesInRange").unwrap(),
            &schema,
            None,
        );
        assert_eq!(plan.strategy, AggStrategy::Scan);
    }

    #[test]
    fn key_equality_filters_force_scans() {
        let schema = paper_schema();
        let def = AggregateDef {
            name: "TargetHealth".into(),
            params: vec!["u".into(), "target".into()],
            filter: Cond::cmp(CmpOp::Eq, Term::row("key"), Term::name("target")),
            spec: AggSpec::Simple {
                outputs: vec![AggOutput {
                    name: "value".into(),
                    func: SimpleAgg::Sum,
                    value: Term::row("health"),
                    default: Value::Float(0.0),
                }],
            },
        };
        let plan = plan_aggregate(&def, &schema, spatial(&schema));
        assert_eq!(plan.strategy, AggStrategy::Scan);
    }

    #[test]
    fn structure_selection_follows_policy_and_backend() {
        use crate::config::ExecConfig;
        use sgl_index::traits::AggStructureKind;
        let schema = paper_schema();
        let registry = paper_registry();
        let count = plan_aggregate(
            registry.aggregate("CountEnemiesInRange").unwrap(),
            &schema,
            spatial(&schema),
        );
        let nearest = plan_aggregate(
            registry.aggregate("getNearestEnemy").unwrap(),
            &schema,
            spatial(&schema),
        );

        let rebuild = ExecConfig::indexed(&schema);
        assert_eq!(
            count.structure(&rebuild),
            Some(AggStructureKind::LayeredTree { cascading: true })
        );
        let quad = rebuild.with_backend(crate::config::RebuildBackend::QuadTree);
        assert_eq!(
            count.structure(&quad),
            Some(AggStructureKind::QuadTree { bucket: 8 })
        );
        let incremental = rebuild.with_policy(crate::config::MaintenancePolicy::Incremental);
        assert_eq!(
            count.structure(&incremental),
            Some(AggStructureKind::DynamicGrid { cell: 0.0 })
        );
        assert_eq!(nearest.structure(&rebuild), None);
        assert!(count.is_indexed());
        assert!(count.channel_terms().is_empty());

        let centroid = plan_aggregate(
            registry.aggregate("CentroidOfEnemyUnits").unwrap(),
            &schema,
            spatial(&schema),
        );
        assert_eq!(centroid.channel_terms().len(), 2);
    }

    #[test]
    fn random_value_terms_force_scans() {
        let schema = paper_schema();
        let def = AggregateDef {
            name: "SumRandomDamage".into(),
            params: vec!["u".into(), "range".into()],
            filter: rect_range_filter(Term::name("range")),
            spec: AggSpec::Simple {
                outputs: vec![AggOutput {
                    name: "value".into(),
                    func: SimpleAgg::Sum,
                    value: Term::bin(
                        sgl_lang::ast::BinOp::Mul,
                        Term::row("damage"),
                        Term::Random(Box::new(Term::int(1))),
                    ),
                    default: Value::Float(0.0),
                }],
            },
        };
        let plan = plan_aggregate(&def, &schema, spatial(&schema));
        assert_eq!(plan.strategy, AggStrategy::Scan);
    }

    #[test]
    fn range_limited_nearest_forces_scans() {
        let schema = paper_schema();
        let registry = paper_registry();
        let base = registry.aggregate("getNearestEnemy").unwrap();
        let mut def = base.clone();
        def.filter = Cond::and(rect_range_filter(Term::name("range")), def.filter.clone());
        def.params.push("range".into());
        let plan = plan_aggregate(&def, &schema, spatial(&schema));
        assert_eq!(
            plan.strategy,
            AggStrategy::Scan,
            "the kD path answers unbounded nearest only"
        );
        // The unmodified builtin still plans onto the kD-tree.
        assert_eq!(
            plan_aggregate(base, &schema, spatial(&schema)).strategy,
            AggStrategy::KdNearest
        );
    }

    #[test]
    fn choose_physical_installs_and_switches_choices() {
        use crate::stats::RuntimeStats;
        let schema = paper_schema();
        let registry = paper_registry();
        let mut planned = FxHashMap::default();
        for name in registry.aggregate_names() {
            let def = registry.aggregate(name).unwrap();
            planned.insert(
                name.to_string(),
                plan_aggregate(def, &schema, spatial(&schema)),
            );
        }
        let constants = CostConstants::default();
        let stats = RuntimeStats::default();

        // Tiny environment: every indexable call site prices onto the scan
        // path; the first pass counts one switch per priced call site.
        let switches = choose_physical(&mut planned, &stats, &constants, 6, true);
        let priced = planned
            .values()
            .filter(|p| strategy_class(&p.strategy).is_some())
            .count();
        assert!(priced > 0);
        assert_eq!(switches, priced);
        for plan in planned.values() {
            match (&plan.choice, strategy_class(&plan.strategy)) {
                (Some(choice), Some(_)) => {
                    assert_eq!(choice.backend, PhysicalBackend::Scan, "{}", plan.def.name);
                    assert!(!choice.alternatives.is_empty());
                    assert!(choice.est_us.is_finite());
                    // A scan choice routes probes away from the index cache.
                    assert_eq!(plan.structure(&ExecConfig::indexed(&schema)), None);
                }
                (None, None) => {}
                other => panic!("inconsistent choice {other:?}"),
            }
        }

        // Same statistics again: nothing switches.
        assert_eq!(
            choose_physical(&mut planned, &stats, &constants, 6, true),
            0
        );
        // A big environment re-prices every call site off the scan path.
        let switches = choose_physical(&mut planned, &stats, &constants, 5000, true);
        assert_eq!(switches, priced);
        for plan in planned.values() {
            if let Some(choice) = &plan.choice {
                assert_ne!(choice.backend, PhysicalBackend::Scan, "{}", plan.def.name);
            }
        }
    }

    #[test]
    fn choices_override_the_heuristic_structure_mapping() {
        use sgl_algebra::cost::MaintenanceChoice;
        use sgl_index::traits::AggStructureKind;
        let schema = paper_schema();
        let registry = paper_registry();
        let mut count = plan_aggregate(
            registry.aggregate("CountEnemiesInRange").unwrap(),
            &schema,
            spatial(&schema),
        );
        let config = ExecConfig::indexed(&schema);
        let choose = |backend| PhysicalChoice {
            backend,
            maintenance: MaintenanceChoice::PerTick,
            est_us: 1.0,
            alternatives: Vec::new(),
        };
        count.choice = Some(choose(PhysicalBackend::QuadTree));
        assert_eq!(
            count.structure(&config),
            Some(AggStructureKind::QuadTree { bucket: 8 })
        );
        count.choice = Some(choose(PhysicalBackend::MaintainedGrid));
        assert_eq!(
            count.structure(&config),
            Some(AggStructureKind::DynamicGrid { cell: 0.0 })
        );
        count.choice = Some(choose(PhysicalBackend::LayeredTree));
        assert_eq!(
            count.structure(&config),
            Some(AggStructureKind::LayeredTree { cascading: true })
        );
        count.choice = Some(choose(PhysicalBackend::Scan));
        assert_eq!(count.structure(&config), None);
        count.choice = Some(choose(PhysicalBackend::Materialized));
        assert_eq!(
            count.structure(&config),
            Some(AggStructureKind::QuadTree { bucket: 8 }),
            "the materialized miss path recomputes through a quadtree"
        );
    }

    #[test]
    fn force_materialized_targets_legal_sites_only() {
        let schema = paper_schema();
        let registry = paper_registry();
        let mut planned = FxHashMap::default();
        for name in registry.aggregate_names() {
            let def = registry.aggregate(name).unwrap();
            planned.insert(
                name.to_string(),
                plan_aggregate(def, &schema, spatial(&schema)),
            );
        }
        let switches = force_materialized(&mut planned);
        let legal = planned
            .values()
            .filter(|p| strategy_class(&p.strategy).is_some_and(materialization_legal))
            .count();
        assert!(legal > 0);
        assert_eq!(switches, legal);
        for plan in planned.values() {
            match strategy_class(&plan.strategy) {
                Some(class) if materialization_legal(class) => {
                    let choice = plan.choice.as_ref().unwrap();
                    assert_eq!(choice.backend, PhysicalBackend::Materialized);
                    assert_eq!(choice.maintenance, MaintenanceChoice::Incremental);
                }
                _ => assert!(plan.choice.is_none(), "{}", plan.def.name),
            }
        }
        // Idempotent: a second pass switches nothing.
        assert_eq!(force_materialized(&mut planned), 0);
    }

    #[test]
    fn squared_distance_recognition() {
        let schema = paper_schema();
        let s = spatial(&schema).unwrap();
        assert!(is_squared_distance(
            &sgl_lang::builtins::squared_distance(),
            &schema,
            s
        ));
        assert!(!is_squared_distance(&Term::int(1), &schema, s));
    }
}
