//! Runtime statistics for the cost-based planner.
//!
//! Two layers:
//!
//! * [`TickObservations`] — what one tick's execution *observed*, collected
//!   by the executor per shard and merged deterministically.  Every counter
//!   is integral (rectangle areas are quantised) so the merged totals are
//!   identical under any shard count — the planner's decisions never depend
//!   on the parallelism knob.
//! * [`RuntimeStats`] — the cross-tick store the engine keeps alongside the
//!   `IndexManager`: exponentially weighted averages of cardinality, update
//!   rate, per-call-site probe volume and selectivity, plus the spatial
//!   density (from the maintained index's own hints when one is alive,
//!   otherwise from the environment's bounding box).
//!
//! [`RuntimeStats::inputs_for`] turns the store into the [`CallSiteInputs`]
//! the cost model prices, bootstrapping unseen call sites with conservative
//! priors.

use rustc_hash::FxHashMap;

use sgl_algebra::cost::{CallSiteInputs, PhysicalBackend};

/// Number of [`PhysicalBackend`] variants (size of the per-backend counter
/// arrays).
pub const BACKEND_COUNT: usize = PhysicalBackend::ALL.len();

/// Integral per-call-site observations of one tick.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CallObs {
    /// Aggregate evaluations actually performed (memo hits excluded).
    pub probes: u64,
    /// Rows matched, summed over the probes where the executor could count
    /// them (divisible index probes report their accumulator count).
    pub matched: u64,
    /// Number of probes contributing to `matched`.
    pub matched_probes: u64,
    /// Quantised probe-rectangle areas (rounded to integral area units),
    /// summed over the probes with a finite rectangle.
    pub rect_area_q: u64,
    /// Number of probes contributing to `rect_area_q`.
    pub rect_probes: u64,
    /// Largest categorical partition count seen behind this call site.
    pub partitions: u64,
    /// Probes served per physical backend (indexed by
    /// [`PhysicalBackend::index`]) — the *executed* choice surfaced in
    /// `explain` and the perf JSON.
    pub served: [u64; BACKEND_COUNT],
}

impl CallObs {
    fn merge(&mut self, other: &CallObs) {
        self.probes += other.probes;
        self.matched += other.matched;
        self.matched_probes += other.matched_probes;
        self.rect_area_q += other.rect_area_q;
        self.rect_probes += other.rect_probes;
        self.partitions = self.partitions.max(other.partitions);
        for (a, b) in self.served.iter_mut().zip(other.served.iter()) {
            *a += b;
        }
    }
}

/// Observations of one tick, per aggregate call site.
#[derive(Debug, Clone, Default)]
pub struct TickObservations {
    /// Call name → observation counters.
    pub calls: FxHashMap<String, CallObs>,
}

impl TickObservations {
    /// Apply `f` to the site's counters, creating the entry on first sight.
    /// The hot path (entry exists) performs one hash lookup and no
    /// allocation; only the first observation of a name allocates its key.
    fn update(&mut self, name: &str, f: impl FnOnce(&mut CallObs)) {
        if let Some(obs) = self.calls.get_mut(name) {
            f(obs);
        } else {
            let mut obs = CallObs::default();
            f(&mut obs);
            self.calls.insert(name.to_string(), obs);
        }
    }

    /// Record one evaluated probe (called once per memo miss).
    pub fn record_probe(&mut self, name: &str) {
        self.update(name, |e| e.probes += 1);
    }

    /// Record `count` evaluated probes at once (the bytecode VM counts per
    /// call site during a run and flushes here).
    pub fn record_probes(&mut self, name: &str, count: u64) {
        if count > 0 {
            self.update(name, |e| e.probes += count);
        }
    }

    /// Record which backend served a probe.
    pub fn record_served(&mut self, name: &str, backend: PhysicalBackend) {
        self.update(name, |e| e.served[backend.index()] += 1);
    }

    /// Record `count` probes served by one backend at once.
    pub fn record_served_n(&mut self, name: &str, backend: PhysicalBackend, count: u64) {
        if count > 0 {
            self.update(name, |e| e.served[backend.index()] += count);
        }
    }

    /// Record the matched-row count of a probe (divisible probes know it).
    pub fn record_matched(&mut self, name: &str, matched: u64) {
        self.update(name, |e| {
            e.matched += matched;
            e.matched_probes += 1;
        });
    }

    /// Record a probe's finite rectangle area (quantised to area units).
    pub fn record_rect_area(&mut self, name: &str, area: f64) {
        if !area.is_finite() || area < 0.0 {
            return;
        }
        self.update(name, |e| {
            e.rect_area_q = e.rect_area_q.saturating_add(area.round() as u64);
            e.rect_probes += 1;
        });
    }

    /// Record the categorical partition count behind a call site.
    pub fn record_partitions(&mut self, name: &str, partitions: usize) {
        self.update(name, |e| e.partitions = e.partitions.max(partitions as u64));
    }

    /// Record everything one divisible index probe observes — partition
    /// count, serving backend, matched rows and rectangle area — in a single
    /// name lookup.  Equivalent to calling the individual `record_*` methods;
    /// folded together because the probe path runs per aggregate call.
    pub fn record_index_probe(
        &mut self,
        name: &str,
        partitions: usize,
        backend: PhysicalBackend,
        matched: u64,
        rect_area: f64,
    ) {
        self.update(name, |e| {
            e.partitions = e.partitions.max(partitions as u64);
            e.served[backend.index()] += 1;
            e.matched += matched;
            e.matched_probes += 1;
            if rect_area.is_finite() && rect_area >= 0.0 {
                e.rect_area_q = e.rect_area_q.saturating_add(rect_area.round() as u64);
                e.rect_probes += 1;
            }
        });
    }

    /// Record a partition count and a served backend together (nearest and
    /// min/max probes, which have no matched-row count).
    pub fn record_partitioned_serve(
        &mut self,
        name: &str,
        partitions: usize,
        backend: PhysicalBackend,
    ) {
        self.update(name, |e| {
            e.partitions = e.partitions.max(partitions as u64);
            e.served[backend.index()] += 1;
        });
    }

    /// Merge another tick fragment (shards, parallel executors).
    pub fn merge(&mut self, other: &TickObservations) {
        for (name, obs) in &other.calls {
            self.update(name, |e| e.merge(obs));
        }
    }
}

/// Cross-tick statistics of one aggregate call site.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CallSiteStats {
    /// EWMA of evaluated probes per tick.
    pub probes: f64,
    /// Whether `probes` reflects at least one direct observation.  Distinct
    /// from `probes > 0.0`: an idle site decays toward zero without ever
    /// reaching it, and pricing that vanishing-but-positive volume as
    /// "observed" skewed early cost decisions after idle windows.  The decay
    /// loop snaps the flag off below [`PROBE_FLOOR`] so a long-idle site is
    /// priced from priors again, and the next real observation re-seeds the
    /// EWMA at full volume instead of crawling up by halves.
    pub have_probes: bool,
    /// EWMA of observed selectivity (matched rows / cardinality per probe).
    pub selectivity: f64,
    /// Whether `selectivity` has ever been observed directly.
    pub have_selectivity: bool,
    /// EWMA of probe-rectangle area as a fraction of the world area.
    pub area_fraction: f64,
    /// Whether `area_fraction` has ever been observed.
    pub have_area: bool,
    /// Largest partition count observed.
    pub partitions: f64,
    /// Cumulative probes served per backend (runtime ground truth for the
    /// *executed* physical choice).
    pub served_total: [u64; BACKEND_COUNT],
}

impl CallSiteStats {
    /// Served counters as `(label, count)` pairs for backends that actually
    /// served probes, in the stable [`PhysicalBackend::ALL`] order.
    pub fn served_labels(&self) -> Vec<(&'static str, u64)> {
        PhysicalBackend::ALL
            .iter()
            .zip(self.served_total.iter())
            .filter(|(_, n)| **n > 0)
            .map(|(b, n)| (b.label(), *n))
            .collect()
    }
}

/// EWMA smoothing factor: new observations weigh half — fast enough for the
/// small adaptivity windows of the test suite, smooth enough not to flap.
const ALPHA: f64 = 0.5;

/// Probe volume below which an idle call site is considered unobserved
/// again (see [`CallSiteStats::have_probes`]).
const PROBE_FLOOR: f64 = 0.5;

fn ewma(current: f64, sample: f64, seeded: bool) -> f64 {
    if seeded {
        current + ALPHA * (sample - current)
    } else {
        sample
    }
}

/// The persistent statistics store, kept by the engine alongside the
/// `IndexManager` and fed after every tick.
#[derive(Debug, Clone, Default)]
pub struct RuntimeStats {
    /// Ticks observed so far.
    pub ticks: u64,
    /// EWMA of the environment cardinality.
    pub cardinality: f64,
    /// EWMA of the per-tick update rate (fraction of rows whose position or
    /// values changed).
    pub update_rate: f64,
    /// Whether `update_rate` has been observed.
    pub have_update_rate: bool,
    /// Last observed world area (bounding box of positions, or the
    /// maintained index's own coverage hint when one is alive).
    pub world_area: f64,
    /// Per-call-site statistics.
    pub calls: FxHashMap<String, CallSiteStats>,
}

impl RuntimeStats {
    /// Fold one tick's observations into the store.
    ///
    /// `cardinality` is the post-tick row count, `changed_rows` how many
    /// rows the tick's mutation phases touched, `world_area` the current
    /// spatial coverage (`> 0`), and `density_hint` an optional
    /// rows-per-area measurement from a live maintained index (preferred
    /// over the bounding-box estimate when present).
    pub fn observe_tick(
        &mut self,
        cardinality: usize,
        changed_rows: usize,
        world_area: f64,
        density_hint: Option<f64>,
        obs: &TickObservations,
    ) {
        let seeded = self.ticks > 0;
        let n = cardinality as f64;
        self.cardinality = ewma(self.cardinality, n, seeded);
        if n > 0.0 {
            let rate = (changed_rows as f64 / n).clamp(0.0, 1.0);
            self.update_rate = ewma(self.update_rate, rate, self.have_update_rate);
            self.have_update_rate = true;
        }
        self.world_area = match density_hint {
            Some(d) if d > 0.0 => n / d,
            _ if world_area > 0.0 => world_area,
            _ => self.world_area,
        };
        // Call sites absent from this tick's observations were not probed at
        // all (e.g. every unit running their script died): decay their probe
        // volume toward zero so the planner stops paying for structures that
        // serve nothing, instead of pricing them at their historical volume
        // forever.
        // Only ever-observed sites decay (`have_probes`); once the volume
        // falls under the floor the site reverts to unobserved, so it is
        // priced from priors like a fresh site instead of from a
        // vanishing-but-positive EWMA, and the next real observation
        // re-seeds at full volume.
        for (name, site) in self.calls.iter_mut() {
            if !obs.calls.contains_key(name) && site.have_probes {
                site.probes = ewma(site.probes, 0.0, true);
                if site.probes < PROBE_FLOOR {
                    site.probes = 0.0;
                    site.have_probes = false;
                }
            }
        }
        for (name, o) in &obs.calls {
            let site = self.calls.entry(name.clone()).or_default();
            let site_seeded = site.have_probes;
            site.probes = ewma(site.probes, o.probes as f64, site_seeded);
            if o.probes > 0 {
                site.have_probes = true;
            }
            if o.matched_probes > 0 && n > 0.0 {
                let sel = (o.matched as f64 / (o.matched_probes as f64 * n)).clamp(0.0, 1.0);
                site.selectivity = ewma(site.selectivity, sel, site.have_selectivity);
                site.have_selectivity = true;
            }
            if o.rect_probes > 0 && self.world_area > 0.0 {
                let frac = (o.rect_area_q as f64 / (o.rect_probes as f64 * self.world_area))
                    .clamp(0.0, 1.0);
                site.area_fraction = ewma(site.area_fraction, frac, site.have_area);
                site.have_area = true;
            }
            site.partitions = site.partitions.max(o.partitions as f64);
            for (total, served) in site.served_total.iter_mut().zip(o.served.iter()) {
                *total = total.saturating_add(*served);
            }
        }
        self.ticks += 1;
    }

    /// The cost-model inputs for a call site, bootstrapped with priors where
    /// nothing has been observed yet: every unit probes once per tick, a
    /// probe matches 10 % of the world, a third of the rows change per tick.
    pub fn inputs_for(&self, name: &str, cardinality: usize, cascading: bool) -> CallSiteInputs {
        let n = cardinality as f64;
        let site = self.calls.get(name);
        let probes = match site {
            Some(s) if s.have_probes && s.probes > 0.0 => s.probes,
            _ => n,
        };
        let selectivity = match site {
            Some(s) if s.have_selectivity => s.selectivity,
            Some(s) if s.have_area => s.area_fraction,
            _ => 0.1,
        };
        let update_rate = if self.have_update_rate {
            self.update_rate
        } else {
            0.34
        };
        let partitions = site.map(|s| s.partitions).unwrap_or(0.0).max(1.0);
        CallSiteInputs {
            cardinality: n,
            probes,
            selectivity,
            update_rate,
            partitions,
            cascading,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_merge_and_feed_ewmas() {
        let mut a = TickObservations::default();
        a.record_probe("Count");
        a.record_probe("Count");
        a.record_served("Count", PhysicalBackend::MaintainedGrid);
        a.record_matched("Count", 10);
        a.record_rect_area("Count", 25.0);
        a.record_partitions("Count", 2);
        let mut b = TickObservations::default();
        b.record_probe("Count");
        b.record_served("Count", PhysicalBackend::Scan);
        b.record_rect_area("Count", f64::INFINITY); // ignored
        a.merge(&b);
        let obs = a.calls["Count"];
        assert_eq!(obs.probes, 3);
        assert_eq!(obs.matched, 10);
        assert_eq!(obs.matched_probes, 1);
        assert_eq!(obs.rect_probes, 1);
        assert_eq!(obs.partitions, 2);
        assert_eq!(obs.served[PhysicalBackend::Scan.index()], 1);
        assert_eq!(obs.served[PhysicalBackend::MaintainedGrid.index()], 1);

        let mut stats = RuntimeStats::default();
        stats.observe_tick(100, 25, 400.0, None, &a);
        assert_eq!(stats.ticks, 1);
        assert_eq!(stats.cardinality, 100.0);
        assert_eq!(stats.update_rate, 0.25);
        let site = &stats.calls["Count"];
        assert_eq!(site.probes, 3.0);
        assert!(site.have_selectivity);
        assert!((site.selectivity - 0.1).abs() < 1e-12);
        assert_eq!(site.served_labels(), vec![("scan", 1), ("grid", 1)]);

        // Second tick with different values moves the EWMAs halfway.
        let mut c = TickObservations::default();
        c.record_probe("Count");
        stats.observe_tick(100, 75, 400.0, None, &c);
        assert!((stats.update_rate - 0.5).abs() < 1e-12);
        assert!((stats.calls["Count"].probes - 2.0).abs() < 1e-12);

        // A tick with no observations for the site decays its probe volume
        // toward zero (the site stopped being probed).
        stats.observe_tick(100, 0, 400.0, None, &TickObservations::default());
        assert!((stats.calls["Count"].probes - 1.0).abs() < 1e-12);
    }

    #[test]
    fn idle_windows_unseed_and_reseed_probe_volume() {
        let mut stats = RuntimeStats::default();
        let mut active = TickObservations::default();
        active.record_probes("Count", 100);
        stats.observe_tick(100, 10, 400.0, None, &active);
        assert!(stats.calls["Count"].have_probes);
        assert_eq!(stats.calls["Count"].probes, 100.0);

        // A long idle window decays the volume; once it crosses the floor
        // the site reverts to unobserved and is priced from priors again —
        // not from a vanishing-but-positive EWMA.
        let idle = TickObservations::default();
        for _ in 0..16 {
            stats.observe_tick(100, 0, 400.0, None, &idle);
        }
        let site = &stats.calls["Count"];
        assert!(!site.have_probes);
        assert_eq!(site.probes, 0.0);
        assert_eq!(stats.inputs_for("Count", 100, true).probes, 100.0);

        // Reactivation re-seeds at the full observed volume instead of
        // crawling up from the decayed remnant by halves.
        stats.observe_tick(100, 10, 400.0, None, &active);
        assert_eq!(stats.calls["Count"].probes, 100.0);
        assert!(stats.calls["Count"].have_probes);
    }

    #[test]
    fn unseen_call_sites_get_priors() {
        let stats = RuntimeStats::default();
        let inputs = stats.inputs_for("Never", 50, true);
        assert_eq!(inputs.cardinality, 50.0);
        assert_eq!(inputs.probes, 50.0);
        assert!((inputs.selectivity - 0.1).abs() < 1e-12);
        assert!((inputs.update_rate - 0.34).abs() < 1e-12);
        assert_eq!(inputs.partitions, 1.0);
    }

    #[test]
    fn density_hint_overrides_bounding_box_area() {
        let mut stats = RuntimeStats::default();
        let obs = TickObservations::default();
        stats.observe_tick(100, 0, 1000.0, Some(0.5), &obs);
        assert!((stats.world_area - 200.0).abs() < 1e-9);
        stats.observe_tick(100, 0, 1000.0, None, &obs);
        assert!((stats.world_area - 1000.0).abs() < 1e-9);
    }
}
