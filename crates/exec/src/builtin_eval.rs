//! Naive (scan-based) evaluation of built-in aggregates and parameter binding.
//!
//! This is the reference semantics: the indexed strategies of
//! [`crate::indexes`] must return the same values, which the equivalence
//! tests check.  It is also the code path of the naive executor used as the
//! experimental baseline (§6: "straightforward O(n) algorithms").

use rustc_hash::FxHashMap;

use sgl_env::{EnvTable, Value};
use sgl_lang::ast::{AggCall, Term};
use sgl_lang::builtins::{AggSpec, AggregateDef, SimpleAgg};
use sgl_lang::eval::{eval_cond, eval_term, EvalContext, NoAggregates, ScriptValue};

use crate::error::{ExecError, Result};

/// Bind the arguments of a call to the parameters of a built-in definition.
///
/// By convention the first argument is the acting unit `u` itself and is not
/// bound (the definition reads it through `u.*`); the remaining arguments are
/// flattened (record values expand to their components) and zipped with the
/// remaining parameters.
pub fn bind_params(
    def_name: &str,
    params: &[String],
    args: &[ScriptValue],
) -> Result<FxHashMap<String, ScriptValue>> {
    let mut flat: Vec<Value> = Vec::new();
    for arg in args.iter().skip(1) {
        flat.extend(arg.components());
    }
    let expected = params.len().saturating_sub(1);
    if flat.len() != expected {
        return Err(ExecError::Lang(sgl_lang::LangError::Semantic(format!(
            "builtin `{def_name}` expects {expected} scalar arguments after the unit, got {}",
            flat.len()
        ))));
    }
    let mut out = FxHashMap::default();
    for (param, value) in params.iter().skip(1).zip(flat) {
        out.insert(param.clone(), ScriptValue::Scalar(value));
    }
    Ok(out)
}

/// Evaluate the argument terms of an aggregate/action call in the unit's
/// context (arguments never contain aggregates after normalisation).
pub fn eval_call_args(call_args: &[Term], ctx: &EvalContext<'_>) -> Result<Vec<ScriptValue>> {
    let mut no_aggs = NoAggregates;
    call_args
        .iter()
        .map(|a| {
            // The conventional first argument `u` resolves to nothing — treat
            // the bare unit-parameter name as a unit marker.
            eval_term(a, ctx, &mut no_aggs).or_else(|e| match a {
                Term::Var(sgl_lang::ast::VarRef::Name(n)) if n == "u" || n == "self" => {
                    Ok(ScriptValue::Scalar(Value::Int(ctx.unit_key)))
                }
                _ => Err(e),
            })
        })
        .collect::<std::result::Result<Vec<_>, _>>()
        .map_err(ExecError::from)
}

/// Per-output accumulator for the scan-based aggregate evaluation.
#[derive(Debug, Clone)]
struct OutputAcc {
    count: f64,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
}

impl OutputAcc {
    fn new() -> OutputAcc {
        OutputAcc {
            count: 0.0,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn push(&mut self, v: f64) {
        self.count += 1.0;
        self.sum += v;
        self.sum_sq += v * v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    fn finish(&self, func: SimpleAgg, default: &Value) -> Value {
        if self.count == 0.0 {
            return default.clone();
        }
        match func {
            SimpleAgg::Count => Value::Int(self.count as i64),
            SimpleAgg::Sum => Value::Float(self.sum),
            SimpleAgg::Avg => Value::Float(self.sum / self.count),
            SimpleAgg::Min => Value::Float(self.min),
            SimpleAgg::Max => Value::Float(self.max),
            SimpleAgg::StdDev => {
                let mean = self.sum / self.count;
                Value::Float((self.sum_sq / self.count - mean * mean).max(0.0).sqrt())
            }
        }
    }
}

/// Evaluate a built-in aggregate for one unit by scanning the environment.
pub fn eval_aggregate_scan(
    def: &AggregateDef,
    param_bindings: &FxHashMap<String, ScriptValue>,
    unit_ctx: &EvalContext<'_>,
    table: &EnvTable,
) -> Result<ScriptValue> {
    let mut no_aggs = NoAggregates;
    // Context carrying the bound parameters.
    let mut base = EvalContext {
        schema: unit_ctx.schema,
        unit: unit_ctx.unit,
        unit_key: unit_ctx.unit_key,
        row: None,
        rng: unit_ctx.rng,
        constants: unit_ctx.constants,
        bindings: unit_ctx.bindings.clone(),
    };
    for (k, v) in param_bindings {
        base.bindings.insert(k.clone(), v.clone());
    }

    match &def.spec {
        AggSpec::Simple { outputs } => {
            let mut accs: Vec<OutputAcc> = outputs.iter().map(|_| OutputAcc::new()).collect();
            for (_, row) in table.iter() {
                let row_ctx = base.with_row(row);
                if !eval_cond(&def.filter, &row_ctx, &mut no_aggs)? {
                    continue;
                }
                for (o, acc) in outputs.iter().zip(accs.iter_mut()) {
                    if o.func == SimpleAgg::Count {
                        acc.push(1.0);
                    } else {
                        let v = eval_term(&o.value, &row_ctx, &mut no_aggs)?
                            .as_scalar()?
                            .as_f64()?;
                        acc.push(v);
                    }
                }
            }
            let fields = outputs
                .iter()
                .zip(accs.iter())
                .map(|(o, acc)| (o.name.clone(), acc.finish(o.func, &o.default)))
                .collect();
            Ok(ScriptValue::Record(fields))
        }
        AggSpec::ArgBest {
            minimize,
            rank,
            outputs,
        } => {
            // Reference tie-break: among rows with an equal rank the row
            // with the **smallest key** wins.  The indexed strategies
            // (kD-trees, maintained grids) reproduce exactly this rule, so
            // argmin over duplicated positions is deterministic across every
            // executor configuration.
            let mut best: Option<(f64, i64, usize)> = None;
            let schema = unit_ctx.schema;
            for (idx, row) in table.iter() {
                let row_ctx = base.with_row(row);
                if !eval_cond(&def.filter, &row_ctx, &mut no_aggs)? {
                    continue;
                }
                let r = eval_term(rank, &row_ctx, &mut no_aggs)?
                    .as_scalar()?
                    .as_f64()?;
                let key = row.key(schema);
                let better = match best {
                    None => true,
                    Some((b, bkey, _)) => {
                        let strictly = if *minimize { r < b } else { r > b };
                        strictly || (r == b && key < bkey)
                    }
                };
                if better {
                    best = Some((r, key, idx));
                }
            }
            let fields = match best {
                Some((_, _, idx)) => {
                    let row_ctx = base.with_row(table.row(idx));
                    outputs
                        .iter()
                        .map(|(name, term, _)| {
                            Ok((
                                name.clone(),
                                eval_term(term, &row_ctx, &mut no_aggs)?
                                    .as_scalar()?
                                    .clone(),
                            ))
                        })
                        .collect::<std::result::Result<Vec<_>, sgl_lang::LangError>>()?
                }
                None => outputs
                    .iter()
                    .map(|(name, _, default)| (name.clone(), default.clone()))
                    .collect(),
            };
            Ok(ScriptValue::Record(fields))
        }
    }
}

/// Evaluate an aggregate call (binding arguments first) by scanning.
pub fn eval_call_scan(
    def: &AggregateDef,
    call: &AggCall,
    unit_ctx: &EvalContext<'_>,
    table: &EnvTable,
) -> Result<ScriptValue> {
    let args = eval_call_args(&call.args, unit_ctx)?;
    let bindings = bind_params(&def.name, &def.params, &args)?;
    eval_aggregate_scan(def, &bindings, unit_ctx, table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_env::{schema::paper_schema, GameRng, Schema, TupleBuilder};
    use sgl_lang::builtins::paper_registry;
    use sgl_lang::parse_term;
    use std::sync::Arc;

    fn battle_table() -> (Arc<Schema>, EnvTable) {
        let schema = paper_schema().into_shared();
        let mut table = EnvTable::new(Arc::clone(&schema));
        // Player 0 units at (0,0), (2,2); player 1 units at (3,3), (10,10).
        let units = [
            (1i64, 0i64, 0.0, 0.0, 20i64),
            (2, 0, 2.0, 2.0, 15),
            (3, 1, 3.0, 3.0, 10),
            (4, 1, 10.0, 10.0, 5),
        ];
        for (key, player, x, y, hp) in units {
            let t = TupleBuilder::new(&schema)
                .set("key", key)
                .unwrap()
                .set("player", player)
                .unwrap()
                .set("posx", x)
                .unwrap()
                .set("posy", y)
                .unwrap()
                .set("health", hp)
                .unwrap()
                .build();
            table.insert(t).unwrap();
        }
        (schema, table)
    }

    #[test]
    fn count_enemies_in_range_matches_hand_count() {
        let (schema, table) = battle_table();
        let registry = paper_registry();
        let rng = GameRng::new(1).for_tick(0);
        let constants = registry.constants().clone();
        // Unit 1 (player 0) at (0,0) with range 5: enemies in range = unit 3 only.
        let unit = table.row(0);
        let ctx = EvalContext::new(&schema, unit, &rng, &constants);
        let def = registry.aggregate("CountEnemiesInRange").unwrap();
        let call = AggCall {
            name: def.name.clone(),
            args: vec![Term::name("u"), parse_term("5").unwrap()],
        };
        let result = eval_call_scan(def, &call, &ctx, &table).unwrap();
        assert_eq!(result.as_scalar().unwrap(), &Value::Int(1));
        // With range 12 both enemies are visible.
        let call = AggCall {
            name: def.name.clone(),
            args: vec![Term::name("u"), parse_term("12").unwrap()],
        };
        let result = eval_call_scan(def, &call, &ctx, &table).unwrap();
        assert_eq!(result.as_scalar().unwrap(), &Value::Int(2));
    }

    #[test]
    fn centroid_of_enemies() {
        let (schema, table) = battle_table();
        let registry = paper_registry();
        let rng = GameRng::new(1).for_tick(0);
        let constants = registry.constants().clone();
        let unit = table.row(0);
        let ctx = EvalContext::new(&schema, unit, &rng, &constants);
        let def = registry.aggregate("CentroidOfEnemyUnits").unwrap();
        let call = AggCall {
            name: def.name.clone(),
            args: vec![Term::name("u"), parse_term("20").unwrap()],
        };
        let result = eval_call_scan(def, &call, &ctx, &table).unwrap();
        assert_eq!(result.field("x").unwrap(), &Value::Float(6.5));
        assert_eq!(result.field("y").unwrap(), &Value::Float(6.5));
    }

    #[test]
    fn empty_aggregates_return_defaults() {
        let (schema, table) = battle_table();
        let registry = paper_registry();
        let rng = GameRng::new(1).for_tick(0);
        let constants = registry.constants().clone();
        let unit = table.row(0);
        let ctx = EvalContext::new(&schema, unit, &rng, &constants);
        let def = registry.aggregate("CountEnemiesInRange").unwrap();
        let call = AggCall {
            name: def.name.clone(),
            args: vec![Term::name("u"), parse_term("0.5").unwrap()],
        };
        let result = eval_call_scan(def, &call, &ctx, &table).unwrap();
        assert_eq!(result.as_scalar().unwrap(), &Value::Int(0));
    }

    #[test]
    fn nearest_enemy_is_the_closest_by_euclidean_distance() {
        let (schema, table) = battle_table();
        let registry = paper_registry();
        let rng = GameRng::new(1).for_tick(0);
        let constants = registry.constants().clone();
        let unit = table.row(0); // (0, 0), player 0
        let ctx = EvalContext::new(&schema, unit, &rng, &constants);
        let def = registry.aggregate("getNearestEnemy").unwrap();
        let call = AggCall {
            name: def.name.clone(),
            args: vec![Term::name("u")],
        };
        let result = eval_call_scan(def, &call, &ctx, &table).unwrap();
        assert_eq!(result.field("key").unwrap(), &Value::Int(3));
        assert_eq!(result.field("posx").unwrap(), &Value::Float(3.0));
    }

    /// Regression (conformance seed 3): two candidate rows at the same
    /// position tie on squared distance; the scan must pick the smallest
    /// key, the rule every indexed strategy reproduces.
    #[test]
    fn argbest_rank_ties_resolve_to_the_smallest_key() {
        let schema = paper_schema().into_shared();
        let mut table = EnvTable::new(Arc::clone(&schema));
        // Keys inserted out of order; rows 9 and 4 share one position.
        for (key, player, x) in [(9i64, 1i64, 5.0), (4, 1, 5.0), (7, 0, 0.0)] {
            let t = TupleBuilder::new(&schema)
                .set("key", key)
                .unwrap()
                .set("player", player)
                .unwrap()
                .set("posx", x)
                .unwrap()
                .set("posy", 0.0)
                .unwrap()
                .set("health", 10i64)
                .unwrap()
                .build();
            table.insert(t).unwrap();
        }
        let registry = paper_registry();
        let rng = GameRng::new(1).for_tick(0);
        let constants = registry.constants().clone();
        let unit = table.row(2); // key 7, player 0 at the origin
        let ctx = EvalContext::new(&schema, unit, &rng, &constants);
        let def = registry.aggregate("getNearestEnemy").unwrap();
        let call = AggCall {
            name: def.name.clone(),
            args: vec![Term::name("u")],
        };
        let result = eval_call_scan(def, &call, &ctx, &table).unwrap();
        assert_eq!(result.field("key").unwrap(), &Value::Int(4));
    }

    #[test]
    fn param_binding_flattens_records_and_checks_arity() {
        let bindings = bind_params(
            "MoveInDirection",
            &["u".into(), "x".into(), "y".into()],
            &[
                ScriptValue::scalar(1i64),
                ScriptValue::record(vec![
                    ("x".into(), Value::Float(3.0)),
                    ("y".into(), Value::Float(4.0)),
                ]),
            ],
        )
        .unwrap();
        assert_eq!(bindings["x"], ScriptValue::Scalar(Value::Float(3.0)));
        assert_eq!(bindings["y"], ScriptValue::Scalar(Value::Float(4.0)));

        let err = bind_params(
            "FireAt",
            &["u".into(), "target".into()],
            &[ScriptValue::scalar(1i64)],
        );
        assert!(err.is_err());
    }

    #[test]
    fn call_args_resolve_the_bare_unit_name() {
        let (schema, table) = battle_table();
        let registry = paper_registry();
        let rng = GameRng::new(1).for_tick(0);
        let constants = registry.constants().clone();
        let unit = table.row(1);
        let ctx = EvalContext::new(&schema, unit, &rng, &constants);
        let args = eval_call_args(&[Term::name("u"), Term::unit("posx")], &ctx).unwrap();
        assert_eq!(args[0], ScriptValue::Scalar(Value::Int(2)));
        assert_eq!(args[1], ScriptValue::Scalar(Value::Float(2.0)));
        assert!(eval_call_args(&[Term::name("missing")], &ctx).is_err());
    }
}
