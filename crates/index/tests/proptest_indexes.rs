//! Property-based cross-validation of the index structures.
//!
//! Every index in `sgl-index` answers some class of aggregate query that the
//! naive executor answers by scanning; these properties assert that on
//! arbitrary inputs (positions, values, query rectangles) every index agrees
//! exactly with the scan.  This is the invariant that makes the paper's
//! indexed executor a pure optimization: same answers, different cost.

use proptest::prelude::*;

use sgl_index::agg_tree::{AggEntry, LayeredAggTree};
use sgl_index::dynamic_agg::DynamicAggIndex;
use sgl_index::grid::UniformGrid;
use sgl_index::kdtree::KdTree;
use sgl_index::mra_tree::{MraAgg, MraTree};
use sgl_index::quadtree::AggQuadTree;
use sgl_index::range_tree::RangeTree2D;
use sgl_index::{Point2, Rect};

const WORLD: f64 = 256.0;

/// A unit for property tests: position plus one value channel.
#[derive(Debug, Clone)]
struct Row {
    x: f64,
    y: f64,
    value: f64,
}

fn row_strategy() -> impl Strategy<Value = Row> {
    // Coordinates snap to a quarter-unit lattice so that boundary cases
    // (points exactly on a query edge) are generated often.
    (0u32..1024, 0u32..1024, -50i32..50)
        .prop_map(|(x, y, v)| Row { x: x as f64 * 0.25, y: y as f64 * 0.25, value: v as f64 })
}

fn rows_strategy(max: usize) -> impl Strategy<Value = Vec<Row>> {
    prop::collection::vec(row_strategy(), 0..max)
}

fn rect_strategy() -> impl Strategy<Value = Rect> {
    (0u32..1024, 0u32..1024, 0u32..600, 0u32..600).prop_map(|(x, y, w, h)| {
        let x = x as f64 * 0.25;
        let y = y as f64 * 0.25;
        Rect::new(x, x + w as f64 * 0.25, y, y + h as f64 * 0.25)
    })
}

fn points(rows: &[Row]) -> Vec<Point2> {
    rows.iter().map(|r| Point2::new(r.x, r.y)).collect()
}

fn brute_ids(rows: &[Row], rect: &Rect) -> Vec<u32> {
    rows.iter()
        .enumerate()
        .filter(|(_, r)| rect.contains(&Point2::new(r.x, r.y)))
        .map(|(i, _)| i as u32)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The divisible-aggregate layered range tree (Figure 8) answers count and
    /// sum exactly, with and without fractional cascading.
    #[test]
    fn agg_tree_matches_scan(rows in rows_strategy(200), rect in rect_strategy()) {
        let entries: Vec<AggEntry> = rows
            .iter()
            .map(|r| AggEntry::new(Point2::new(r.x, r.y), vec![r.value]))
            .collect();
        let matching = brute_ids(&rows, &rect);
        let expected_count = matching.len() as f64;
        let expected_sum: f64 = matching.iter().map(|&i| rows[i as usize].value).sum();

        for cascading in [false, true] {
            let tree = LayeredAggTree::build(&entries, 1, cascading);
            let acc = tree.query(&rect);
            prop_assert_eq!(acc.count(), expected_count);
            prop_assert!((acc.channel_sum(0) - expected_sum).abs() < 1e-6);
            prop_assert_eq!(tree.count(&rect), matching.len());
        }
    }

    /// The quadtree agrees with the scan for divisible aggregates, MIN/MAX and
    /// enumeration.
    #[test]
    fn quadtree_matches_scan(rows in rows_strategy(200), rect in rect_strategy()) {
        let entries: Vec<AggEntry> = rows
            .iter()
            .map(|r| AggEntry::new(Point2::new(r.x, r.y), vec![r.value]))
            .collect();
        let tree = AggQuadTree::build(&entries, 1, 6);
        let matching = brute_ids(&rows, &rect);

        let acc = tree.query(&rect);
        prop_assert_eq!(acc.count() as usize, matching.len());
        let expected_sum: f64 = matching.iter().map(|&i| rows[i as usize].value).sum();
        prop_assert!((acc.channel_sum(0) - expected_sum).abs() < 1e-6);

        prop_assert_eq!(tree.query_points(&rect), matching.clone());

        let expected_min = matching.iter().map(|&i| rows[i as usize].value).fold(f64::INFINITY, f64::min);
        let expected_max = matching.iter().map(|&i| rows[i as usize].value).fold(f64::NEG_INFINITY, f64::max);
        match tree.min_in_rect(&rect, 0) {
            Some(m) => prop_assert_eq!(m.value, expected_min),
            None => prop_assert!(matching.is_empty()),
        }
        match tree.max_in_rect(&rect, 0) {
            Some(m) => prop_assert_eq!(m.value, expected_max),
            None => prop_assert!(matching.is_empty()),
        }
    }

    /// The enumeration range tree and the uniform grid agree with the scan.
    #[test]
    fn range_tree_and_grid_match_scan(rows in rows_strategy(150), rect in rect_strategy()) {
        let pts = points(&rows);
        let expected = brute_ids(&rows, &rect);

        let tree = RangeTree2D::build(&pts);
        let mut from_tree = tree.query(&rect);
        from_tree.sort_unstable();
        prop_assert_eq!(&from_tree, &expected);
        prop_assert_eq!(tree.count(&rect), expected.len());

        let grid = UniformGrid::build(&pts, Point2::new(0.0, 0.0), Point2::new(WORLD, WORLD), 8.0);
        let mut from_grid = grid.query(&rect);
        from_grid.sort_unstable();
        prop_assert_eq!(&from_grid, &expected);
    }

    /// The MRA tree's exact mode agrees with the scan for all four aggregate
    /// kinds, and its budgeted bounds always bracket the exact answer.
    #[test]
    fn mra_tree_bounds_are_sound(rows in rows_strategy(150), rect in rect_strategy(), budget in 1usize..64) {
        let pts = points(&rows);
        let values: Vec<f64> = rows.iter().map(|r| r.value).collect();
        let tree = MraTree::build(&pts, &values, 6);
        let matching = brute_ids(&rows, &rect);
        let exact_count = matching.len() as f64;
        let exact_sum: f64 = matching.iter().map(|&i| values[i as usize]).sum();
        let exact_min = matching.iter().map(|&i| values[i as usize]).reduce(f64::min);
        let exact_max = matching.iter().map(|&i| values[i as usize]).reduce(f64::max);

        prop_assert_eq!(tree.query_exact(&rect, MraAgg::Count), Some(exact_count));
        let sum = tree.query_exact(&rect, MraAgg::Sum).unwrap();
        prop_assert!((sum - exact_sum).abs() < 1e-6);
        prop_assert_eq!(tree.query_exact(&rect, MraAgg::Min), exact_min);
        prop_assert_eq!(tree.query_exact(&rect, MraAgg::Max), exact_max);

        for agg in [MraAgg::Count, MraAgg::Min, MraAgg::Max] {
            let bounds = tree.query_with_budget(&rect, agg, budget);
            let exact = match agg {
                MraAgg::Count => Some(exact_count),
                MraAgg::Min => exact_min,
                MraAgg::Max => exact_max,
                MraAgg::Sum => unreachable!(),
            };
            if let Some(x) = exact {
                prop_assert!(bounds.lower <= x + 1e-9);
                prop_assert!(x <= bounds.upper + 1e-9);
            }
        }
    }

    /// The kD-tree nearest neighbour matches the scan (distance ties allowed).
    #[test]
    fn kdtree_nearest_matches_scan(rows in rows_strategy(120), qx in 0.0f64..WORLD, qy in 0.0f64..WORLD) {
        let pts = points(&rows);
        let tree = KdTree::build(&pts);
        let query = Point2::new(qx, qy);
        let expected = pts
            .iter()
            .map(|p| query.dist2(p))
            .fold(f64::INFINITY, f64::min);
        match tree.nearest(&query) {
            Some((id, d2)) => {
                prop_assert!((d2 - expected).abs() < 1e-9);
                prop_assert!((query.dist2(&pts[id as usize]) - expected).abs() < 1e-9);
            }
            None => prop_assert!(pts.is_empty()),
        }
    }

    /// The dynamic aggregate treap agrees with a scan after an arbitrary
    /// sequence of inserts, removals and coordinate updates.
    #[test]
    fn dynamic_index_matches_scan(
        rows in rows_strategy(120),
        removals in prop::collection::vec(0usize..120, 0..40),
        moves in prop::collection::vec((0usize..120, 0u32..1024), 0..40),
        lo in 0.0f64..WORLD,
        width in 0.0f64..WORLD,
    ) {
        let mut live: Vec<Option<(f64, f64)>> = rows.iter().map(|r| Some((r.x, r.value))).collect();
        let mut index = DynamicAggIndex::new();
        for (id, r) in rows.iter().enumerate() {
            index.insert(id as u64, r.x, r.value);
        }
        for &victim in &removals {
            if victim < live.len() {
                if let Some((coord, _)) = live[victim] {
                    prop_assert!(index.remove(victim as u64, coord));
                    live[victim] = None;
                }
            }
        }
        for &(mover, new_x) in &moves {
            if mover < live.len() {
                if let Some((coord, value)) = live[mover] {
                    let new_coord = new_x as f64 * 0.25;
                    prop_assert!(index.update_coord(mover as u64, coord, new_coord, value));
                    live[mover] = Some((new_coord, value));
                }
            }
        }
        prop_assert!(index.check_invariants());

        let hi = lo + width;
        let summary = index.query(lo, hi);
        let expected: Vec<f64> = live
            .iter()
            .flatten()
            .filter(|(c, _)| *c >= lo && *c <= hi)
            .map(|(_, v)| *v)
            .collect();
        prop_assert_eq!(summary.count, expected.len());
        let expected_sum: f64 = expected.iter().sum();
        prop_assert!((summary.sum - expected_sum).abs() < 1e-6);
        if !expected.is_empty() {
            prop_assert_eq!(summary.min, expected.iter().cloned().fold(f64::INFINITY, f64::min));
            prop_assert_eq!(summary.max, expected.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
        }
    }
}
