//! Regression tests: NaN coordinates must never panic an index build
//! (`sort_by` aborts on non-total orderings) and must never hide *finite*
//! points from queries.  Before the `f64::total_cmp` fix the comparators
//! fell back to `Ordering::Equal` for NaN, which is not transitive — the
//! structures built without complaint but their invariants did not hold.

use sgl_index::agg_tree::{AggEntry, LayeredAggTree};
use sgl_index::dynamic_agg::DynamicAggIndex;
use sgl_index::grid::DynamicAggGrid;
use sgl_index::kdtree::KdTree;
use sgl_index::range_tree::RangeTree2D;
use sgl_index::sweepline::{sweep_min_max, SweepKind};
use sgl_index::traits::{AggIndex, IndexRow, SpatialIndex};
use sgl_index::{Point2, Rect};

/// A deterministic mix of finite points with NaN contamination sprinkled in:
/// every third point has a NaN x, y or both, alternating the NaN sign —
/// `f64::total_cmp` sorts negative NaN *before* `-inf`, so sign-bit-set NaNs
/// (which x86 `0.0/0.0` produces) exercise a different failure mode than
/// `f64::NAN`.
fn contaminated_points(n: usize) -> (Vec<Point2>, Vec<usize>) {
    let mut points = Vec::with_capacity(n);
    let mut finite = Vec::new();
    for i in 0..n {
        let x = (i as f64 * 7.3) % 50.0;
        let y = (i as f64 * 11.9) % 50.0;
        let nan = if (i / 6) % 2 == 0 {
            f64::NAN
        } else {
            -f64::NAN
        };
        let p = match i % 6 {
            1 => Point2::new(nan, y),
            3 => Point2::new(x, nan),
            5 => Point2::new(nan, -nan),
            _ => {
                finite.push(i);
                Point2::new(x, y)
            }
        };
        points.push(p);
    }
    (points, finite)
}

#[test]
fn kdtree_with_nan_points_finds_every_finite_point() {
    let (points, finite) = contaminated_points(60);
    let tree = KdTree::build(&points);
    // Range queries still see every finite point...
    for &i in &finite {
        let q = points[i];
        let hits = tree.within_radius(&q, 0.5);
        assert!(hits.contains(&(i as u32)), "finite point {i} hidden");
    }
    // ...and nearest never returns a NaN-coordinate point.
    for &i in &finite {
        let (id, d2) = tree.nearest(&points[i]).expect("finite data exists");
        assert!(d2.is_finite(), "nearest returned NaN distance");
        assert!(
            points[id as usize].x.is_finite() && points[id as usize].y.is_finite(),
            "nearest returned a NaN point"
        );
        assert_eq!(d2, 0.0, "query point itself is in the tree");
    }
}

#[test]
fn kdtree_of_only_nan_points_returns_nothing() {
    let points = vec![Point2::new(f64::NAN, f64::NAN); 8];
    let tree = KdTree::build(&points);
    assert_eq!(tree.nearest(&Point2::new(1.0, 2.0)), None);
    assert!(tree.within_radius(&Point2::new(1.0, 2.0), 10.0).is_empty());
}

#[test]
fn range_tree_with_nan_points_enumerates_exactly_the_finite_matches() {
    let (points, finite) = contaminated_points(72);
    let tree = RangeTree2D::build(&points);
    let rect = Rect::new(5.0, 35.0, 5.0, 35.0);
    let mut fast = tree.query(&rect);
    fast.sort_unstable();
    let mut slow: Vec<u32> = finite
        .iter()
        .filter(|&&i| {
            let p = points[i];
            rect.x_min <= p.x && p.x <= rect.x_max && rect.y_min <= p.y && p.y <= rect.y_max
        })
        .map(|&i| i as u32)
        .collect();
    slow.sort_unstable();
    assert_eq!(fast, slow);
}

#[test]
fn layered_tree_with_nan_entries_aggregates_only_finite_rows() {
    let (points, finite) = contaminated_points(48);
    let entries: Vec<AggEntry> = points
        .iter()
        .map(|p| AggEntry::new(*p, vec![1.5]))
        .collect();
    for cascading in [false, true] {
        let tree = LayeredAggTree::build(&entries, 1, cascading);
        let rect = Rect::new(0.0, 50.0, 0.0, 50.0);
        let acc = tree.query(&rect);
        // NaN-coordinate entries fall outside every finite rectangle; they
        // must not be counted (and must not poison the channel sums).
        assert_eq!(acc.count() as usize, finite.len(), "cascading={cascading}");
        assert!((acc.channel_sum(0) - 1.5 * finite.len() as f64).abs() < 1e-9);
    }
}

#[test]
fn sweepline_with_nan_data_and_queries_matches_the_naive_filter() {
    let (points, _) = contaminated_points(54);
    let values: Vec<f64> = (0..points.len()).map(|i| (i % 13) as f64).collect();
    let (rx, ry) = (6.0, 6.0);
    for kind in [SweepKind::Min, SweepKind::Max] {
        let fast = sweep_min_max(&points, &values, &points, rx, ry, kind);
        for (qi, q) in points.iter().enumerate() {
            // The reference semantics: |dx| <= rx && |dy| <= ry, which is
            // false whenever a NaN is involved — NaN data never matches and
            // NaN queries match nothing.
            let mut best: Option<f64> = None;
            for (p, v) in points.iter().zip(&values) {
                if (p.x - q.x).abs() <= rx && (p.y - q.y).abs() <= ry {
                    best = Some(match (best, kind) {
                        (None, _) => *v,
                        (Some(b), SweepKind::Min) => b.min(*v),
                        (Some(b), SweepKind::Max) => b.max(*v),
                    });
                }
            }
            assert_eq!(fast[qi].map(|r| r.0), best, "{kind:?} query {qi}");
        }
    }
}

#[test]
fn dynamic_treap_keeps_invariants_under_nan_coordinates() {
    let mut index = DynamicAggIndex::new();
    for i in 0..40u64 {
        let coord = if i % 5 == 2 {
            // Alternate NaN signs: negative NaN sorts differently under
            // total_cmp and must still be excluded from range queries.
            if i % 10 == 2 {
                f64::NAN
            } else {
                -f64::NAN
            }
        } else {
            (i as f64 * 3.7) % 25.0
        };
        index.insert(i, coord, 1.0);
    }
    assert!(index.check_invariants(), "NaN keys broke the treap order");
    // Finite-range queries count exactly the finite entries in range (a NaN
    // key absorbed into a sum would also poison it with a NaN value).
    let summary = index.query(0.0, 25.0);
    let expected = (0..40u64).filter(|i| i % 5 != 2).count();
    assert_eq!(summary.count, expected);
    assert!(summary.sum.is_finite());
    // NaN entries stay individually addressable (remove uses the same key
    // ordering as insert), whichever sign the NaN carries.
    assert!(index.remove(2, f64::NAN));
    assert!(index.remove(7, -f64::NAN));
    assert!(index.check_invariants());
}

#[test]
fn dynamic_grid_survives_nan_rows() {
    let (points, finite) = contaminated_points(36);
    let rows: Vec<IndexRow> = points
        .iter()
        .enumerate()
        .map(|(i, p)| IndexRow::new(i as u64, *p, vec![2.0]))
        .collect();
    let mut grid = DynamicAggGrid::new(0.0, 1);
    grid.rebuild(&rows);
    let rect = Rect::new(0.0, 50.0, 0.0, 50.0);
    let acc = grid.probe_rect(&rect);
    assert_eq!(acc.count() as usize, finite.len());
    // Nearest probes skip NaN rows rather than returning a NaN distance.
    if let Some((id, d2)) = grid.probe_nearest(&Point2::new(10.0, 10.0)) {
        assert!(d2.is_finite());
        assert!(points[id as usize].x.is_finite());
    }
}
