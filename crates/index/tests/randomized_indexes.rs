//! Randomized cross-validation of the index structures.
//!
//! Every index in `sgl-index` answers some class of aggregate query that the
//! naive executor answers by scanning; these tests assert that on arbitrary
//! inputs (positions, values, query rectangles) every index agrees exactly
//! with the scan.  This is the invariant that makes the paper's indexed
//! executor a pure optimization: same answers, different cost.
//!
//! Formerly proptest-based; rewritten as deterministic seeded sweeps (64
//! cases per property) because the build environment cannot fetch the
//! proptest crate.

use sgl_index::agg_tree::{AggEntry, LayeredAggTree};
use sgl_index::dynamic_agg::DynamicAggIndex;
use sgl_index::grid::UniformGrid;
use sgl_index::kdtree::KdTree;
use sgl_index::mra_tree::{MraAgg, MraTree};
use sgl_index::quadtree::AggQuadTree;
use sgl_index::range_tree::RangeTree2D;
use sgl_index::{Point2, Rect};

const WORLD: f64 = 256.0;
const CASES: u64 = 64;

/// Deterministic pseudo-random stream (splitmix64).
struct Rng(u64);

impl Rng {
    fn of_case(property: u64, case: u64) -> Rng {
        Rng(property
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(case.wrapping_mul(0x517C_C1B7_2722_0A95))
            | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A unit for the tests: position plus one value channel.  Coordinates snap
/// to a quarter-unit lattice so boundary cases (points exactly on a query
/// edge) are generated often.
#[derive(Debug, Clone)]
struct Row {
    x: f64,
    y: f64,
    value: f64,
}

fn random_rows(rng: &mut Rng, max: u64) -> Vec<Row> {
    (0..rng.below(max))
        .map(|_| Row {
            x: rng.below(1024) as f64 * 0.25,
            y: rng.below(1024) as f64 * 0.25,
            value: rng.below(100) as f64 - 50.0,
        })
        .collect()
}

fn random_rect(rng: &mut Rng) -> Rect {
    let x = rng.below(1024) as f64 * 0.25;
    let y = rng.below(1024) as f64 * 0.25;
    let w = rng.below(600) as f64 * 0.25;
    let h = rng.below(600) as f64 * 0.25;
    Rect::new(x, x + w, y, y + h)
}

fn points(rows: &[Row]) -> Vec<Point2> {
    rows.iter().map(|r| Point2::new(r.x, r.y)).collect()
}

fn brute_ids(rows: &[Row], rect: &Rect) -> Vec<u32> {
    rows.iter()
        .enumerate()
        .filter(|(_, r)| rect.contains(&Point2::new(r.x, r.y)))
        .map(|(i, _)| i as u32)
        .collect()
}

/// The divisible-aggregate layered range tree (Figure 8) answers count and
/// sum exactly, with and without fractional cascading.
#[test]
fn agg_tree_matches_scan() {
    for case in 0..CASES {
        let mut rng = Rng::of_case(1, case);
        let rows = random_rows(&mut rng, 200);
        let rect = random_rect(&mut rng);
        let entries: Vec<AggEntry> = rows
            .iter()
            .map(|r| AggEntry::new(Point2::new(r.x, r.y), vec![r.value]))
            .collect();
        let matching = brute_ids(&rows, &rect);
        let expected_count = matching.len() as f64;
        let expected_sum: f64 = matching.iter().map(|&i| rows[i as usize].value).sum();

        for cascading in [false, true] {
            let tree = LayeredAggTree::build(&entries, 1, cascading);
            let acc = tree.query(&rect);
            assert_eq!(acc.count(), expected_count, "case {case}");
            assert!(
                (acc.channel_sum(0) - expected_sum).abs() < 1e-6,
                "case {case}"
            );
            assert_eq!(tree.count(&rect), matching.len(), "case {case}");
        }
    }
}

/// The quadtree agrees with the scan for divisible aggregates, MIN/MAX and
/// enumeration.
#[test]
fn quadtree_matches_scan() {
    for case in 0..CASES {
        let mut rng = Rng::of_case(2, case);
        let rows = random_rows(&mut rng, 200);
        let rect = random_rect(&mut rng);
        let entries: Vec<AggEntry> = rows
            .iter()
            .map(|r| AggEntry::new(Point2::new(r.x, r.y), vec![r.value]))
            .collect();
        let tree = AggQuadTree::build(&entries, 1, 6);
        let matching = brute_ids(&rows, &rect);

        let acc = tree.query(&rect);
        assert_eq!(acc.count() as usize, matching.len(), "case {case}");
        let expected_sum: f64 = matching.iter().map(|&i| rows[i as usize].value).sum();
        assert!(
            (acc.channel_sum(0) - expected_sum).abs() < 1e-6,
            "case {case}"
        );

        assert_eq!(tree.query_points(&rect), matching, "case {case}");

        let expected_min = matching
            .iter()
            .map(|&i| rows[i as usize].value)
            .fold(f64::INFINITY, f64::min);
        let expected_max = matching
            .iter()
            .map(|&i| rows[i as usize].value)
            .fold(f64::NEG_INFINITY, f64::max);
        match tree.min_in_rect(&rect, 0) {
            Some(m) => assert_eq!(m.value, expected_min, "case {case}"),
            None => assert!(matching.is_empty(), "case {case}"),
        }
        match tree.max_in_rect(&rect, 0) {
            Some(m) => assert_eq!(m.value, expected_max, "case {case}"),
            None => assert!(matching.is_empty(), "case {case}"),
        }
    }
}

/// The enumeration range tree and the uniform grid agree with the scan.
#[test]
fn range_tree_and_grid_match_scan() {
    for case in 0..CASES {
        let mut rng = Rng::of_case(3, case);
        let rows = random_rows(&mut rng, 150);
        let rect = random_rect(&mut rng);
        let pts = points(&rows);
        let expected = brute_ids(&rows, &rect);

        let tree = RangeTree2D::build(&pts);
        let mut from_tree = tree.query(&rect);
        from_tree.sort_unstable();
        assert_eq!(from_tree, expected, "case {case}");
        assert_eq!(tree.count(&rect), expected.len(), "case {case}");

        let grid = UniformGrid::build(&pts, Point2::new(0.0, 0.0), Point2::new(WORLD, WORLD), 8.0);
        let mut from_grid = grid.query(&rect);
        from_grid.sort_unstable();
        assert_eq!(from_grid, expected, "case {case}");
    }
}

/// The MRA tree's exact mode agrees with the scan for all four aggregate
/// kinds, and its budgeted bounds always bracket the exact answer.
#[test]
fn mra_tree_bounds_are_sound() {
    for case in 0..CASES {
        let mut rng = Rng::of_case(4, case);
        let rows = random_rows(&mut rng, 150);
        let rect = random_rect(&mut rng);
        let budget = 1 + rng.below(63) as usize;
        let pts = points(&rows);
        let values: Vec<f64> = rows.iter().map(|r| r.value).collect();
        let tree = MraTree::build(&pts, &values, 6);
        let matching = brute_ids(&rows, &rect);
        let exact_count = matching.len() as f64;
        let exact_sum: f64 = matching.iter().map(|&i| values[i as usize]).sum();
        let exact_min = matching
            .iter()
            .map(|&i| values[i as usize])
            .reduce(f64::min);
        let exact_max = matching
            .iter()
            .map(|&i| values[i as usize])
            .reduce(f64::max);

        assert_eq!(
            tree.query_exact(&rect, MraAgg::Count),
            Some(exact_count),
            "case {case}"
        );
        let sum = tree.query_exact(&rect, MraAgg::Sum).unwrap();
        assert!((sum - exact_sum).abs() < 1e-6, "case {case}");
        assert_eq!(
            tree.query_exact(&rect, MraAgg::Min),
            exact_min,
            "case {case}"
        );
        assert_eq!(
            tree.query_exact(&rect, MraAgg::Max),
            exact_max,
            "case {case}"
        );

        for agg in [MraAgg::Count, MraAgg::Min, MraAgg::Max] {
            let bounds = tree.query_with_budget(&rect, agg, budget);
            let exact = match agg {
                MraAgg::Count => Some(exact_count),
                MraAgg::Min => exact_min,
                MraAgg::Max => exact_max,
                MraAgg::Sum => unreachable!(),
            };
            if let Some(x) = exact {
                assert!(bounds.lower <= x + 1e-9, "case {case}");
                assert!(x <= bounds.upper + 1e-9, "case {case}");
            }
        }
    }
}

/// The kD-tree nearest neighbour matches the scan (distance ties allowed).
#[test]
fn kdtree_nearest_matches_scan() {
    for case in 0..CASES {
        let mut rng = Rng::of_case(5, case);
        let rows = random_rows(&mut rng, 120);
        let query = Point2::new(rng.unit() * WORLD, rng.unit() * WORLD);
        let pts = points(&rows);
        let tree = KdTree::build(&pts);
        let expected = pts
            .iter()
            .map(|p| query.dist2(p))
            .fold(f64::INFINITY, f64::min);
        match tree.nearest(&query) {
            Some((id, d2)) => {
                assert!((d2 - expected).abs() < 1e-9, "case {case}");
                assert!(
                    (query.dist2(&pts[id as usize]) - expected).abs() < 1e-9,
                    "case {case}"
                );
            }
            None => assert!(pts.is_empty(), "case {case}"),
        }
    }
}

/// The dynamic aggregate treap agrees with a scan after an arbitrary
/// sequence of inserts, removals and coordinate updates.
#[test]
fn dynamic_index_matches_scan() {
    for case in 0..CASES {
        let mut rng = Rng::of_case(6, case);
        let rows = random_rows(&mut rng, 120);
        let mut live: Vec<Option<(f64, f64)>> = rows.iter().map(|r| Some((r.x, r.value))).collect();
        let mut index = DynamicAggIndex::new();
        for (id, r) in rows.iter().enumerate() {
            index.insert(id as u64, r.x, r.value);
        }
        for _ in 0..rng.below(40) {
            let victim = rng.below(120) as usize;
            if victim < live.len() {
                if let Some((coord, _)) = live[victim] {
                    assert!(index.remove(victim as u64, coord), "case {case}");
                    live[victim] = None;
                }
            }
        }
        for _ in 0..rng.below(40) {
            let mover = rng.below(120) as usize;
            let new_coord = rng.below(1024) as f64 * 0.25;
            if mover < live.len() {
                if let Some((coord, value)) = live[mover] {
                    assert!(
                        index.update_coord(mover as u64, coord, new_coord, value),
                        "case {case}"
                    );
                    live[mover] = Some((new_coord, value));
                }
            }
        }
        assert!(index.check_invariants());

        let lo = rng.unit() * WORLD;
        let hi = lo + rng.unit() * WORLD;
        let summary = index.query(lo, hi);
        let expected: Vec<f64> = live
            .iter()
            .flatten()
            .filter(|(c, _)| *c >= lo && *c <= hi)
            .map(|(_, v)| *v)
            .collect();
        assert_eq!(summary.count, expected.len(), "case {case}");
        let expected_sum: f64 = expected.iter().sum();
        assert!((summary.sum - expected_sum).abs() < 1e-6, "case {case}");
        if !expected.is_empty() {
            assert_eq!(
                summary.min,
                expected.iter().cloned().fold(f64::INFINITY, f64::min)
            );
            assert_eq!(
                summary.max,
                expected.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            );
        }
    }
}
