//! Classical layered range tree enumerating the points of an orthogonal
//! range query (paper §5.3.1).
//!
//! This structure answers "which points lie in the rectangle" in
//! `O(log² n + k)`; it is the fallback used for non-divisible aggregates over
//! arbitrary filters, and the "enumerate-then-aggregate" baseline of the index
//! micro-benchmarks (against which the divisible-aggregate tree of
//! [`crate::agg_tree`] is compared).

use crate::{Point2, Rect};

#[derive(Debug, Clone, Default)]
struct Node {
    left: u32,
    right: u32,
    /// Point ids of the subtree, sorted by y.
    ids: Vec<u32>,
    /// Matching y values (same order as `ids`).
    ys: Vec<f64>,
}

const NO_CHILD: u32 = u32::MAX;

/// Layered range tree over a fixed set of points.
#[derive(Debug, Clone)]
pub struct RangeTree2D {
    points: Vec<Point2>,
    /// x coordinates in x-sorted order.
    xs: Vec<f64>,
    nodes: Vec<Node>,
    root: u32,
}

impl RangeTree2D {
    /// Build the tree over the given points (ids are positions in the slice).
    pub fn build(points: &[Point2]) -> RangeTree2D {
        let n = points.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        // nan_last_cmp: keep a consistent order under NaN coordinates of
        // either sign (the `unwrap_or(Equal)` fallback was not a total
        // order, and total_cmp would sort negative NaN *first*, breaking the
        // partition_point searches).
        order.sort_by(|a, b| crate::nan_last_cmp(points[*a as usize].x, points[*b as usize].x));
        let xs: Vec<f64> = order.iter().map(|i| points[*i as usize].x).collect();
        let mut tree = RangeTree2D {
            points: points.to_vec(),
            xs,
            nodes: Vec::new(),
            root: NO_CHILD,
        };
        if n > 0 {
            tree.root = tree.build_node(&order);
        }
        tree
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the tree contains no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    fn build_node(&mut self, order: &[u32]) -> u32 {
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node::default());
        if order.len() == 1 {
            let id = order[0];
            self.nodes[idx as usize] = Node {
                left: NO_CHILD,
                right: NO_CHILD,
                ids: vec![id],
                ys: vec![self.points[id as usize].y],
            };
            return idx;
        }
        let mid = order.len() / 2;
        let left = self.build_node(&order[..mid]);
        let right = self.build_node(&order[mid..]);
        // Merge children's y-sorted lists.
        let (lids, lys) = {
            let l = &self.nodes[left as usize];
            (l.ids.clone(), l.ys.clone())
        };
        let (rids, rys) = {
            let r = &self.nodes[right as usize];
            (r.ids.clone(), r.ys.clone())
        };
        let mut ids = Vec::with_capacity(lids.len() + rids.len());
        let mut ys = Vec::with_capacity(lids.len() + rids.len());
        let (mut li, mut ri) = (0usize, 0usize);
        while li < lids.len() || ri < rids.len() {
            // nan_last_cmp keeps the merged list sorted even under NaN ys of
            // either sign (the naive `<=` stalls on NaN and breaks the
            // binary searches below).
            let take_left = ri >= rids.len()
                || (li < lids.len()
                    && crate::nan_last_cmp(lys[li], rys[ri]) != std::cmp::Ordering::Greater);
            if take_left {
                ids.push(lids[li]);
                ys.push(lys[li]);
                li += 1;
            } else {
                ids.push(rids[ri]);
                ys.push(rys[ri]);
                ri += 1;
            }
        }
        self.nodes[idx as usize] = Node {
            left,
            right,
            ids,
            ys,
        };
        idx
    }

    /// Enumerate the ids of all points inside the rectangle.
    pub fn query(&self, rect: &Rect) -> Vec<u32> {
        let mut out = Vec::new();
        self.query_into(rect, &mut out);
        out
    }

    /// Enumerate into an existing buffer (cleared first).
    pub fn query_into(&self, rect: &Rect, out: &mut Vec<u32>) {
        out.clear();
        if self.is_empty() || rect.is_empty() {
            return;
        }
        let l = self.xs.partition_point(|v| *v < rect.x_min);
        let r = self.xs.partition_point(|v| *v <= rect.x_max);
        if l >= r {
            return;
        }
        self.visit(self.root, 0, self.xs.len(), l, r, rect, out);
    }

    #[allow(clippy::too_many_arguments)]
    fn visit(
        &self,
        node_idx: u32,
        node_lo: usize,
        node_hi: usize,
        l: usize,
        r: usize,
        rect: &Rect,
        out: &mut Vec<u32>,
    ) {
        if node_idx == NO_CHILD || r <= node_lo || node_hi <= l {
            return;
        }
        let node = &self.nodes[node_idx as usize];
        if l <= node_lo && node_hi <= r {
            let lo = node.ys.partition_point(|v| *v < rect.y_min);
            let hi = node.ys.partition_point(|v| *v <= rect.y_max);
            out.extend_from_slice(&node.ids[lo..hi]);
            return;
        }
        let mid = node_lo + (node_hi - node_lo) / 2;
        self.visit(node.left, node_lo, mid, l, r, rect, out);
        self.visit(node.right, mid, node_hi, l, r, rect, out);
    }

    /// Count the points in the rectangle without materialising them.
    pub fn count(&self, rect: &Rect) -> usize {
        if self.is_empty() || rect.is_empty() {
            return 0;
        }
        let l = self.xs.partition_point(|v| *v < rect.x_min);
        let r = self.xs.partition_point(|v| *v <= rect.x_max);
        if l >= r {
            return 0;
        }
        let mut count = 0usize;
        self.count_visit(self.root, 0, self.xs.len(), l, r, rect, &mut count);
        count
    }

    #[allow(clippy::too_many_arguments)]
    fn count_visit(
        &self,
        node_idx: u32,
        node_lo: usize,
        node_hi: usize,
        l: usize,
        r: usize,
        rect: &Rect,
        out: &mut usize,
    ) {
        if node_idx == NO_CHILD || r <= node_lo || node_hi <= l {
            return;
        }
        let node = &self.nodes[node_idx as usize];
        if l <= node_lo && node_hi <= r {
            let lo = node.ys.partition_point(|v| *v < rect.y_min);
            let hi = node.ys.partition_point(|v| *v <= rect.y_max);
            *out += hi - lo;
            return;
        }
        let mid = node_lo + (node_hi - node_lo) / 2;
        self.count_visit(node.left, node_lo, mid, l, r, rect, out);
        self.count_visit(node.right, mid, node_hi, l, r, rect, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(state: &mut u64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*state >> 11) as f64) / ((1u64 << 53) as f64)
    }

    fn random_points(n: usize, seed: u64, world: f64) -> Vec<Point2> {
        let mut state = seed;
        (0..n)
            .map(|_| Point2::new(lcg(&mut state) * world, lcg(&mut state) * world))
            .collect()
    }

    #[test]
    fn empty_tree() {
        let tree = RangeTree2D::build(&[]);
        assert!(tree.is_empty());
        assert!(tree.query(&Rect::centered(0.0, 0.0, 5.0)).is_empty());
        assert_eq!(tree.count(&Rect::centered(0.0, 0.0, 5.0)), 0);
    }

    #[test]
    fn enumeration_matches_brute_force() {
        let points = random_points(300, 11, 100.0);
        let tree = RangeTree2D::build(&points);
        assert_eq!(tree.len(), 300);
        let mut state = 3u64;
        for _ in 0..100 {
            let rect = Rect::centered(
                lcg(&mut state) * 100.0,
                lcg(&mut state) * 100.0,
                lcg(&mut state) * 25.0,
            );
            let mut fast = tree.query(&rect);
            fast.sort_unstable();
            let mut slow: Vec<u32> = points
                .iter()
                .enumerate()
                .filter(|(_, p)| rect.contains(p))
                .map(|(i, _)| i as u32)
                .collect();
            slow.sort_unstable();
            assert_eq!(fast, slow);
            assert_eq!(tree.count(&rect), slow.len());
        }
    }

    #[test]
    fn inclusive_boundaries() {
        let points = vec![
            Point2::new(1.0, 1.0),
            Point2::new(2.0, 2.0),
            Point2::new(3.0, 3.0),
        ];
        let tree = RangeTree2D::build(&points);
        assert_eq!(tree.count(&Rect::new(1.0, 3.0, 1.0, 3.0)), 3);
        assert_eq!(tree.count(&Rect::new(1.0, 2.0, 1.0, 2.0)), 2);
        assert_eq!(tree.count(&Rect::new(2.0, 2.0, 2.0, 2.0)), 1);
    }

    #[test]
    fn query_into_reuses_buffer() {
        let points = random_points(50, 9, 10.0);
        let tree = RangeTree2D::build(&points);
        let mut buf = vec![99u32; 8];
        tree.query_into(&Rect::new(0.0, 10.0, 0.0, 10.0), &mut buf);
        assert_eq!(buf.len(), 50);
    }

    #[test]
    fn duplicate_points_are_all_reported() {
        let points = vec![Point2::new(5.0, 5.0); 10];
        let tree = RangeTree2D::build(&points);
        assert_eq!(tree.count(&Rect::centered(5.0, 5.0, 0.5)), 10);
        assert_eq!(tree.query(&Rect::centered(5.0, 5.0, 0.5)).len(), 10);
    }
}
