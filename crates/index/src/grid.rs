//! Uniform bucket-grid spatial index.
//!
//! Not described in the paper; included as an ablation baseline for the range
//! tree (grids are what many game engines actually ship) and used by the
//! movement phase of the simulation engine for cheap collision queries.

use crate::{Point2, Rect};

/// A uniform grid over a rectangular world, bucketing point ids by cell.
#[derive(Debug, Clone)]
pub struct UniformGrid {
    origin_x: f64,
    origin_y: f64,
    cell: f64,
    cols: usize,
    rows: usize,
    buckets: Vec<Vec<u32>>,
    points: Vec<Point2>,
}

impl UniformGrid {
    /// Build a grid with cells of size `cell` covering the bounding box of
    /// the points (plus the world extent provided, so empty areas still map
    /// to valid cells).
    pub fn build(
        points: &[Point2],
        world_min: Point2,
        world_max: Point2,
        cell: f64,
    ) -> UniformGrid {
        assert!(cell > 0.0, "cell size must be positive");
        let width = (world_max.x - world_min.x).max(cell);
        let height = (world_max.y - world_min.y).max(cell);
        let cols = (width / cell).ceil() as usize + 1;
        let rows = (height / cell).ceil() as usize + 1;
        let mut grid = UniformGrid {
            origin_x: world_min.x,
            origin_y: world_min.y,
            cell,
            cols,
            rows,
            buckets: vec![Vec::new(); cols * rows],
            points: points.to_vec(),
        };
        for (i, p) in points.iter().enumerate() {
            let b = grid.bucket_of(p);
            grid.buckets[b].push(i as u32);
        }
        grid
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the grid holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Grid dimensions `(columns, rows)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    fn clamp_col(&self, x: f64) -> usize {
        (((x - self.origin_x) / self.cell).floor().max(0.0) as usize).min(self.cols - 1)
    }

    fn clamp_row(&self, y: f64) -> usize {
        (((y - self.origin_y) / self.cell).floor().max(0.0) as usize).min(self.rows - 1)
    }

    fn bucket_of(&self, p: &Point2) -> usize {
        self.clamp_row(p.y) * self.cols + self.clamp_col(p.x)
    }

    /// Ids of all points inside the rectangle (inclusive bounds).
    pub fn query(&self, rect: &Rect) -> Vec<u32> {
        let mut out = Vec::new();
        self.query_into(rect, &mut out);
        out
    }

    /// Enumerate into an existing buffer (cleared first).
    pub fn query_into(&self, rect: &Rect, out: &mut Vec<u32>) {
        out.clear();
        if self.is_empty() || rect.is_empty() {
            return;
        }
        let c0 = self.clamp_col(rect.x_min);
        let c1 = self.clamp_col(rect.x_max);
        let r0 = self.clamp_row(rect.y_min);
        let r1 = self.clamp_row(rect.y_max);
        for row in r0..=r1 {
            for col in c0..=c1 {
                for id in &self.buckets[row * self.cols + col] {
                    if rect.contains(&self.points[*id as usize]) {
                        out.push(*id);
                    }
                }
            }
        }
    }

    /// Count the points inside the rectangle.
    pub fn count(&self, rect: &Rect) -> usize {
        let mut buf = Vec::new();
        self.query_into(rect, &mut buf);
        buf.len()
    }

    /// Is any point within `radius` (Euclidean) of `p`, other than `exclude`?
    pub fn any_within(&self, p: &Point2, radius: f64, exclude: Option<u32>) -> bool {
        let rect = Rect::centered(p.x, p.y, radius);
        let c0 = self.clamp_col(rect.x_min);
        let c1 = self.clamp_col(rect.x_max);
        let r0 = self.clamp_row(rect.y_min);
        let r1 = self.clamp_row(rect.y_max);
        let r2 = radius * radius;
        for row in r0..=r1 {
            for col in c0..=c1 {
                for id in &self.buckets[row * self.cols + col] {
                    if Some(*id) == exclude {
                        continue;
                    }
                    if self.points[*id as usize].dist2(p) <= r2 {
                        return true;
                    }
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(state: &mut u64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*state >> 11) as f64) / ((1u64 << 53) as f64)
    }

    fn random_points(n: usize, seed: u64, world: f64) -> Vec<Point2> {
        let mut state = seed;
        (0..n)
            .map(|_| Point2::new(lcg(&mut state) * world, lcg(&mut state) * world))
            .collect()
    }

    fn world_grid(points: &[Point2], cell: f64) -> UniformGrid {
        UniformGrid::build(
            points,
            Point2::new(0.0, 0.0),
            Point2::new(100.0, 100.0),
            cell,
        )
    }

    #[test]
    fn empty_grid() {
        let grid = world_grid(&[], 5.0);
        assert!(grid.is_empty());
        assert_eq!(grid.count(&Rect::centered(50.0, 50.0, 10.0)), 0);
        assert!(!grid.any_within(&Point2::new(0.0, 0.0), 100.0, None));
    }

    #[test]
    fn queries_match_brute_force() {
        let points = random_points(400, 17, 100.0);
        let grid = world_grid(&points, 7.0);
        assert_eq!(grid.len(), 400);
        let mut state = 23u64;
        for _ in 0..100 {
            let rect = Rect::centered(
                lcg(&mut state) * 100.0,
                lcg(&mut state) * 100.0,
                lcg(&mut state) * 20.0,
            );
            let mut fast = grid.query(&rect);
            fast.sort_unstable();
            let mut slow: Vec<u32> = points
                .iter()
                .enumerate()
                .filter(|(_, p)| rect.contains(p))
                .map(|(i, _)| i as u32)
                .collect();
            slow.sort_unstable();
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn points_outside_the_declared_world_are_clamped_not_lost() {
        let points = vec![
            Point2::new(-10.0, -10.0),
            Point2::new(150.0, 150.0),
            Point2::new(50.0, 50.0),
        ];
        let grid = world_grid(&points, 10.0);
        assert_eq!(grid.count(&Rect::new(-20.0, 200.0, -20.0, 200.0)), 3);
        assert_eq!(grid.count(&Rect::new(40.0, 60.0, 40.0, 60.0)), 1);
    }

    #[test]
    fn any_within_respects_exclusion_and_radius() {
        let points = vec![Point2::new(10.0, 10.0), Point2::new(11.0, 10.0)];
        let grid = world_grid(&points, 5.0);
        assert!(grid.any_within(&Point2::new(10.0, 10.0), 0.5, None));
        // Excluding the only point in radius → nothing found.
        assert!(!grid.any_within(&Point2::new(10.0, 10.0), 0.5, Some(0)));
        // The other point is 1.0 away.
        assert!(grid.any_within(&Point2::new(10.0, 10.0), 1.0, Some(0)));
        assert!(!grid.any_within(&Point2::new(10.0, 10.0), 0.9, Some(0)));
    }

    #[test]
    #[should_panic(expected = "cell size must be positive")]
    fn zero_cell_size_panics() {
        let _ = world_grid(&[], 0.0);
    }

    #[test]
    fn dims_reflect_world_and_cell_size() {
        let grid = world_grid(&[], 10.0);
        let (cols, rows) = grid.dims();
        assert!(cols >= 10 && rows >= 10);
    }
}

// ---------------------------------------------------------------------------
// Dynamically maintained aggregate grid
// ---------------------------------------------------------------------------

use rustc_hash::FxHashMap;

use crate::divisible::DivAcc;
use crate::traits::{AggIndex, DeltaCostClass, ExtremumResult, IndexDelta, IndexRow, SpatialIndex};

/// Per-cell summary of a [`DynamicAggGrid`]: the resident rows plus a
/// divisible accumulator and per-channel extrema over them.
#[derive(Debug, Clone)]
struct DynCell {
    rows: Vec<IndexRow>,
    acc: DivAcc,
    /// Per channel: `(min value, id attaining it, max value, id attaining it)`.
    ext: Vec<(f64, u64, f64, u64)>,
}

impl DynCell {
    fn new(channels: usize) -> DynCell {
        DynCell {
            rows: Vec::new(),
            acc: DivAcc::identity(channels),
            ext: vec![(f64::INFINITY, 0, f64::NEG_INFINITY, 0); channels],
        }
    }

    fn absorb(&mut self, row: &IndexRow) {
        self.acc.insert(&row.values);
        for (c, v) in row.values.iter().enumerate() {
            let e = &mut self.ext[c];
            if *v < e.0 {
                e.0 = *v;
                e.1 = row.id;
            }
            if *v > e.2 {
                e.2 = *v;
                e.3 = row.id;
            }
        }
    }

    /// Recompute the summary from the resident rows (after a removal, when
    /// subtracting from float accumulators would accumulate rounding error).
    fn recompute(&mut self, channels: usize) {
        self.acc = DivAcc::identity(channels);
        self.ext = vec![(f64::INFINITY, 0, f64::NEG_INFINITY, 0); channels];
        let rows = std::mem::take(&mut self.rows);
        for row in &rows {
            self.absorb(row);
        }
        self.rows = rows;
    }
}

/// A dynamically maintained uniform hash grid with per-cell aggregate
/// summaries — the *maintained* counterpart of the per-tick structures
/// (§5.3 argues rebuilding beats maintaining; this structure is the
/// maintenance side of that measurement, wired into the engine through the
/// `Incremental` maintenance policy).
///
/// Supports `O(1)` expected-time row insertion/removal/update
/// ([`AggIndex::apply_delta`]), exact divisible aggregates and exact
/// per-channel MIN/MAX over rectangles, id enumeration, and exact nearest
/// neighbour via an expanding ring search.
#[derive(Debug, Clone)]
pub struct DynamicAggGrid {
    /// Cell side; `configured_cell == 0.0` means "derive at rebuild".
    configured_cell: f64,
    cell: f64,
    channels: usize,
    cells: FxHashMap<(i64, i64), DynCell>,
    /// id → (point, values): the authoritative row set.
    rows: FxHashMap<u64, (Point2, Vec<f64>)>,
    /// Grow-only bounding box of occupied cell coordinates (bounds the ring
    /// search; removals may leave it loose, which only costs empty probes).
    cell_bounds: Option<(i64, i64, i64, i64)>,
}

impl DynamicAggGrid {
    /// Create an empty grid.  `cell == 0.0` derives the cell side from the
    /// data on the first [`AggIndex::rebuild`].
    pub fn new(cell: f64, channels: usize) -> DynamicAggGrid {
        DynamicAggGrid {
            configured_cell: cell,
            cell: if cell > 0.0 { cell } else { 1.0 },
            channels,
            cells: FxHashMap::default(),
            rows: FxHashMap::default(),
            cell_bounds: None,
        }
    }

    /// The active cell side length.
    pub fn cell_side(&self) -> f64 {
        self.cell
    }

    /// Number of occupied cells.
    pub fn occupied_cells(&self) -> usize {
        self.cells.len()
    }

    fn coord(&self, v: f64) -> i64 {
        // Clamp so degenerate coordinates (±inf from unbounded filters)
        // cannot overflow the cell arithmetic.
        const LIMIT: f64 = (1i64 << 40) as f64;
        (v / self.cell).floor().clamp(-LIMIT, LIMIT) as i64
    }

    fn cell_of(&self, p: &Point2) -> (i64, i64) {
        (self.coord(p.x), self.coord(p.y))
    }

    fn grow_bounds(&mut self, c: (i64, i64)) {
        self.cell_bounds = Some(match self.cell_bounds {
            None => (c.0, c.0, c.1, c.1),
            Some((x0, x1, y0, y1)) => (x0.min(c.0), x1.max(c.0), y0.min(c.1), y1.max(c.1)),
        });
    }

    fn insert_row(&mut self, row: IndexRow) {
        debug_assert_eq!(row.values.len(), self.channels);
        // Quarantine non-finite positions: a NaN coordinate casts to cell 0,
        // where it would match any rectangle covering that cell (the
        // reference filter `|dx| ≤ r ∧ |dy| ≤ r` never matches NaN).  The row
        // stays in the authoritative id map so deltas can still find it.
        if !row.point.x.is_finite() || !row.point.y.is_finite() {
            self.rows.insert(row.id, (row.point, row.values));
            return;
        }
        let key = self.cell_of(&row.point);
        self.grow_bounds(key);
        self.rows.insert(row.id, (row.point, row.values.clone()));
        let channels = self.channels;
        let cell = self
            .cells
            .entry(key)
            .or_insert_with(|| DynCell::new(channels));
        cell.absorb(&row);
        cell.rows.push(row);
    }

    fn remove_row(&mut self, id: u64) -> bool {
        let Some((point, _)) = self.rows.remove(&id) else {
            return false;
        };
        if !point.x.is_finite() || !point.y.is_finite() {
            // Quarantined row: it was never placed in a cell.
            return true;
        }
        let key = self.cell_of(&point);
        let channels = self.channels;
        if let Some(cell) = self.cells.get_mut(&key) {
            cell.rows.retain(|r| r.id != id);
            if cell.rows.is_empty() {
                self.cells.remove(&key);
            } else {
                cell.recompute(channels);
            }
            true
        } else {
            false
        }
    }

    /// Full scan over the authoritative row set — the fallback when the
    /// ring walk would probe more empty cell coordinates than a scan costs.
    /// Matches the ring search exactly: quarantined (non-finite) rows never
    /// win, and exact distance ties resolve to the smallest id.
    fn brute_nearest(&self, query: &Point2) -> Option<(u64, f64)> {
        let mut best: Option<(u64, f64)> = None;
        for (&id, (point, _)) in &self.rows {
            if !point.x.is_finite() || !point.y.is_finite() {
                continue;
            }
            let d2 = query.dist2(point);
            if best.is_none_or(|(bid, bd)| d2 < bd || (d2 == bd && id < bid)) {
                best = Some((id, d2));
            }
        }
        best
    }

    /// Visit every cell overlapping `rect`; the callback receives the cell
    /// and whether the cell square is fully contained in the rectangle.
    /// Chooses between a coordinate sweep and a full cell-map scan by
    /// whichever touches fewer cells.
    fn visit_cells<'a>(&'a self, rect: &Rect, mut visit: impl FnMut(&'a DynCell, bool)) {
        if rect.is_empty() || self.cells.is_empty() {
            return;
        }
        let c0 = self.coord(rect.x_min);
        let c1 = self.coord(rect.x_max);
        let r0 = self.coord(rect.y_min);
        let r1 = self.coord(rect.y_max);
        let contained = |key: (i64, i64)| {
            let x_lo = key.0 as f64 * self.cell;
            let x_hi = (key.0 + 1) as f64 * self.cell;
            let y_lo = key.1 as f64 * self.cell;
            let y_hi = (key.1 + 1) as f64 * self.cell;
            x_lo >= rect.x_min && x_hi <= rect.x_max && y_lo >= rect.y_min && y_hi <= rect.y_max
        };
        let span = (c1.saturating_sub(c0).saturating_add(1) as u128)
            .saturating_mul(r1.saturating_sub(r0).saturating_add(1) as u128);
        if span <= self.cells.len() as u128 {
            for cx in c0..=c1 {
                for cy in r0..=r1 {
                    if let Some(cell) = self.cells.get(&(cx, cy)) {
                        visit(cell, contained((cx, cy)));
                    }
                }
            }
        } else {
            for (key, cell) in &self.cells {
                if key.0 < c0 || key.0 > c1 || key.1 < r0 || key.1 > r1 {
                    continue;
                }
                visit(cell, contained(*key));
            }
        }
    }

    /// Accumulate the rows inside `rect` into an existing accumulator — the
    /// allocation-free form of [`AggIndex::probe_rect`] for hot probe loops
    /// that reuse one scratch accumulator across probes.
    pub fn probe_rect_into(&self, rect: &Rect, acc: &mut DivAcc) {
        self.visit_cells(rect, |cell, contained| {
            if contained {
                acc.merge(&cell.acc);
            } else {
                for row in &cell.rows {
                    if rect.contains(&row.point) {
                        acc.insert(&row.values);
                    }
                }
            }
        });
    }
}

impl AggIndex for DynamicAggGrid {
    fn channels(&self) -> usize {
        self.channels
    }

    fn len(&self) -> usize {
        self.rows.len()
    }

    fn rebuild(&mut self, rows: &[IndexRow]) {
        self.cells.clear();
        self.rows.clear();
        self.cell_bounds = None;
        if self.configured_cell > 0.0 {
            self.cell = self.configured_cell;
        } else if !rows.is_empty() {
            // Derive a cell side giving ~1 row per cell on uniform data: the
            // bounding-box side over sqrt(n).
            let mut lo = Point2::new(f64::INFINITY, f64::INFINITY);
            let mut hi = Point2::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
            for r in rows {
                lo.x = lo.x.min(r.point.x);
                lo.y = lo.y.min(r.point.y);
                hi.x = hi.x.max(r.point.x);
                hi.y = hi.y.max(r.point.y);
            }
            let side = (hi.x - lo.x).max(hi.y - lo.y);
            // A degenerate bounding box (single row, or every row stacked on
            // one point) must not produce a microscopic cell: rows that
            // later drift apart under incremental maintenance would land
            // millions of cells away, and every ring search would crawl
            // through the gap.  (Found by the conformance suite: a
            // one-knight partition whose knight then marched across the map.)
            self.cell = if side > 1e-9 {
                (side / (rows.len() as f64).sqrt()).max(1e-6)
            } else {
                1.0
            };
        }
        for row in rows {
            self.insert_row(row.clone());
        }
    }

    fn probe_rect(&self, rect: &Rect) -> DivAcc {
        let mut acc = DivAcc::identity(self.channels);
        self.probe_rect_into(rect, &mut acc);
        acc
    }

    fn probe_extremum(
        &self,
        rect: &Rect,
        channel: usize,
        minimize: bool,
    ) -> Option<ExtremumResult> {
        let mut best: Option<ExtremumResult> = None;
        let better = |best: &Option<ExtremumResult>, v: f64| match best {
            None => true,
            Some(b) => {
                if minimize {
                    v < b.value
                } else {
                    v > b.value
                }
            }
        };
        self.visit_cells(rect, |cell, contained| {
            if contained {
                let e = cell.ext[channel];
                let (v, id) = if minimize { (e.0, e.1) } else { (e.2, e.3) };
                if cell.acc.count > 0.0 && better(&best, v) {
                    best = Some(ExtremumResult { value: v, id });
                }
            } else {
                for row in &cell.rows {
                    if rect.contains(&row.point) && better(&best, row.values[channel]) {
                        best = Some(ExtremumResult {
                            value: row.values[channel],
                            id: row.id,
                        });
                    }
                }
            }
        });
        best
    }

    fn supports_extremum(&self) -> bool {
        true
    }

    fn apply_delta(&mut self, delta: &IndexDelta) -> bool {
        match delta {
            IndexDelta::Insert { row } => self.insert_row(row.clone()),
            IndexDelta::Remove { id, .. } => {
                self.remove_row(*id);
            }
            IndexDelta::Update { id, row, .. } => {
                self.remove_row(*id);
                self.insert_row(row.clone());
            }
        }
        true
    }

    fn supports_deltas(&self) -> bool {
        true
    }

    fn delta_cost_class(&self) -> DeltaCostClass {
        DeltaCostClass::Constant
    }

    fn density_hint(&self) -> Option<f64> {
        let cells = self.occupied_cells();
        if cells == 0 || self.rows.is_empty() || self.cell <= 0.0 {
            return None;
        }
        let area = cells as f64 * self.cell * self.cell;
        (area > 0.0).then(|| self.rows.len() as f64 / area)
    }
}

impl SpatialIndex for DynamicAggGrid {
    fn len(&self) -> usize {
        self.rows.len()
    }

    fn probe_rect_ids(&self, rect: &Rect, out: &mut Vec<u64>) {
        self.visit_cells(rect, |cell, contained| {
            if contained {
                out.extend(cell.rows.iter().map(|r| r.id));
            } else {
                for row in &cell.rows {
                    if rect.contains(&row.point) {
                        out.push(row.id);
                    }
                }
            }
        });
    }

    fn probe_nearest(&self, query: &Point2) -> Option<(u64, f64)> {
        let (x0, x1, y0, y1) = self.cell_bounds?;
        if self.rows.is_empty() {
            return None;
        }
        let qc = self.cell_of(query);
        // Largest Chebyshev cell distance from the query cell to any occupied
        // cell (the ring search never needs to go further).
        let max_ring = [(x0, y0), (x0, y1), (x1, y0), (x1, y1)]
            .iter()
            .map(|(cx, cy)| (cx - qc.0).abs().max((cy - qc.1).abs()))
            .max()
            .unwrap_or(0);
        let mut best: Option<(u64, f64)> = None;
        // Exact distance ties resolve to the smallest id — the same rule as
        // `KdTree::nearest`, so every nearest-neighbour structure agrees
        // with the scan-based reference semantics on duplicated positions.
        let consider = |cell: &DynCell, best: &mut Option<(u64, f64)>| {
            for row in &cell.rows {
                let d2 = query.dist2(&row.point);
                if best.is_none_or(|(bid, bd)| d2 < bd || (d2 == bd && row.id < bid)) {
                    *best = Some((row.id, d2));
                }
            }
        };
        // The ring walk probes cell *coordinates*, most of which are empty
        // when the occupancy is sparse relative to the bounds (e.g. two
        // clusters far apart, or bounds left loose by removals).  Cap the
        // wasted lookups at a small multiple of the occupied-cell count and
        // fall back to brute force over the rows beyond that — O(rows),
        // which is exactly what the walk was trying to beat, so the probe
        // is never *worse* than a scan by more than a constant factor.
        let mut lookup_budget = 4 * self.cells.len() + 64;
        for ring in 0..=max_ring {
            // Any point in a cell at Chebyshev cell-distance `ring` is at
            // least `(ring - 1) * cell` away from the query point.  Strict
            // `<`: a later-ring point at *exactly* the best distance may
            // still win the smaller-id tie-break.
            if let Some((_, bd)) = best {
                let reach = (ring - 1).max(0) as f64 * self.cell;
                if bd < reach * reach {
                    break;
                }
            }
            let perimeter = if ring == 0 { 1 } else { 8 * ring as usize };
            if perimeter > lookup_budget {
                return self.brute_nearest(query);
            }
            lookup_budget -= perimeter;
            if ring == 0 {
                if let Some(cell) = self.cells.get(&qc) {
                    consider(cell, &mut best);
                }
                continue;
            }
            let (lo_x, hi_x) = (qc.0 - ring, qc.0 + ring);
            let (lo_y, hi_y) = (qc.1 - ring, qc.1 + ring);
            for cx in lo_x..=hi_x {
                for cy in [lo_y, hi_y] {
                    if let Some(cell) = self.cells.get(&(cx, cy)) {
                        consider(cell, &mut best);
                    }
                }
            }
            for cy in (lo_y + 1)..hi_y {
                for cx in [lo_x, hi_x] {
                    if let Some(cell) = self.cells.get(&(cx, cy)) {
                        consider(cell, &mut best);
                    }
                }
            }
        }
        best
    }

    fn supports_nearest(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod dynamic_tests {
    use super::*;

    fn lcg(state: &mut u64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*state >> 11) as f64) / ((1u64 << 53) as f64)
    }

    fn random_rows(n: usize, seed: u64, world: f64) -> Vec<IndexRow> {
        let mut state = seed;
        (0..n)
            .map(|i| {
                IndexRow::new(
                    i as u64,
                    Point2::new(lcg(&mut state) * world, lcg(&mut state) * world),
                    vec![(i % 23) as f64, lcg(&mut state) * 10.0],
                )
            })
            .collect()
    }

    fn brute(rows: &[IndexRow], rect: &Rect) -> DivAcc {
        let mut acc = DivAcc::identity(2);
        for r in rows {
            if rect.contains(&r.point) {
                acc.insert(&r.values);
            }
        }
        acc
    }

    /// Regression (conformance seed 3, stacked layout): exactly duplicated
    /// positions tie on distance; the winner must be the smallest id under
    /// every insertion order and ring-search path, matching the scan-based
    /// reference semantics.
    #[test]
    fn nearest_ties_resolve_to_the_smallest_id() {
        let stacked = Point2::new(21.057808, 34.255306);
        // Ids deliberately inserted out of order.
        let rows = vec![
            IndexRow::new(46, stacked, vec![]),
            IndexRow::new(44, stacked, vec![]),
            IndexRow::new(42, Point2::new(23.018062, 24.096183), vec![]),
        ];
        let mut grid = DynamicAggGrid::new(0.0, 0);
        grid.rebuild(&rows);
        let q = Point2::new(29.412077, 34.638682);
        let (id, _) = grid.probe_nearest(&q).unwrap();
        assert_eq!(id, 44, "tie must go to the smallest id");
        // Mirror tie across cells: equidistant points in different cells.
        let rows = vec![
            IndexRow::new(9, Point2::new(10.0, 0.0), vec![]),
            IndexRow::new(3, Point2::new(-10.0, 0.0), vec![]),
        ];
        let mut grid = DynamicAggGrid::new(4.0, 0);
        grid.rebuild(&rows);
        let (id, _) = grid.probe_nearest(&Point2::new(0.0, 0.0)).unwrap();
        assert_eq!(id, 3);
    }

    #[test]
    fn grid_probes_match_brute_force_after_maintenance() {
        let mut rows = random_rows(400, 11, 120.0);
        let mut grid = DynamicAggGrid::new(0.0, 2);
        grid.rebuild(&rows);
        assert_eq!(AggIndex::len(&grid), 400);
        assert!(grid.cell_side() > 0.0);
        assert!(grid.occupied_cells() > 0);

        // A tick's worth of churn: move a third, remove some, insert some.
        let mut state = 77u64;
        for r in rows.iter_mut().take(130) {
            let old = r.point;
            r.point = Point2::new(lcg(&mut state) * 120.0, lcg(&mut state) * 120.0);
            assert!(grid.apply_delta(&IndexDelta::Update {
                id: r.id,
                old_point: old,
                row: r.clone()
            }));
        }
        for _ in 0..30 {
            let victim = rows.pop().unwrap();
            assert!(grid.apply_delta(&IndexDelta::Remove {
                id: victim.id,
                point: victim.point
            }));
        }
        for i in 0..25u64 {
            let row = IndexRow::new(
                10_000 + i,
                Point2::new(lcg(&mut state) * 120.0, lcg(&mut state) * 120.0),
                vec![i as f64, 1.0],
            );
            assert!(grid.apply_delta(&IndexDelta::Insert { row: row.clone() }));
            rows.push(row);
        }

        let mut qstate = 3u64;
        for _ in 0..100 {
            let rect = Rect::centered(
                lcg(&mut qstate) * 120.0,
                lcg(&mut qstate) * 120.0,
                lcg(&mut qstate) * 30.0,
            );
            let fast = grid.probe_rect(&rect);
            let slow = brute(&rows, &rect);
            assert_eq!(fast.count(), slow.count());
            assert!((fast.channel_sum(0) - slow.channel_sum(0)).abs() < 1e-6);
            assert!((fast.channel_sum(1) - slow.channel_sum(1)).abs() < 1e-6);
        }
    }

    #[test]
    fn grid_extrema_match_brute_force() {
        let rows = random_rows(300, 5, 90.0);
        let mut grid = DynamicAggGrid::new(4.0, 2);
        grid.rebuild(&rows);
        let mut state = 9u64;
        for _ in 0..100 {
            let rect = Rect::centered(
                lcg(&mut state) * 90.0,
                lcg(&mut state) * 90.0,
                5.0 + lcg(&mut state) * 25.0,
            );
            let matching: Vec<&IndexRow> =
                rows.iter().filter(|r| rect.contains(&r.point)).collect();
            for (channel, minimize) in [(0usize, true), (0, false), (1, true), (1, false)] {
                let fast = grid.probe_extremum(&rect, channel, minimize);
                match fast {
                    None => assert!(matching.is_empty()),
                    Some(e) => {
                        let slow = matching.iter().map(|r| r.values[channel]).fold(
                            if minimize {
                                f64::INFINITY
                            } else {
                                f64::NEG_INFINITY
                            },
                            |a, b| {
                                if minimize {
                                    a.min(b)
                                } else {
                                    a.max(b)
                                }
                            },
                        );
                        assert_eq!(e.value, slow);
                        // The reported id attains the value inside the rect.
                        let attaining = rows.iter().find(|r| r.id == e.id).unwrap();
                        assert!(rect.contains(&attaining.point));
                        assert_eq!(attaining.values[channel], slow);
                    }
                }
            }
        }
    }

    #[test]
    fn grid_nearest_matches_brute_force() {
        let rows = random_rows(250, 21, 100.0);
        let mut grid = DynamicAggGrid::new(0.0, 2);
        grid.rebuild(&rows);
        let mut state = 13u64;
        for _ in 0..200 {
            let q = Point2::new(
                lcg(&mut state) * 140.0 - 20.0,
                lcg(&mut state) * 140.0 - 20.0,
            );
            let (_, d2) = grid.probe_nearest(&q).unwrap();
            let best = rows
                .iter()
                .map(|r| q.dist2(&r.point))
                .fold(f64::INFINITY, f64::min);
            assert!((d2 - best).abs() < 1e-9, "query {q:?}: {d2} vs {best}");
        }
    }

    #[test]
    fn nearest_survives_heavy_removal() {
        // Leave a single far-away row: the ring search must still find it and
        // the loose bounding box must not break correctness.
        let rows = random_rows(100, 2, 50.0);
        let mut grid = DynamicAggGrid::new(2.0, 2);
        grid.rebuild(&rows);
        for r in &rows[..99] {
            grid.apply_delta(&IndexDelta::Remove {
                id: r.id,
                point: r.point,
            });
        }
        assert_eq!(AggIndex::len(&grid), 1);
        let survivor = &rows[99];
        let (id, _) = grid.probe_nearest(&Point2::new(-100.0, -100.0)).unwrap();
        assert_eq!(id, survivor.id);
        // Empty grid answers None.
        grid.apply_delta(&IndexDelta::Remove {
            id: survivor.id,
            point: survivor.point,
        });
        assert_eq!(grid.probe_nearest(&Point2::new(0.0, 0.0)), None);
        assert_eq!(
            grid.probe_rect(&Rect::new(-1e9, 1e9, -1e9, 1e9)).count(),
            0.0
        );
    }

    #[test]
    fn unbounded_rect_probes_cover_everything() {
        let rows = random_rows(150, 31, 60.0);
        let mut grid = DynamicAggGrid::new(0.0, 2);
        grid.rebuild(&rows);
        let whole = Rect::new(
            f64::NEG_INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::INFINITY,
        );
        assert_eq!(grid.probe_rect(&whole).count() as usize, 150);
        let mut ids = Vec::new();
        grid.probe_rect_ids(&whole, &mut ids);
        assert_eq!(ids.len(), 150);
    }
}
