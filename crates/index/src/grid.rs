//! Uniform bucket-grid spatial index.
//!
//! Not described in the paper; included as an ablation baseline for the range
//! tree (grids are what many game engines actually ship) and used by the
//! movement phase of the simulation engine for cheap collision queries.

use crate::{Point2, Rect};

/// A uniform grid over a rectangular world, bucketing point ids by cell.
#[derive(Debug, Clone)]
pub struct UniformGrid {
    origin_x: f64,
    origin_y: f64,
    cell: f64,
    cols: usize,
    rows: usize,
    buckets: Vec<Vec<u32>>,
    points: Vec<Point2>,
}

impl UniformGrid {
    /// Build a grid with cells of size `cell` covering the bounding box of
    /// the points (plus the world extent provided, so empty areas still map
    /// to valid cells).
    pub fn build(points: &[Point2], world_min: Point2, world_max: Point2, cell: f64) -> UniformGrid {
        assert!(cell > 0.0, "cell size must be positive");
        let width = (world_max.x - world_min.x).max(cell);
        let height = (world_max.y - world_min.y).max(cell);
        let cols = (width / cell).ceil() as usize + 1;
        let rows = (height / cell).ceil() as usize + 1;
        let mut grid = UniformGrid {
            origin_x: world_min.x,
            origin_y: world_min.y,
            cell,
            cols,
            rows,
            buckets: vec![Vec::new(); cols * rows],
            points: points.to_vec(),
        };
        for (i, p) in points.iter().enumerate() {
            let b = grid.bucket_of(p);
            grid.buckets[b].push(i as u32);
        }
        grid
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the grid holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Grid dimensions `(columns, rows)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    fn clamp_col(&self, x: f64) -> usize {
        (((x - self.origin_x) / self.cell).floor().max(0.0) as usize).min(self.cols - 1)
    }

    fn clamp_row(&self, y: f64) -> usize {
        (((y - self.origin_y) / self.cell).floor().max(0.0) as usize).min(self.rows - 1)
    }

    fn bucket_of(&self, p: &Point2) -> usize {
        self.clamp_row(p.y) * self.cols + self.clamp_col(p.x)
    }

    /// Ids of all points inside the rectangle (inclusive bounds).
    pub fn query(&self, rect: &Rect) -> Vec<u32> {
        let mut out = Vec::new();
        self.query_into(rect, &mut out);
        out
    }

    /// Enumerate into an existing buffer (cleared first).
    pub fn query_into(&self, rect: &Rect, out: &mut Vec<u32>) {
        out.clear();
        if self.is_empty() || rect.is_empty() {
            return;
        }
        let c0 = self.clamp_col(rect.x_min);
        let c1 = self.clamp_col(rect.x_max);
        let r0 = self.clamp_row(rect.y_min);
        let r1 = self.clamp_row(rect.y_max);
        for row in r0..=r1 {
            for col in c0..=c1 {
                for id in &self.buckets[row * self.cols + col] {
                    if rect.contains(&self.points[*id as usize]) {
                        out.push(*id);
                    }
                }
            }
        }
    }

    /// Count the points inside the rectangle.
    pub fn count(&self, rect: &Rect) -> usize {
        let mut buf = Vec::new();
        self.query_into(rect, &mut buf);
        buf.len()
    }

    /// Is any point within `radius` (Euclidean) of `p`, other than `exclude`?
    pub fn any_within(&self, p: &Point2, radius: f64, exclude: Option<u32>) -> bool {
        let rect = Rect::centered(p.x, p.y, radius);
        let c0 = self.clamp_col(rect.x_min);
        let c1 = self.clamp_col(rect.x_max);
        let r0 = self.clamp_row(rect.y_min);
        let r1 = self.clamp_row(rect.y_max);
        let r2 = radius * radius;
        for row in r0..=r1 {
            for col in c0..=c1 {
                for id in &self.buckets[row * self.cols + col] {
                    if Some(*id) == exclude {
                        continue;
                    }
                    if self.points[*id as usize].dist2(p) <= r2 {
                        return true;
                    }
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(state: &mut u64) -> f64 {
        *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((*state >> 11) as f64) / ((1u64 << 53) as f64)
    }

    fn random_points(n: usize, seed: u64, world: f64) -> Vec<Point2> {
        let mut state = seed;
        (0..n).map(|_| Point2::new(lcg(&mut state) * world, lcg(&mut state) * world)).collect()
    }

    fn world_grid(points: &[Point2], cell: f64) -> UniformGrid {
        UniformGrid::build(points, Point2::new(0.0, 0.0), Point2::new(100.0, 100.0), cell)
    }

    #[test]
    fn empty_grid() {
        let grid = world_grid(&[], 5.0);
        assert!(grid.is_empty());
        assert_eq!(grid.count(&Rect::centered(50.0, 50.0, 10.0)), 0);
        assert!(!grid.any_within(&Point2::new(0.0, 0.0), 100.0, None));
    }

    #[test]
    fn queries_match_brute_force() {
        let points = random_points(400, 17, 100.0);
        let grid = world_grid(&points, 7.0);
        assert_eq!(grid.len(), 400);
        let mut state = 23u64;
        for _ in 0..100 {
            let rect =
                Rect::centered(lcg(&mut state) * 100.0, lcg(&mut state) * 100.0, lcg(&mut state) * 20.0);
            let mut fast = grid.query(&rect);
            fast.sort_unstable();
            let mut slow: Vec<u32> = points
                .iter()
                .enumerate()
                .filter(|(_, p)| rect.contains(p))
                .map(|(i, _)| i as u32)
                .collect();
            slow.sort_unstable();
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn points_outside_the_declared_world_are_clamped_not_lost() {
        let points = vec![Point2::new(-10.0, -10.0), Point2::new(150.0, 150.0), Point2::new(50.0, 50.0)];
        let grid = world_grid(&points, 10.0);
        assert_eq!(grid.count(&Rect::new(-20.0, 200.0, -20.0, 200.0)), 3);
        assert_eq!(grid.count(&Rect::new(40.0, 60.0, 40.0, 60.0)), 1);
    }

    #[test]
    fn any_within_respects_exclusion_and_radius() {
        let points = vec![Point2::new(10.0, 10.0), Point2::new(11.0, 10.0)];
        let grid = world_grid(&points, 5.0);
        assert!(grid.any_within(&Point2::new(10.0, 10.0), 0.5, None));
        // Excluding the only point in radius → nothing found.
        assert!(!grid.any_within(&Point2::new(10.0, 10.0), 0.5, Some(0)));
        // The other point is 1.0 away.
        assert!(grid.any_within(&Point2::new(10.0, 10.0), 1.0, Some(0)));
        assert!(!grid.any_within(&Point2::new(10.0, 10.0), 0.9, Some(0)));
    }

    #[test]
    #[should_panic(expected = "cell size must be positive")]
    fn zero_cell_size_panics() {
        let _ = world_grid(&[], 0.0);
    }

    #[test]
    fn dims_reflect_world_and_cell_size() {
        let grid = world_grid(&[], 10.0);
        let (cols, rows) = grid.dims();
        assert!(cols >= 10 && rows >= 10);
    }
}
