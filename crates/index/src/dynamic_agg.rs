//! Dynamic one-dimensional aggregate index (maintain instead of rebuild).
//!
//! Section 5.3 of the paper argues that, because unit positions change every
//! clock tick, it is usually cheaper to **rebuild** the aggregate indexes
//! from scratch each tick than to maintain dynamic structures (it cites the
//! survey of Chiang & Tamassia for the extra cost of dynamization).  That is
//! an empirical claim, so this module provides the dynamic counterpart needed
//! to measure it: a randomized balanced search tree (treap) keyed by a
//! coordinate, whose nodes maintain subtree-level divisible accumulators and
//! MIN/MAX summaries.  It supports point insertion, deletion and coordinate
//! updates in `O(log n)` expected time and answers one-dimensional range
//! aggregates (`count`, `sum`, `mean`, `min`, `max`) in `O(log n)`.
//!
//! The `rebuild_vs_dynamic` benchmark compares three per-tick strategies at
//! equal query load:
//!
//! 1. rebuild a static index from scratch (the paper's choice);
//! 2. update this dynamic index with only the positions that changed;
//! 3. scan naively.
//!
//! The structure is one-dimensional because that is where the trade-off is
//! sharpest (the x-sorted base level shared by all of the paper's per-tick
//! indexes); the same conclusion transfers to the layered trees built on top.

use crate::divisible::DivAcc;

/// Key of an entry: the indexed coordinate plus the caller's row id.  The id
/// breaks ties so the tree behaves like a multiset over coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Key {
    coord: f64,
    id: u64,
}

impl Key {
    /// Equality under the same total order as [`Key::less_than`] — the
    /// derived `PartialEq` compares coordinates with IEEE `==`, under which a
    /// NaN-keyed entry could never be found again for removal or update.
    fn same_as(&self, other: &Key) -> bool {
        crate::nan_last_cmp(self.coord, other.coord) == std::cmp::Ordering::Equal
            && self.id == other.id
    }

    fn less_than(&self, other: &Key) -> bool {
        // nan_last_cmp: with the old partial_cmp fallback a NaN coordinate
        // compared "equal" to every coordinate, which is not transitive and
        // silently corrupts the treap's search invariant.  NaNs of either
        // sign order after every ordinary number, so the query pruning below
        // (which treats NaN as "beyond hi") agrees with the tree shape.
        match crate::nan_last_cmp(self.coord, other.coord) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => self.id < other.id,
        }
    }
}

#[derive(Debug, Clone)]
struct Node {
    key: Key,
    priority: u64,
    /// Value carried by the entry (the aggregated channel, e.g. health).
    value: f64,
    left: Option<Box<Node>>,
    right: Option<Box<Node>>,
    /// Subtree summaries.
    count: usize,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
}

impl Node {
    fn new(key: Key, priority: u64, value: f64) -> Box<Node> {
        Box::new(Node {
            key,
            priority,
            value,
            left: None,
            right: None,
            count: 1,
            sum: value,
            sum_sq: value * value,
            min: value,
            max: value,
        })
    }

    fn pull(&mut self) {
        self.count = 1;
        self.sum = self.value;
        self.sum_sq = self.value * self.value;
        self.min = self.value;
        self.max = self.value;
        for child in [self.left.as_deref(), self.right.as_deref()]
            .into_iter()
            .flatten()
        {
            self.count += child.count;
            self.sum += child.sum;
            self.sum_sq += child.sum_sq;
            self.min = self.min.min(child.min);
            self.max = self.max.max(child.max);
        }
    }
}

/// Summary of a one-dimensional range query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeSummary {
    /// Number of entries in the range.
    pub count: usize,
    /// Sum of the entry values.
    pub sum: f64,
    /// Sum of squared entry values.
    pub sum_sq: f64,
    /// Minimum entry value (`+inf` when the range is empty).
    pub min: f64,
    /// Maximum entry value (`-inf` when the range is empty).
    pub max: f64,
}

impl RangeSummary {
    fn empty() -> RangeSummary {
        RangeSummary {
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn absorb(&mut self, node: &Node, whole_subtree: bool) {
        if whole_subtree {
            self.count += node.count;
            self.sum += node.sum;
            self.sum_sq += node.sum_sq;
            self.min = self.min.min(node.min);
            self.max = self.max.max(node.max);
        } else {
            self.count += 1;
            self.sum += node.value;
            self.sum_sq += node.value * node.value;
            self.min = self.min.min(node.value);
            self.max = self.max.max(node.value);
        }
    }

    /// Mean of the entry values; `None` when the range is empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count > 0 {
            Some(self.sum / self.count as f64)
        } else {
            None
        }
    }

    /// Population variance of the entry values; `None` when empty.
    pub fn variance(&self) -> Option<f64> {
        if self.count > 0 {
            let mean = self.sum / self.count as f64;
            Some((self.sum_sq / self.count as f64 - mean * mean).max(0.0))
        } else {
            None
        }
    }

    /// Convert into a single-channel [`DivAcc`] (so downstream code can treat
    /// dynamic and rebuilt indexes uniformly).
    pub fn to_div_acc(&self) -> DivAcc {
        DivAcc {
            count: self.count as f64,
            sum: vec![self.sum],
            sum_sq: vec![self.sum_sq],
        }
    }
}

/// A dynamic aggregate-maintaining treap over `(coordinate, id, value)` rows.
#[derive(Debug, Clone, Default)]
pub struct DynamicAggIndex {
    root: Option<Box<Node>>,
    /// xorshift state for node priorities (deterministic, seedable).
    rng_state: u64,
}

impl DynamicAggIndex {
    /// Create an empty index with the default priority seed.
    pub fn new() -> DynamicAggIndex {
        DynamicAggIndex::with_seed(0x9E37_79B9_7F4A_7C15)
    }

    /// Create an empty index with an explicit priority seed (tests use this to
    /// exercise different tree shapes deterministically).
    pub fn with_seed(seed: u64) -> DynamicAggIndex {
        DynamicAggIndex {
            root: None,
            rng_state: seed | 1,
        }
    }

    /// Bulk-build from `(id, coordinate, value)` rows.
    pub fn from_rows(rows: &[(u64, f64, f64)]) -> DynamicAggIndex {
        let mut index = DynamicAggIndex::new();
        for (id, coord, value) in rows {
            index.insert(*id, *coord, *value);
        }
        index
    }

    fn next_priority(&mut self) -> u64 {
        // xorshift64* — cheap, deterministic, good enough for treap balance.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Number of entries in the index.
    pub fn len(&self) -> usize {
        self.root.as_ref().map_or(0, |n| n.count)
    }

    /// True when the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// Insert an entry.  `id` must not already be present at this coordinate;
    /// (`id`, `coord`) pairs are assumed unique (the engine guarantees this by
    /// removing before re-inserting on movement).
    pub fn insert(&mut self, id: u64, coord: f64, value: f64) {
        let priority = self.next_priority();
        let node = Node::new(Key { coord, id }, priority, value);
        let root = self.root.take();
        self.root = Some(Self::insert_node(root, node));
    }

    fn insert_node(tree: Option<Box<Node>>, node: Box<Node>) -> Box<Node> {
        match tree {
            None => node,
            Some(mut t) => {
                if node.priority > t.priority {
                    let (left, right) = Self::split(Some(t), &node.key);
                    let mut node = node;
                    node.left = left;
                    node.right = right;
                    node.pull();
                    node
                } else {
                    if node.key.less_than(&t.key) {
                        let left = t.left.take();
                        t.left = Some(Self::insert_node(left, node));
                    } else {
                        let right = t.right.take();
                        t.right = Some(Self::insert_node(right, node));
                    }
                    t.pull();
                    t
                }
            }
        }
    }

    /// Split into (< key, >= key).
    fn split(tree: Option<Box<Node>>, key: &Key) -> (Option<Box<Node>>, Option<Box<Node>>) {
        match tree {
            None => (None, None),
            Some(mut t) => {
                if t.key.less_than(key) {
                    let (mid, right) = Self::split(t.right.take(), key);
                    t.right = mid;
                    t.pull();
                    (Some(t), right)
                } else {
                    let (left, mid) = Self::split(t.left.take(), key);
                    t.left = mid;
                    t.pull();
                    (left, Some(t))
                }
            }
        }
    }

    /// Remove the entry with the given id and coordinate.  Returns `true`
    /// when an entry was removed.
    pub fn remove(&mut self, id: u64, coord: f64) -> bool {
        let key = Key { coord, id };
        let root = self.root.take();
        let (new_root, removed) = Self::remove_node(root, &key);
        self.root = new_root;
        removed
    }

    fn remove_node(tree: Option<Box<Node>>, key: &Key) -> (Option<Box<Node>>, bool) {
        match tree {
            None => (None, false),
            Some(mut t) => {
                if t.key.same_as(key) {
                    let merged = Self::merge(t.left.take(), t.right.take());
                    (merged, true)
                } else if key.less_than(&t.key) {
                    let (left, removed) = Self::remove_node(t.left.take(), key);
                    t.left = left;
                    t.pull();
                    (Some(t), removed)
                } else {
                    let (right, removed) = Self::remove_node(t.right.take(), key);
                    t.right = right;
                    t.pull();
                    (Some(t), removed)
                }
            }
        }
    }

    fn merge(left: Option<Box<Node>>, right: Option<Box<Node>>) -> Option<Box<Node>> {
        match (left, right) {
            (None, r) => r,
            (l, None) => l,
            (Some(mut l), Some(mut r)) => {
                if l.priority > r.priority {
                    let lr = l.right.take();
                    l.right = Self::merge(lr, Some(r));
                    l.pull();
                    Some(l)
                } else {
                    let rl = r.left.take();
                    r.left = Self::merge(Some(l), rl);
                    r.pull();
                    Some(r)
                }
            }
        }
    }

    /// Move an entry to a new coordinate (the per-tick position update).
    /// Returns `false` when the entry was not found at `old_coord`.
    pub fn update_coord(&mut self, id: u64, old_coord: f64, new_coord: f64, value: f64) -> bool {
        if self.remove(id, old_coord) {
            self.insert(id, new_coord, value);
            true
        } else {
            false
        }
    }

    /// Change the value of an entry in place (e.g. health changed but the
    /// unit did not move).  Returns `false` when the entry was not found.
    pub fn update_value(&mut self, id: u64, coord: f64, value: f64) -> bool {
        let key = Key { coord, id };
        fn walk(node: &mut Option<Box<Node>>, key: &Key, value: f64) -> bool {
            match node {
                None => false,
                Some(t) => {
                    let found = if t.key.same_as(key) {
                        t.value = value;
                        true
                    } else if key.less_than(&t.key) {
                        walk(&mut t.left, key, value)
                    } else {
                        walk(&mut t.right, key, value)
                    };
                    if found {
                        t.pull();
                    }
                    found
                }
            }
        }
        walk(&mut self.root, &key, value)
    }

    /// Aggregate summary of the entries whose coordinate lies in
    /// `[lo, hi]` (inclusive, like all of the paper's range filters).
    pub fn query(&self, lo: f64, hi: f64) -> RangeSummary {
        let mut summary = RangeSummary::empty();
        if lo <= hi {
            Self::query_node(self.root.as_deref(), lo, hi, &mut summary);
        }
        summary
    }

    fn query_node(node: Option<&Node>, lo: f64, hi: f64, out: &mut RangeSummary) {
        let Some(node) = node else { return };
        // A NaN key never matches `[lo, hi]`; in the `nan_last_cmp` tree
        // order it sits above every ordinary number, so treat it like
        // `coord > hi` (without the guard, both IEEE comparisons are false
        // and the NaN node would be absorbed as if it were in range).
        if node.key.coord < lo {
            Self::query_node(node.right.as_deref(), lo, hi, out);
        } else if node.key.coord.is_nan() || node.key.coord > hi {
            Self::query_node(node.left.as_deref(), lo, hi, out);
        } else {
            // Node is inside the range: its right-left / left-right frontier
            // subtrees need further inspection but whole inner subtrees can be
            // absorbed wholesale.
            out.absorb(node, false);
            Self::absorb_ge(node.left.as_deref(), lo, out);
            Self::absorb_le(node.right.as_deref(), hi, out);
        }
    }

    /// Absorb every entry of `node`'s subtree with coordinate >= lo.
    fn absorb_ge(node: Option<&Node>, lo: f64, out: &mut RangeSummary) {
        let Some(node) = node else { return };
        if node.key.coord >= lo {
            out.absorb(node, false);
            if let Some(right) = node.right.as_deref() {
                out.absorb(right, true);
            }
            Self::absorb_ge(node.left.as_deref(), lo, out);
        } else {
            Self::absorb_ge(node.right.as_deref(), lo, out);
        }
    }

    /// Absorb every entry of `node`'s subtree with coordinate <= hi.
    fn absorb_le(node: Option<&Node>, hi: f64, out: &mut RangeSummary) {
        let Some(node) = node else { return };
        if node.key.coord <= hi {
            out.absorb(node, false);
            if let Some(left) = node.left.as_deref() {
                out.absorb(left, true);
            }
            Self::absorb_le(node.right.as_deref(), hi, out);
        } else {
            Self::absorb_le(node.left.as_deref(), hi, out);
        }
    }

    /// Depth of the tree (diagnostics / balance tests only).
    pub fn depth(&self) -> usize {
        fn depth(node: Option<&Node>) -> usize {
            node.map_or(0, |n| {
                1 + depth(n.left.as_deref()).max(depth(n.right.as_deref()))
            })
        }
        depth(self.root.as_deref())
    }

    /// Verify the treap invariants (heap order on priorities, search order on
    /// keys, correct subtree summaries).  Used by tests and debug assertions.
    pub fn check_invariants(&self) -> bool {
        fn check(node: Option<&Node>) -> Option<(usize, f64, f64, f64, f64, f64)> {
            let node = node?;
            let mut count = 1usize;
            let mut sum = node.value;
            let mut sum_sq = node.value * node.value;
            let mut min = node.value;
            let mut max = node.value;
            if let Some(left) = node.left.as_deref() {
                assert!(left.priority <= node.priority);
                assert!(left.key.less_than(&node.key));
                let (c, s, ss, mn, mx, _) = check(Some(left)).unwrap();
                count += c;
                sum += s;
                sum_sq += ss;
                min = min.min(mn);
                max = max.max(mx);
            }
            if let Some(right) = node.right.as_deref() {
                assert!(right.priority <= node.priority);
                assert!(node.key.less_than(&right.key));
                let (c, s, ss, mn, mx, _) = check(Some(right)).unwrap();
                count += c;
                sum += s;
                sum_sq += ss;
                min = min.min(mn);
                max = max.max(mx);
            }
            assert_eq!(node.count, count);
            assert!((node.sum - sum).abs() < 1e-6);
            assert!((node.sum_sq - sum_sq).abs() < 1e-3);
            assert_eq!(node.min, min);
            assert_eq!(node.max, max);
            Some((count, sum, sum_sq, min, max, 0.0))
        }
        check(self.root.as_deref());
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(state: &mut u64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*state >> 11) as f64) / ((1u64 << 53) as f64)
    }

    /// Reference implementation: a plain vector of rows.
    #[derive(Default)]
    struct Brute {
        rows: Vec<(u64, f64, f64)>,
    }

    impl Brute {
        fn insert(&mut self, id: u64, coord: f64, value: f64) {
            self.rows.push((id, coord, value));
        }
        fn remove(&mut self, id: u64, coord: f64) -> bool {
            let before = self.rows.len();
            self.rows.retain(|(i, c, _)| !(*i == id && *c == coord));
            self.rows.len() != before
        }
        fn query(&self, lo: f64, hi: f64) -> RangeSummary {
            let mut s = RangeSummary::empty();
            for (_, c, v) in &self.rows {
                if *c >= lo && *c <= hi {
                    s.count += 1;
                    s.sum += v;
                    s.sum_sq += v * v;
                    s.min = s.min.min(*v);
                    s.max = s.max.max(*v);
                }
            }
            s
        }
    }

    fn assert_same(a: &RangeSummary, b: &RangeSummary) {
        assert_eq!(a.count, b.count);
        assert!((a.sum - b.sum).abs() < 1e-6);
        assert!((a.sum_sq - b.sum_sq).abs() < 1e-3);
        if a.count > 0 {
            assert_eq!(a.min, b.min);
            assert_eq!(a.max, b.max);
        }
    }

    #[test]
    fn empty_index_answers_empty_summaries() {
        let index = DynamicAggIndex::new();
        assert!(index.is_empty());
        assert_eq!(index.len(), 0);
        let s = index.query(0.0, 100.0);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean(), None);
        assert_eq!(s.variance(), None);
        assert!(index.check_invariants());
    }

    #[test]
    fn insert_query_matches_brute_force() {
        let mut state = 1u64;
        let mut index = DynamicAggIndex::new();
        let mut brute = Brute::default();
        for id in 0..500u64 {
            let coord = lcg(&mut state) * 1000.0;
            let value = lcg(&mut state) * 50.0;
            index.insert(id, coord, value);
            brute.insert(id, coord, value);
        }
        assert_eq!(index.len(), 500);
        assert!(index.check_invariants());
        for _ in 0..200 {
            let a = lcg(&mut state) * 1000.0;
            let b = lcg(&mut state) * 1000.0;
            let (lo, hi) = (a.min(b), a.max(b));
            assert_same(&index.query(lo, hi), &brute.query(lo, hi));
        }
        // Whole-range query covers everything.
        let all = index.query(f64::NEG_INFINITY, f64::INFINITY);
        assert_eq!(all.count, 500);
    }

    #[test]
    fn removal_and_update_match_brute_force() {
        let mut state = 9u64;
        let mut index = DynamicAggIndex::with_seed(42);
        let mut brute = Brute::default();
        let mut coords = Vec::new();
        for id in 0..300u64 {
            let coord = lcg(&mut state) * 200.0;
            let value = (id % 13) as f64;
            coords.push((id, coord, value));
            index.insert(id, coord, value);
            brute.insert(id, coord, value);
        }
        // Remove a third of the rows.
        for (id, coord, _) in coords.iter().filter(|(id, _, _)| id % 3 == 0) {
            assert!(index.remove(*id, *coord));
            assert!(brute.remove(*id, *coord));
        }
        // Move another third (the per-tick position update).
        for entry in coords.iter_mut().filter(|(id, _, _)| id % 3 == 1) {
            let new_coord = lcg(&mut state) * 200.0;
            assert!(index.update_coord(entry.0, entry.1, new_coord, entry.2));
            assert!(brute.remove(entry.0, entry.1));
            brute.insert(entry.0, new_coord, entry.2);
            entry.1 = new_coord;
        }
        assert!(index.check_invariants());
        assert_eq!(index.len(), brute.rows.len());
        for _ in 0..100 {
            let a = lcg(&mut state) * 200.0;
            let b = lcg(&mut state) * 200.0;
            let (lo, hi) = (a.min(b), a.max(b));
            assert_same(&index.query(lo, hi), &brute.query(lo, hi));
        }
    }

    #[test]
    fn removing_missing_entries_is_a_noop() {
        let mut index = DynamicAggIndex::new();
        index.insert(1, 5.0, 10.0);
        assert!(!index.remove(1, 6.0));
        assert!(!index.remove(2, 5.0));
        assert!(index.remove(1, 5.0));
        assert!(index.is_empty());
        assert!(!index.update_coord(1, 5.0, 7.0, 10.0));
        assert!(!index.update_value(1, 5.0, 3.0));
    }

    #[test]
    fn value_updates_are_reflected_in_aggregates() {
        let mut index = DynamicAggIndex::new();
        for id in 0..10u64 {
            index.insert(id, id as f64, 1.0);
        }
        assert!(index.update_value(4, 4.0, 100.0));
        let s = index.query(0.0, 9.0);
        assert_eq!(s.count, 10);
        assert_eq!(s.sum, 9.0 + 100.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.min, 1.0);
        assert!(index.check_invariants());
    }

    #[test]
    fn duplicate_coordinates_are_distinguished_by_id() {
        let mut index = DynamicAggIndex::new();
        for id in 0..50u64 {
            index.insert(id, 7.0, id as f64);
        }
        assert_eq!(index.len(), 50);
        let s = index.query(7.0, 7.0);
        assert_eq!(s.count, 50);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 49.0);
        assert!(index.remove(25, 7.0));
        assert_eq!(index.query(7.0, 7.0).count, 49);
        assert!(index.check_invariants());
    }

    #[test]
    fn tree_stays_balanced() {
        // Sorted insertion order is the worst case for unbalanced BSTs; the
        // treap's random priorities keep the expected depth logarithmic.
        let mut index = DynamicAggIndex::new();
        let n = 4096u64;
        for id in 0..n {
            index.insert(id, id as f64, 1.0);
        }
        let depth = index.depth();
        assert!(depth < 64, "depth {depth} is not O(log n) for n = {n}");
        assert!(index.check_invariants());
    }

    #[test]
    fn summary_statistics() {
        let mut index = DynamicAggIndex::new();
        for (i, v) in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].iter().enumerate() {
            index.insert(i as u64, i as f64, *v);
        }
        let s = index.query(0.0, 7.0);
        assert_eq!(s.mean(), Some(5.0));
        assert!((s.variance().unwrap() - 4.0).abs() < 1e-9);
        let acc = s.to_div_acc();
        assert_eq!(acc.count(), 8.0);
        assert_eq!(acc.channel_sum(0), 40.0);
    }

    #[test]
    fn inverted_and_degenerate_ranges() {
        let index = DynamicAggIndex::from_rows(&[(1, 1.0, 5.0), (2, 2.0, 6.0)]);
        assert_eq!(index.query(3.0, 1.0).count, 0);
        assert_eq!(index.query(2.0, 2.0).count, 1);
        assert_eq!(index.query(2.0, 2.0).sum, 6.0);
    }
}
