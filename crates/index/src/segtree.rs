//! Min/max segment tree used by the sweep-line index (paper §5.3.1, Fig. 9).
//!
//! The tree is built over the x-rank of the data points.  During the sweep,
//! points entering the active band set their leaf to their value and points
//! leaving reset it to the identity (`+∞` for min, `−∞` for max); a range
//! query over the x-range of a unit returns the best value (and which point
//! produced it) in `O(log n)`.

/// A segment tree computing range MIN or MAX with point updates.
#[derive(Debug, Clone)]
pub struct MinMaxSegTree {
    /// Number of leaves (rounded up to a power of two internally).
    size: usize,
    base: usize,
    minimize: bool,
    /// `(value, data id)` per tree slot; identity = (±∞, u32::MAX).
    tree: Vec<(f64, u32)>,
}

impl MinMaxSegTree {
    /// Create a tree over `size` leaves.
    pub fn new(size: usize, minimize: bool) -> MinMaxSegTree {
        let base = size.next_power_of_two().max(1);
        let identity = Self::identity_for(minimize);
        MinMaxSegTree {
            size,
            base,
            minimize,
            tree: vec![identity; 2 * base],
        }
    }

    fn identity_for(minimize: bool) -> (f64, u32) {
        if minimize {
            (f64::INFINITY, u32::MAX)
        } else {
            (f64::NEG_INFINITY, u32::MAX)
        }
    }

    /// The identity element.
    pub fn identity(&self) -> (f64, u32) {
        Self::identity_for(self.minimize)
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.size
    }

    /// True when the tree has no leaves.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    fn better(&self, a: (f64, u32), b: (f64, u32)) -> (f64, u32) {
        let pick_a = if self.minimize {
            a.0 <= b.0
        } else {
            a.0 >= b.0
        };
        if pick_a {
            a
        } else {
            b
        }
    }

    /// Set the leaf `pos` to `(value, id)` and percolate up.
    pub fn update(&mut self, pos: usize, value: f64, id: u32) {
        debug_assert!(pos < self.size);
        let mut i = self.base + pos;
        self.tree[i] = (value, id);
        i /= 2;
        while i >= 1 {
            self.tree[i] = self.better(self.tree[2 * i], self.tree[2 * i + 1]);
            if i == 1 {
                break;
            }
            i /= 2;
        }
    }

    /// Reset the leaf `pos` to the identity value (point leaves the sweep band).
    pub fn clear(&mut self, pos: usize) {
        let (v, id) = self.identity();
        self.update(pos, v, id);
    }

    /// Best `(value, id)` over the leaf range `[lo, hi]` (inclusive); `None`
    /// when the range is empty or only contains identity leaves.
    pub fn query(&self, lo: usize, hi: usize) -> Option<(f64, u32)> {
        if self.size == 0 || lo > hi || lo >= self.size {
            return None;
        }
        let hi = hi.min(self.size - 1);
        let mut best = self.identity();
        let mut l = self.base + lo;
        let mut r = self.base + hi + 1;
        while l < r {
            if l % 2 == 1 {
                best = self.better(best, self.tree[l]);
                l += 1;
            }
            if r % 2 == 1 {
                r -= 1;
                best = self.better(best, self.tree[r]);
            }
            l /= 2;
            r /= 2;
        }
        if best.1 == u32::MAX {
            None
        } else {
            Some(best)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_identity_behaviour() {
        let t = MinMaxSegTree::new(0, true);
        assert!(t.is_empty());
        assert_eq!(t.query(0, 10), None);
        let t = MinMaxSegTree::new(4, true);
        assert_eq!(t.len(), 4);
        assert_eq!(t.query(0, 3), None, "all leaves start at identity");
    }

    #[test]
    fn min_queries() {
        let mut t = MinMaxSegTree::new(8, true);
        t.update(0, 5.0, 100);
        t.update(3, 2.0, 103);
        t.update(7, 9.0, 107);
        assert_eq!(t.query(0, 7), Some((2.0, 103)));
        assert_eq!(t.query(0, 2), Some((5.0, 100)));
        assert_eq!(t.query(4, 6), None);
        assert_eq!(t.query(7, 7), Some((9.0, 107)));
    }

    #[test]
    fn max_queries() {
        let mut t = MinMaxSegTree::new(5, false);
        t.update(1, 5.0, 1);
        t.update(2, 8.0, 2);
        t.update(4, 3.0, 4);
        assert_eq!(t.query(0, 4), Some((8.0, 2)));
        assert_eq!(t.query(3, 4), Some((3.0, 4)));
        assert_eq!(t.query(0, 0), None);
    }

    #[test]
    fn clear_restores_identity() {
        let mut t = MinMaxSegTree::new(4, true);
        t.update(1, 1.0, 11);
        t.update(2, 2.0, 12);
        assert_eq!(t.query(0, 3), Some((1.0, 11)));
        t.clear(1);
        assert_eq!(t.query(0, 3), Some((2.0, 12)));
        t.clear(2);
        assert_eq!(t.query(0, 3), None);
    }

    #[test]
    fn out_of_range_queries_are_clamped() {
        let mut t = MinMaxSegTree::new(3, true);
        t.update(2, 4.0, 2);
        assert_eq!(t.query(0, 100), Some((4.0, 2)));
        assert_eq!(t.query(5, 100), None);
        assert_eq!(t.query(2, 1), None);
    }

    #[test]
    fn updates_overwrite_previous_values() {
        let mut t = MinMaxSegTree::new(2, false);
        t.update(0, 1.0, 0);
        t.update(0, 10.0, 5);
        assert_eq!(t.query(0, 1), Some((10.0, 5)));
        t.update(0, 0.5, 6);
        assert_eq!(t.query(0, 1), Some((0.5, 6)));
    }

    #[test]
    fn matches_brute_force_on_random_operations() {
        fn lcg(state: &mut u64) -> u64 {
            *state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *state >> 33
        }
        let n = 37;
        let mut t = MinMaxSegTree::new(n, true);
        let mut naive = vec![f64::INFINITY; n];
        let mut state = 99u64;
        for step in 0..2000 {
            let pos = (lcg(&mut state) as usize) % n;
            if step % 5 == 4 {
                t.clear(pos);
                naive[pos] = f64::INFINITY;
            } else {
                let v = (lcg(&mut state) % 1000) as f64;
                t.update(pos, v, pos as u32);
                naive[pos] = v;
            }
            let lo = (lcg(&mut state) as usize) % n;
            let hi = lo + (lcg(&mut state) as usize) % (n - lo);
            let expected = naive[lo..=hi].iter().cloned().fold(f64::INFINITY, f64::min);
            match t.query(lo, hi) {
                Some((v, _)) => assert_eq!(v, expected),
                None => assert_eq!(expected, f64::INFINITY),
            }
        }
    }
}
