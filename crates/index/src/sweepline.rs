//! Sweep-line MIN/MAX for constant-size ranges (paper §5.3.1, Figure 9).
//!
//! Min and max are not divisible, so the prefix trick of the aggregate range
//! tree does not apply.  The paper observes that in games the *size* of the
//! range is usually constant across the querying units (all archers share the
//! same weapon range), which enables a sweep-line algorithm: order the
//! queries by `y`, slide a band of height `2·ry` over the data points — a
//! point enters the band `ry` before its `y` coordinate is reached and leaves
//! `ry` after — and keep the active points in a segment tree ordered by `x`.
//! Each query is then a single `O(log n)` range-min/max over its `x`-range.
//! Total cost: `O((n + q)·log n)` instead of `O(q·n)`.

use crate::segtree::MinMaxSegTree;
use crate::Point2;

/// A batch min/max-in-rectangle computation over fixed-size ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepKind {
    /// Compute the minimum value in range.
    Min,
    /// Compute the maximum value in range.
    Max,
}

/// Answer, for every query point, the best `(value, data index)` among data
/// points within the axis-aligned rectangle `|x−qx| ≤ rx ∧ |y−qy| ≤ ry`.
///
/// * `data` / `values` — positions and values of the data points (same length);
/// * `queries` — positions of the querying units;
/// * `rx`, `ry` — the constant half-extent of the range;
/// * `kind` — min or max.
///
/// Returns one `Option<(value, data index)>` per query, `None` when no data
/// point is in range.
pub fn sweep_min_max(
    data: &[Point2],
    values: &[f64],
    queries: &[Point2],
    rx: f64,
    ry: f64,
    kind: SweepKind,
) -> Vec<Option<(f64, u32)>> {
    assert_eq!(
        data.len(),
        values.len(),
        "each data point needs exactly one value"
    );
    let mut results = vec![None; queries.len()];
    if data.is_empty() || queries.is_empty() {
        return results;
    }
    let minimize = kind == SweepKind::Min;

    // A data point with a NaN coordinate (of either sign) satisfies no band
    // test (`|dx| ≤ rx ∧ |dy| ≤ ry` is false under NaN), so exclude it from
    // the event lists outright — inside them it would break the sorted-run
    // invariants the sweep and its binary searches rely on.
    let live: Vec<u32> = (0..data.len() as u32)
        .filter(|i| {
            let p = &data[*i as usize];
            !p.x.is_nan() && !p.y.is_nan()
        })
        .collect();

    // Rank live data points by x so each occupies one segment-tree leaf.
    let mut x_order = live.clone();
    x_order.sort_by(|a, b| crate::nan_last_cmp(data[*a as usize].x, data[*b as usize].x));
    let sorted_x: Vec<f64> = x_order.iter().map(|i| data[*i as usize].x).collect();
    // rank_of[data index] = leaf position (only assigned for live points,
    // which are the only ones the event lists can activate).
    let mut rank_of = vec![0usize; data.len()];
    for (rank, id) in x_order.iter().enumerate() {
        rank_of[*id as usize] = rank;
    }

    // Enter events (y - ry) and exit events (y + ry), both sorted ascending.
    let mut enter = live.clone();
    enter.sort_by(|a, b| crate::nan_last_cmp(data[*a as usize].y - ry, data[*b as usize].y - ry));
    let mut exit = live;
    exit.sort_by(|a, b| crate::nan_last_cmp(data[*a as usize].y + ry, data[*b as usize].y + ry));

    // Queries sorted by y.
    let mut q_order: Vec<u32> = (0..queries.len() as u32).collect();
    q_order.sort_by(|a, b| crate::nan_last_cmp(queries[*a as usize].y, queries[*b as usize].y));

    let mut tree = MinMaxSegTree::new(data.len(), minimize);
    let (mut ei, mut xi) = (0usize, 0usize);
    for q_id in q_order {
        let q = &queries[q_id as usize];
        // `|dx| ≤ rx ∧ |dy| ≤ ry` is false for every data point when a query
        // coordinate is NaN; skip before touching the band state (the band
        // comparisons below would neither activate nor deactivate anything,
        // leaving a stale active set to answer this query).
        if q.x.is_nan() || q.y.is_nan() {
            continue;
        }
        // Activate every data point whose band start is at or below the query.
        while ei < enter.len() {
            let d = enter[ei] as usize;
            if data[d].y - ry <= q.y {
                tree.update(rank_of[d], values[d], d as u32);
                ei += 1;
            } else {
                break;
            }
        }
        // Deactivate every data point whose band has ended before the query.
        while xi < exit.len() {
            let d = exit[xi] as usize;
            if data[d].y + ry < q.y {
                tree.clear(rank_of[d]);
                xi += 1;
            } else {
                break;
            }
        }
        // Range query over the x extent.
        let lo = sorted_x.partition_point(|v| *v < q.x - rx);
        let hi = sorted_x.partition_point(|v| *v <= q.x + rx);
        if lo < hi {
            results[q_id as usize] = tree.query(lo, hi - 1);
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(state: &mut u64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*state >> 11) as f64) / ((1u64 << 53) as f64)
    }

    fn random_points(n: usize, seed: u64, world: f64) -> Vec<Point2> {
        let mut state = seed;
        (0..n)
            .map(|_| Point2::new(lcg(&mut state) * world, lcg(&mut state) * world))
            .collect()
    }

    fn brute(
        data: &[Point2],
        values: &[f64],
        q: &Point2,
        rx: f64,
        ry: f64,
        kind: SweepKind,
    ) -> Option<(f64, u32)> {
        let mut best: Option<(f64, u32)> = None;
        for (i, (p, v)) in data.iter().zip(values).enumerate() {
            if (p.x - q.x).abs() <= rx && (p.y - q.y).abs() <= ry {
                let better = match (best, kind) {
                    (None, _) => true,
                    (Some((bv, _)), SweepKind::Min) => *v < bv,
                    (Some((bv, _)), SweepKind::Max) => *v > bv,
                };
                if better {
                    best = Some((*v, i as u32));
                }
            }
        }
        best
    }

    #[test]
    fn empty_inputs() {
        assert!(
            sweep_min_max(&[], &[], &[Point2::new(0.0, 0.0)], 1.0, 1.0, SweepKind::Min)
                .iter()
                .all(Option::is_none)
        );
        assert!(sweep_min_max(
            &[Point2::new(0.0, 0.0)],
            &[1.0],
            &[],
            1.0,
            1.0,
            SweepKind::Min
        )
        .is_empty());
    }

    #[test]
    fn single_point_in_and_out_of_range() {
        let data = vec![Point2::new(5.0, 5.0)];
        let values = vec![7.0];
        let queries = vec![Point2::new(5.5, 5.5), Point2::new(20.0, 20.0)];
        let res = sweep_min_max(&data, &values, &queries, 1.0, 1.0, SweepKind::Min);
        assert_eq!(res[0], Some((7.0, 0)));
        assert_eq!(res[1], None);
    }

    #[test]
    fn min_matches_brute_force_on_random_data() {
        let data = random_points(300, 4, 80.0);
        let values: Vec<f64> = (0..300).map(|i| ((i * 37) % 101) as f64).collect();
        let queries = random_points(200, 9, 80.0);
        let (rx, ry) = (7.0, 5.0);
        let fast = sweep_min_max(&data, &values, &queries, rx, ry, SweepKind::Min);
        for (qi, q) in queries.iter().enumerate() {
            let slow = brute(&data, &values, q, rx, ry, SweepKind::Min);
            match (fast[qi], slow) {
                (Some((fv, fid)), Some((sv, _))) => {
                    assert_eq!(fv, sv, "query {qi}");
                    assert_eq!(values[fid as usize], fv);
                }
                (None, None) => {}
                other => panic!("mismatch at query {qi}: {other:?}"),
            }
        }
    }

    #[test]
    fn max_matches_brute_force_on_random_data() {
        let data = random_points(250, 21, 60.0);
        let values: Vec<f64> = (0..250).map(|i| ((i * 13) % 997) as f64).collect();
        let queries = random_points(150, 22, 60.0);
        let (rx, ry) = (4.0, 9.0);
        let fast = sweep_min_max(&data, &values, &queries, rx, ry, SweepKind::Max);
        for (qi, q) in queries.iter().enumerate() {
            let slow = brute(&data, &values, q, rx, ry, SweepKind::Max);
            assert_eq!(fast[qi].map(|r| r.0), slow.map(|r| r.0), "query {qi}");
        }
    }

    #[test]
    fn inclusive_band_boundaries() {
        // Data point exactly ry away in y and rx away in x must be included.
        let data = vec![Point2::new(10.0, 10.0)];
        let values = vec![3.0];
        let queries = vec![Point2::new(12.0, 13.0)];
        let res = sweep_min_max(&data, &values, &queries, 2.0, 3.0, SweepKind::Min);
        assert_eq!(res[0], Some((3.0, 0)));
    }

    #[test]
    fn queries_identical_to_data_positions() {
        // The classic "weakest unit in range" query where queriers are also
        // data points (health as the value).
        let pts = random_points(100, 31, 30.0);
        let health: Vec<f64> = (0..100).map(|i| (i % 17) as f64 + 1.0).collect();
        let res = sweep_min_max(&pts, &health, &pts, 6.0, 6.0, SweepKind::Min);
        for (qi, q) in pts.iter().enumerate() {
            let slow = brute(&pts, &health, q, 6.0, 6.0, SweepKind::Min);
            assert_eq!(res[qi].map(|r| r.0), slow.map(|r| r.0));
        }
    }

    #[test]
    #[should_panic(expected = "exactly one value")]
    fn mismatched_lengths_panic() {
        let _ = sweep_min_max(&[Point2::new(0.0, 0.0)], &[], &[], 1.0, 1.0, SweepKind::Min);
    }
}
