//! Bucket PR quadtree with per-node aggregate summaries.
//!
//! The paper's primary index for divisible aggregates is the layered range
//! tree of Figure 8 ([`crate::agg_tree`]).  Game engines in practice often
//! prefer hierarchical spatial subdivisions because they adapt to the heavy
//! clustering of combat formations and can answer **both** divisible
//! aggregates and MIN/MAX aggregates exactly from the same structure.  This
//! module provides such a structure as an ablation point: an
//! [`AggQuadTree`] — a point-region quadtree whose internal nodes carry a
//! [`DivAcc`] accumulator plus per-channel minima and maxima over their
//! subtree.
//!
//! A rectangle query decomposes the region into nodes that are either fully
//! contained (their summary is used wholesale) or partially overlapped
//! (recursion continues, down to leaf buckets whose points are tested
//! individually).  On clustered data the number of visited nodes is
//! `O(log n + p)` where `p` is the number of partially overlapped leaves, so
//! queries behave like the range tree for divisible aggregates while also
//! supporting exact MIN/MAX — the case the paper otherwise handles with the
//! sweep-line of Figure 9 (which requires the query range to be constant).

use crate::agg_tree::AggEntry;
use crate::divisible::DivAcc;
use crate::{Point2, Rect};

const NO_CHILD: u32 = u32::MAX;

/// Per-subtree summary: a divisible accumulator plus channel-wise extrema.
#[derive(Debug, Clone)]
struct Summary {
    acc: DivAcc,
    min: Vec<f64>,
    max: Vec<f64>,
}

impl Summary {
    fn identity(channels: usize) -> Summary {
        Summary {
            acc: DivAcc::identity(channels),
            min: vec![f64::INFINITY; channels],
            max: vec![f64::NEG_INFINITY; channels],
        }
    }

    fn insert(&mut self, values: &[f64]) {
        self.acc.insert(values);
        for (i, v) in values.iter().enumerate() {
            if *v < self.min[i] {
                self.min[i] = *v;
            }
            if *v > self.max[i] {
                self.max[i] = *v;
            }
        }
    }
}

#[derive(Debug, Clone)]
struct Node {
    /// Bounding square of the node.
    bounds: Rect,
    /// Children in NW, NE, SW, SE order; `NO_CHILD` when absent (leaves have
    /// all four absent).
    children: [u32; 4],
    /// Ids of the points stored directly in this node (non-empty only for
    /// leaves).
    points: Vec<u32>,
    /// Aggregate summary of the whole subtree.
    summary: Summary,
}

/// A bucket point-region quadtree whose nodes carry aggregate summaries.
#[derive(Debug, Clone)]
pub struct AggQuadTree {
    nodes: Vec<Node>,
    entries: Vec<AggEntry>,
    channels: usize,
    bucket: usize,
    root: u32,
}

/// Result of a MIN/MAX query: the best value and the id of a row attaining it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Extremum {
    /// The extreme channel value.
    pub value: f64,
    /// Id (index into the build slice) of a point attaining it.
    pub id: u32,
}

impl AggQuadTree {
    /// Build a quadtree over the entries.
    ///
    /// * `channels` — number of aggregate channels carried by each entry
    ///   (must match `AggEntry::values.len()`).
    /// * `bucket` — leaf capacity before a node splits (8–16 is a good
    ///   default for per-tick rebuilds).
    pub fn build(entries: &[AggEntry], channels: usize, bucket: usize) -> AggQuadTree {
        let bucket = bucket.max(1);
        let mut tree = AggQuadTree {
            nodes: Vec::new(),
            entries: entries.to_vec(),
            channels,
            bucket,
            root: NO_CHILD,
        };
        if entries.is_empty() {
            return tree;
        }
        // World bounds: the tight bounding square of the points, slightly
        // inflated so boundary points never fall outside due to rounding.
        let mut x_min = f64::INFINITY;
        let mut x_max = f64::NEG_INFINITY;
        let mut y_min = f64::INFINITY;
        let mut y_max = f64::NEG_INFINITY;
        for e in entries {
            x_min = x_min.min(e.point.x);
            x_max = x_max.max(e.point.x);
            y_min = y_min.min(e.point.y);
            y_max = y_max.max(e.point.y);
        }
        let side = ((x_max - x_min).max(y_max - y_min)).max(1e-9) * 1.000_001;
        let bounds = Rect::new(x_min, x_min + side, y_min, y_min + side);
        let root = tree.new_node(bounds);
        tree.root = root;
        for id in 0..entries.len() as u32 {
            tree.insert(root, id, 0);
        }
        tree
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the tree indexes no points.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of aggregate channels carried per entry.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Number of tree nodes (exposed for ablation reporting).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn new_node(&mut self, bounds: Rect) -> u32 {
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node {
            bounds,
            children: [NO_CHILD; 4],
            points: Vec::new(),
            summary: Summary::identity(self.channels),
        });
        idx
    }

    fn quadrant_bounds(bounds: &Rect, quadrant: usize) -> Rect {
        let mx = (bounds.x_min + bounds.x_max) / 2.0;
        let my = (bounds.y_min + bounds.y_max) / 2.0;
        match quadrant {
            0 => Rect::new(bounds.x_min, mx, my, bounds.y_max), // NW
            1 => Rect::new(mx, bounds.x_max, my, bounds.y_max), // NE
            2 => Rect::new(bounds.x_min, mx, bounds.y_min, my), // SW
            _ => Rect::new(mx, bounds.x_max, bounds.y_min, my), // SE
        }
    }

    fn quadrant_of(bounds: &Rect, p: &Point2) -> usize {
        let mx = (bounds.x_min + bounds.x_max) / 2.0;
        let my = (bounds.y_min + bounds.y_max) / 2.0;
        match (p.x < mx, p.y < my) {
            (true, false) => 0,
            (false, false) => 1,
            (true, true) => 2,
            (false, true) => 3,
        }
    }

    /// Maximum subdivision depth; beyond it points pile up in one leaf.  This
    /// bounds the tree height when many units share a position (duplicate
    /// points are common: units standing on the same tile).
    const MAX_DEPTH: usize = 32;

    fn insert(&mut self, node_idx: u32, id: u32, depth: usize) {
        let point = self.entries[id as usize].point;
        let values = self.entries[id as usize].values.clone();
        self.nodes[node_idx as usize].summary.insert(&values);

        let is_leaf = self.nodes[node_idx as usize].children == [NO_CHILD; 4];
        if is_leaf {
            self.nodes[node_idx as usize].points.push(id);
            let overflow = self.nodes[node_idx as usize].points.len() > self.bucket;
            if overflow && depth < Self::MAX_DEPTH {
                self.split(node_idx, depth);
            }
            return;
        }
        let bounds = self.nodes[node_idx as usize].bounds;
        let q = Self::quadrant_of(&bounds, &point);
        let child = self.ensure_child(node_idx, q);
        self.insert_into_child(child, id, depth + 1);
    }

    /// Insert without re-adding to the parent summary (used by `split`, where
    /// the parent summary already includes the point).
    fn insert_into_child(&mut self, node_idx: u32, id: u32, depth: usize) {
        self.insert(node_idx, id, depth);
    }

    fn ensure_child(&mut self, node_idx: u32, quadrant: usize) -> u32 {
        if self.nodes[node_idx as usize].children[quadrant] != NO_CHILD {
            return self.nodes[node_idx as usize].children[quadrant];
        }
        let bounds = Self::quadrant_bounds(&self.nodes[node_idx as usize].bounds, quadrant);
        let child = self.new_node(bounds);
        self.nodes[node_idx as usize].children[quadrant] = child;
        child
    }

    fn split(&mut self, node_idx: u32, depth: usize) {
        let points = std::mem::take(&mut self.nodes[node_idx as usize].points);
        let bounds = self.nodes[node_idx as usize].bounds;
        for id in points {
            let p = self.entries[id as usize].point;
            let q = Self::quadrant_of(&bounds, &p);
            let child = self.ensure_child(node_idx, q);
            // The parent's summary already accounts for these points; only the
            // child's summary chain needs updating, which `insert` does.
            self.insert_into_child(child, id, depth + 1);
        }
    }

    fn node_rect_relation(node: &Node, rect: &Rect) -> Relation {
        let b = &node.bounds;
        if b.x_min > rect.x_max
            || b.x_max < rect.x_min
            || b.y_min > rect.y_max
            || b.y_max < rect.y_min
        {
            return Relation::Disjoint;
        }
        if b.x_min >= rect.x_min
            && b.x_max <= rect.x_max
            && b.y_min >= rect.y_min
            && b.y_max <= rect.y_max
        {
            return Relation::Contained;
        }
        Relation::Partial
    }

    /// Divisible aggregate of all points inside `rect`.
    pub fn query(&self, rect: &Rect) -> DivAcc {
        let mut acc = DivAcc::identity(self.channels);
        if self.root != NO_CHILD && !rect.is_empty() {
            self.query_rec(self.root, rect, &mut acc);
        }
        acc
    }

    fn query_rec(&self, node_idx: u32, rect: &Rect, acc: &mut DivAcc) {
        let node = &self.nodes[node_idx as usize];
        if node.summary.acc.count == 0.0 {
            return;
        }
        match Self::node_rect_relation(node, rect) {
            Relation::Disjoint => {}
            Relation::Contained => acc.merge(&node.summary.acc),
            Relation::Partial => {
                for &id in &node.points {
                    let e = &self.entries[id as usize];
                    if rect.contains(&e.point) {
                        acc.insert(&e.values);
                    }
                }
                for &child in &node.children {
                    if child != NO_CHILD {
                        self.query_rec(child, rect, acc);
                    }
                }
            }
        }
    }

    /// Number of points inside `rect`.
    pub fn count(&self, rect: &Rect) -> usize {
        self.query(rect).count() as usize
    }

    /// Exact minimum of a channel over the points inside `rect`, together with
    /// the id of a point attaining it.  Returns `None` when no point matches.
    pub fn min_in_rect(&self, rect: &Rect, channel: usize) -> Option<Extremum> {
        self.extremum(rect, channel, true)
    }

    /// Exact maximum of a channel over the points inside `rect`.
    pub fn max_in_rect(&self, rect: &Rect, channel: usize) -> Option<Extremum> {
        self.extremum(rect, channel, false)
    }

    fn extremum(&self, rect: &Rect, channel: usize, minimize: bool) -> Option<Extremum> {
        if self.root == NO_CHILD || rect.is_empty() {
            return None;
        }
        let mut best: Option<Extremum> = None;
        self.extremum_rec(self.root, rect, channel, minimize, &mut best);
        best
    }

    fn improves(best: &Option<Extremum>, candidate: f64, minimize: bool) -> bool {
        match best {
            None => true,
            Some(b) => {
                if minimize {
                    candidate < b.value
                } else {
                    candidate > b.value
                }
            }
        }
    }

    fn extremum_rec(
        &self,
        node_idx: u32,
        rect: &Rect,
        channel: usize,
        minimize: bool,
        best: &mut Option<Extremum>,
    ) {
        let node = &self.nodes[node_idx as usize];
        if node.summary.acc.count == 0.0 {
            return;
        }
        // Prune: the whole subtree cannot improve on the current best.
        let bound = if minimize {
            node.summary.min[channel]
        } else {
            node.summary.max[channel]
        };
        if !Self::improves(best, bound, minimize) {
            return;
        }
        match Self::node_rect_relation(node, rect) {
            Relation::Disjoint => {}
            Relation::Contained => {
                // The subtree bound is attainable; descend to find the id.
                self.extremum_descend(node_idx, channel, minimize, best);
            }
            Relation::Partial => {
                for &id in &node.points {
                    let e = &self.entries[id as usize];
                    if rect.contains(&e.point) && Self::improves(best, e.values[channel], minimize)
                    {
                        *best = Some(Extremum {
                            value: e.values[channel],
                            id,
                        });
                    }
                }
                for &child in &node.children {
                    if child != NO_CHILD {
                        self.extremum_rec(child, rect, channel, minimize, best);
                    }
                }
            }
        }
    }

    /// Descend into a fully contained subtree looking for the extreme value.
    fn extremum_descend(
        &self,
        node_idx: u32,
        channel: usize,
        minimize: bool,
        best: &mut Option<Extremum>,
    ) {
        let node = &self.nodes[node_idx as usize];
        let bound = if minimize {
            node.summary.min[channel]
        } else {
            node.summary.max[channel]
        };
        if !Self::improves(best, bound, minimize) {
            return;
        }
        for &id in &node.points {
            let v = self.entries[id as usize].values[channel];
            if Self::improves(best, v, minimize) {
                *best = Some(Extremum { value: v, id });
            }
        }
        for &child in &node.children {
            if child != NO_CHILD {
                self.extremum_descend(child, channel, minimize, best);
            }
        }
    }

    /// Enumerate the ids of all points inside `rect` (ascending order).
    pub fn query_points(&self, rect: &Rect) -> Vec<u32> {
        let mut out = Vec::new();
        if self.root != NO_CHILD && !rect.is_empty() {
            self.enumerate_rec(self.root, rect, &mut out);
        }
        out.sort_unstable();
        out
    }

    fn enumerate_rec(&self, node_idx: u32, rect: &Rect, out: &mut Vec<u32>) {
        let node = &self.nodes[node_idx as usize];
        if node.summary.acc.count == 0.0 {
            return;
        }
        match Self::node_rect_relation(node, rect) {
            Relation::Disjoint => {}
            Relation::Contained => self.collect_all(node_idx, out),
            Relation::Partial => {
                for &id in &node.points {
                    if rect.contains(&self.entries[id as usize].point) {
                        out.push(id);
                    }
                }
                for &child in &node.children {
                    if child != NO_CHILD {
                        self.enumerate_rec(child, rect, out);
                    }
                }
            }
        }
    }

    fn collect_all(&self, node_idx: u32, out: &mut Vec<u32>) {
        let node = &self.nodes[node_idx as usize];
        out.extend_from_slice(&node.points);
        for &child in &node.children {
            if child != NO_CHILD {
                self.collect_all(child, out);
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Relation {
    Disjoint,
    Contained,
    Partial,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(state: &mut u64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*state >> 11) as f64) / ((1u64 << 53) as f64)
    }

    /// Clustered entries with two channels: [health, strength].
    fn entries(n: usize, seed: u64, world: f64) -> Vec<AggEntry> {
        let mut state = seed;
        (0..n)
            .map(|i| {
                let cx = ((i % 5) as f64 + 0.5) * world / 5.0;
                let cy = ((i % 3) as f64 + 0.5) * world / 3.0;
                let p = Point2::new(
                    cx + (lcg(&mut state) - 0.5) * world / 8.0,
                    cy + (lcg(&mut state) - 0.5) * world / 8.0,
                );
                AggEntry::new(p, vec![(i % 37) as f64, lcg(&mut state) * 10.0])
            })
            .collect()
    }

    fn brute_acc(entries: &[AggEntry], rect: &Rect) -> DivAcc {
        let mut acc = DivAcc::identity(2);
        for e in entries {
            if rect.contains(&e.point) {
                acc.insert(&e.values);
            }
        }
        acc
    }

    #[test]
    fn empty_tree_answers_identity() {
        let tree = AggQuadTree::build(&[], 2, 8);
        assert!(tree.is_empty());
        assert_eq!(tree.len(), 0);
        let acc = tree.query(&Rect::new(0.0, 10.0, 0.0, 10.0));
        assert_eq!(acc.count(), 0.0);
        assert_eq!(tree.min_in_rect(&Rect::new(0.0, 10.0, 0.0, 10.0), 0), None);
        assert!(tree
            .query_points(&Rect::new(0.0, 10.0, 0.0, 10.0))
            .is_empty());
    }

    #[test]
    fn single_point_tree() {
        let e = vec![AggEntry::new(Point2::new(3.0, 4.0), vec![7.0])];
        let tree = AggQuadTree::build(&e, 1, 4);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.count(&Rect::centered(3.0, 4.0, 1.0)), 1);
        assert_eq!(tree.count(&Rect::centered(30.0, 40.0, 1.0)), 0);
        let m = tree.min_in_rect(&Rect::centered(3.0, 4.0, 1.0), 0).unwrap();
        assert_eq!(m.value, 7.0);
        assert_eq!(m.id, 0);
    }

    #[test]
    fn divisible_query_matches_brute_force() {
        let es = entries(800, 11, 200.0);
        let tree = AggQuadTree::build(&es, 2, 8);
        let mut state = 99u64;
        for _ in 0..200 {
            let cx = lcg(&mut state) * 200.0;
            let cy = lcg(&mut state) * 200.0;
            let r = lcg(&mut state) * 40.0;
            let rect = Rect::centered(cx, cy, r);
            let fast = tree.query(&rect);
            let slow = brute_acc(&es, &rect);
            assert_eq!(fast.count(), slow.count());
            assert!((fast.channel_sum(0) - slow.channel_sum(0)).abs() < 1e-6);
            assert!((fast.channel_sum(1) - slow.channel_sum(1)).abs() < 1e-6);
        }
    }

    #[test]
    fn min_max_queries_match_brute_force() {
        let es = entries(600, 23, 150.0);
        let tree = AggQuadTree::build(&es, 2, 8);
        let mut state = 3u64;
        for _ in 0..200 {
            let cx = lcg(&mut state) * 150.0;
            let cy = lcg(&mut state) * 150.0;
            let r = 5.0 + lcg(&mut state) * 30.0;
            let rect = Rect::centered(cx, cy, r);
            let matching: Vec<&AggEntry> = es.iter().filter(|e| rect.contains(&e.point)).collect();
            let fast_min = tree.min_in_rect(&rect, 0);
            let fast_max = tree.max_in_rect(&rect, 0);
            if matching.is_empty() {
                assert_eq!(fast_min, None);
                assert_eq!(fast_max, None);
            } else {
                let slow_min = matching
                    .iter()
                    .map(|e| e.values[0])
                    .fold(f64::INFINITY, f64::min);
                let slow_max = matching
                    .iter()
                    .map(|e| e.values[0])
                    .fold(f64::NEG_INFINITY, f64::max);
                assert_eq!(fast_min.unwrap().value, slow_min);
                assert_eq!(fast_max.unwrap().value, slow_max);
                // The returned id must attain the value and lie in the rect.
                let id = fast_min.unwrap().id as usize;
                assert_eq!(es[id].values[0], slow_min);
                assert!(rect.contains(&es[id].point));
            }
        }
    }

    #[test]
    fn enumeration_matches_brute_force() {
        let es = entries(400, 5, 100.0);
        let tree = AggQuadTree::build(&es, 2, 4);
        let mut state = 31u64;
        for _ in 0..100 {
            let rect = Rect::centered(
                lcg(&mut state) * 100.0,
                lcg(&mut state) * 100.0,
                lcg(&mut state) * 25.0,
            );
            let fast = tree.query_points(&rect);
            let slow: Vec<u32> = es
                .iter()
                .enumerate()
                .filter(|(_, e)| rect.contains(&e.point))
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn duplicate_positions_do_not_blow_up_depth() {
        // 500 units standing on the same tile: MAX_DEPTH keeps the structure
        // shallow and queries stay correct.
        let mut es: Vec<AggEntry> = (0..500)
            .map(|i| AggEntry::new(Point2::new(7.0, 7.0), vec![i as f64]))
            .collect();
        es.push(AggEntry::new(Point2::new(90.0, 90.0), vec![1000.0]));
        let tree = AggQuadTree::build(&es, 1, 4);
        assert_eq!(tree.count(&Rect::centered(7.0, 7.0, 0.5)), 500);
        assert_eq!(tree.count(&Rect::new(0.0, 100.0, 0.0, 100.0)), 501);
        assert_eq!(
            tree.min_in_rect(&Rect::centered(7.0, 7.0, 0.5), 0)
                .unwrap()
                .value,
            0.0
        );
        assert_eq!(
            tree.max_in_rect(&Rect::centered(7.0, 7.0, 0.5), 0)
                .unwrap()
                .value,
            499.0
        );
    }

    #[test]
    fn whole_world_query_equals_total() {
        let es = entries(300, 41, 80.0);
        let tree = AggQuadTree::build(&es, 2, 8);
        let rect = Rect::new(-1e9, 1e9, -1e9, 1e9);
        let acc = tree.query(&rect);
        assert_eq!(acc.count(), 300.0);
        let total: f64 = es.iter().map(|e| e.values[1]).sum();
        assert!((acc.channel_sum(1) - total).abs() < 1e-6);
        assert_eq!(tree.query_points(&rect).len(), 300);
    }

    #[test]
    fn empty_rect_yields_nothing() {
        let es = entries(50, 2, 30.0);
        let tree = AggQuadTree::build(&es, 2, 8);
        let rect = Rect::new(10.0, 5.0, 0.0, 30.0);
        assert!(rect.is_empty());
        assert_eq!(tree.query(&rect).count(), 0.0);
        assert_eq!(tree.min_in_rect(&rect, 0), None);
    }

    #[test]
    fn node_count_is_linear_in_points() {
        let es = entries(2000, 77, 500.0);
        let tree = AggQuadTree::build(&es, 2, 8);
        // A bucket quadtree over n points has O(n) nodes; allow generous slack.
        assert!(
            tree.node_count() < 4 * es.len(),
            "node_count = {}",
            tree.node_count()
        );
        assert_eq!(tree.channels(), 2);
    }
}
