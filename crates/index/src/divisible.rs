//! Accumulators for divisible aggregates (Definition 5.1).
//!
//! An aggregate `agg` is *divisible* when `agg(A \ B)` can be computed from
//! `agg(A)` and `agg(B)` for `B ⊆ A`.  Count, sum and all statistical moments
//! are divisible; min and max are not.  The [`DivAcc`] accumulator carries the
//! count, per-channel sums and per-channel sums of squares over a set of
//! weighted points, which is enough to answer every divisible aggregate the
//! battle simulation uses: counts, sums, averages (centroids) and standard
//! deviations.

/// Accumulator over a multiset of rows, each contributing one value per
/// *channel* (e.g. channel 0 = x position, channel 1 = y position,
/// channel 2 = strength).
#[derive(Debug, Clone, PartialEq)]
pub struct DivAcc {
    /// Number of rows accumulated.
    pub count: f64,
    /// Per-channel sums.
    pub sum: Vec<f64>,
    /// Per-channel sums of squares (for variance / standard deviation).
    pub sum_sq: Vec<f64>,
}

impl DivAcc {
    /// The identity accumulator for `channels` channels.
    pub fn identity(channels: usize) -> DivAcc {
        DivAcc {
            count: 0.0,
            sum: vec![0.0; channels],
            sum_sq: vec![0.0; channels],
        }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.sum.len()
    }

    /// Reset to the identity for `channels` channels, keeping the existing
    /// allocations when the channel count is unchanged.
    pub fn reset(&mut self, channels: usize) {
        self.count = 0.0;
        self.sum.clear();
        self.sum.resize(channels, 0.0);
        self.sum_sq.clear();
        self.sum_sq.resize(channels, 0.0);
    }

    /// Accumulate one row with the given channel values.
    pub fn insert(&mut self, values: &[f64]) {
        debug_assert_eq!(values.len(), self.sum.len());
        self.count += 1.0;
        for (i, v) in values.iter().enumerate() {
            self.sum[i] += v;
            self.sum_sq[i] += v * v;
        }
    }

    /// Merge another accumulator into this one (`agg(A ⊎ B)`).
    pub fn merge(&mut self, other: &DivAcc) {
        debug_assert_eq!(self.sum.len(), other.sum.len());
        self.count += other.count;
        for i in 0..self.sum.len() {
            self.sum[i] += other.sum[i];
            self.sum_sq[i] += other.sum_sq[i];
        }
    }

    /// Subtract another accumulator (`agg(A \ B)` for `B ⊆ A`) — the operation
    /// that makes these aggregates divisible and enables the prefix trick of
    /// Figure 8.
    pub fn subtract(&mut self, other: &DivAcc) {
        debug_assert_eq!(self.sum.len(), other.sum.len());
        self.count -= other.count;
        for i in 0..self.sum.len() {
            self.sum[i] -= other.sum[i];
            self.sum_sq[i] -= other.sum_sq[i];
        }
    }

    /// `self - other` without mutating.
    pub fn difference(&self, other: &DivAcc) -> DivAcc {
        let mut out = self.clone();
        out.subtract(other);
        out
    }

    /// The count aggregate.
    pub fn count(&self) -> f64 {
        self.count
    }

    /// The sum of a channel.
    pub fn channel_sum(&self, channel: usize) -> f64 {
        self.sum[channel]
    }

    /// The mean of a channel; `None` when no rows were accumulated.
    pub fn mean(&self, channel: usize) -> Option<f64> {
        if self.count > 0.0 {
            Some(self.sum[channel] / self.count)
        } else {
            None
        }
    }

    /// Population variance of a channel; `None` when no rows were accumulated.
    pub fn variance(&self, channel: usize) -> Option<f64> {
        if self.count > 0.0 {
            let mean = self.sum[channel] / self.count;
            // Guard against tiny negative values introduced by floating point
            // cancellation when subtracting accumulators.
            Some((self.sum_sq[channel] / self.count - mean * mean).max(0.0))
        } else {
            None
        }
    }

    /// Population standard deviation of a channel.
    pub fn std_dev(&self, channel: usize) -> Option<f64> {
        self.variance(channel).map(f64::sqrt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc_of(rows: &[&[f64]], channels: usize) -> DivAcc {
        let mut acc = DivAcc::identity(channels);
        for row in rows {
            acc.insert(row);
        }
        acc
    }

    #[test]
    fn count_sum_mean() {
        let acc = acc_of(&[&[1.0, 10.0], &[2.0, 20.0], &[3.0, 30.0]], 2);
        assert_eq!(acc.count(), 3.0);
        assert_eq!(acc.channel_sum(0), 6.0);
        assert_eq!(acc.channel_sum(1), 60.0);
        assert_eq!(acc.mean(0), Some(2.0));
        assert_eq!(acc.mean(1), Some(20.0));
        assert_eq!(acc.channels(), 2);
    }

    #[test]
    fn empty_accumulator_yields_none_means() {
        let acc = DivAcc::identity(1);
        assert_eq!(acc.count(), 0.0);
        assert_eq!(acc.mean(0), None);
        assert_eq!(acc.variance(0), None);
        assert_eq!(acc.std_dev(0), None);
    }

    #[test]
    fn variance_and_std_dev() {
        // Values 2, 4, 4, 4, 5, 5, 7, 9 → population std dev 2.
        let rows: Vec<Vec<f64>> = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .iter()
            .map(|v| vec![*v])
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let acc = acc_of(&refs, 1);
        assert!((acc.std_dev(0).unwrap() - 2.0).abs() < 1e-12);
        assert!((acc.variance(0).unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_direct_accumulation() {
        let a = acc_of(&[&[1.0], &[2.0]], 1);
        let b = acc_of(&[&[3.0], &[4.0], &[5.0]], 1);
        let mut merged = a.clone();
        merged.merge(&b);
        let direct = acc_of(&[&[1.0], &[2.0], &[3.0], &[4.0], &[5.0]], 1);
        assert_eq!(merged, direct);
    }

    #[test]
    fn subtraction_recovers_the_complement() {
        // agg(A \ B) = f(agg(A), agg(B)) — Definition 5.1.
        let all = acc_of(&[&[1.0], &[2.0], &[3.0], &[4.0]], 1);
        let prefix = acc_of(&[&[1.0], &[2.0]], 1);
        let suffix = all.difference(&prefix);
        assert_eq!(suffix.count(), 2.0);
        assert_eq!(suffix.channel_sum(0), 7.0);
        assert_eq!(suffix.mean(0), Some(3.5));
    }

    #[test]
    fn variance_never_negative_after_subtraction() {
        let all = acc_of(&[&[1e9], &[1e9 + 1.0], &[1e9 + 2.0]], 1);
        let prefix = acc_of(&[&[1e9], &[1e9 + 1.0]], 1);
        let diff = all.difference(&prefix);
        assert!(diff.variance(0).unwrap() >= 0.0);
    }
}
