//! Multi-resolution aggregate (MRA) tree for progressive MIN/MAX queries.
//!
//! Section 5.3.1 of the paper notes that MIN/MAX aggregates over arbitrary
//! orthogonal ranges do not fit the divisible-aggregate trick of Figure 8 and
//! mentions two ways out: the sweep-line of Figure 9 (exact, but only for
//! *constant*-size ranges) and a **multi-resolution aggregate tree**
//! (Lazaridis & Mehrotra, SIGMOD 2001), which answers arbitrary ranges but
//! "returns only approximate results, and there is no guarantee on their
//! query performance".
//!
//! This module implements that alternative so the trade-off can be measured:
//! an [`MraTree`] is a pyramid of regular grids, one per resolution level,
//! whose cells carry count / sum / min / max of the points they cover.  A
//! query descends the pyramid and keeps a running `[lower, upper]` bound on
//! the answer; it may stop early once a *node budget* is exhausted (the
//! progressive-approximation mode of the original paper) or run to the leaf
//! level for an exact answer.
//!
//! The battle scripts only ever need exact answers, so the indexed executor
//! keeps using the sweep-line; the MRA tree exists for the ablation benches
//! and as the natural extension point for "soft" game queries (e.g. threat
//! heat maps) where an approximate answer each tick is good enough.

use crate::{Point2, Rect};

/// Aggregate summary of one grid cell.
#[derive(Debug, Clone, Copy)]
struct CellAgg {
    count: u32,
    sum: f64,
    min: f64,
    max: f64,
}

impl CellAgg {
    fn identity() -> CellAgg {
        CellAgg {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn insert(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    fn merge(&mut self, other: &CellAgg) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// One resolution level: a `dim × dim` grid of cell aggregates.
#[derive(Debug, Clone)]
struct Level {
    dim: usize,
    cells: Vec<CellAgg>,
}

impl Level {
    fn new(dim: usize) -> Level {
        Level {
            dim,
            cells: vec![CellAgg::identity(); dim * dim],
        }
    }

    fn cell(&self, cx: usize, cy: usize) -> &CellAgg {
        &self.cells[cy * self.dim + cx]
    }

    fn cell_mut(&mut self, cx: usize, cy: usize) -> &mut CellAgg {
        &mut self.cells[cy * self.dim + cx]
    }
}

/// Which aggregate a query asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MraAgg {
    /// Minimum of the point values in the range.
    Min,
    /// Maximum of the point values in the range.
    Max,
    /// Number of points in the range.
    Count,
    /// Sum of the point values in the range.
    Sum,
}

/// Interval answer of a (possibly budget-limited) MRA query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MraBounds {
    /// Lower bound on the exact answer.
    pub lower: f64,
    /// Upper bound on the exact answer.
    pub upper: f64,
    /// Number of tree nodes visited to produce the bounds.
    pub nodes_visited: usize,
    /// True when the bounds are tight (`lower == upper` or no point matched).
    pub exact: bool,
}

impl MraBounds {
    /// Width of the uncertainty interval (0 for exact answers).
    pub fn uncertainty(&self) -> f64 {
        if self.exact {
            0.0
        } else {
            self.upper - self.lower
        }
    }
}

/// A multi-resolution aggregate tree over weighted points.
#[derive(Debug, Clone)]
pub struct MraTree {
    bounds: Rect,
    levels: Vec<Level>,
    points: Vec<Point2>,
    values: Vec<f64>,
    /// points sorted into leaf cells: `leaf_start[c] .. leaf_start[c+1]` index
    /// `leaf_ids`, giving the points of leaf cell `c`.
    leaf_start: Vec<u32>,
    leaf_ids: Vec<u32>,
}

impl MraTree {
    /// Build a pyramid with `levels` levels over the points (level `l` has
    /// `2^l × 2^l` cells).  `levels` is clamped to `[1, 12]`.
    pub fn build(points: &[Point2], values: &[f64], levels: usize) -> MraTree {
        assert_eq!(points.len(), values.len(), "one value per point");
        let levels = levels.clamp(1, 12);
        // Bounding square, inflated slightly so max-coordinate points stay in range.
        let mut x_min = f64::INFINITY;
        let mut x_max = f64::NEG_INFINITY;
        let mut y_min = f64::INFINITY;
        let mut y_max = f64::NEG_INFINITY;
        for p in points {
            x_min = x_min.min(p.x);
            x_max = x_max.max(p.x);
            y_min = y_min.min(p.y);
            y_max = y_max.max(p.y);
        }
        if points.is_empty() {
            x_min = 0.0;
            x_max = 1.0;
            y_min = 0.0;
            y_max = 1.0;
        }
        let side = ((x_max - x_min).max(y_max - y_min)).max(1e-9) * 1.000_001;
        let bounds = Rect::new(x_min, x_min + side, y_min, y_min + side);

        let mut level_vec: Vec<Level> = (0..levels).map(|l| Level::new(1 << l)).collect();
        let leaf_dim = 1usize << (levels - 1);
        let cell_of = |p: &Point2, dim: usize| -> (usize, usize) {
            let fx = ((p.x - bounds.x_min) / side * dim as f64).floor() as isize;
            let fy = ((p.y - bounds.y_min) / side * dim as f64).floor() as isize;
            (
                fx.clamp(0, dim as isize - 1) as usize,
                fy.clamp(0, dim as isize - 1) as usize,
            )
        };

        // Fill every level.
        for (p, v) in points.iter().zip(values) {
            for level in level_vec.iter_mut() {
                let (cx, cy) = cell_of(p, level.dim);
                level.cell_mut(cx, cy).insert(*v);
            }
        }

        // Bucket point ids by leaf cell (counting sort) for exact refinement.
        let leaf_cells = leaf_dim * leaf_dim;
        let mut counts = vec![0u32; leaf_cells + 1];
        let leaf_index = |p: &Point2| -> usize {
            let (cx, cy) = cell_of(p, leaf_dim);
            cy * leaf_dim + cx
        };
        for p in points {
            counts[leaf_index(p) + 1] += 1;
        }
        for i in 0..leaf_cells {
            counts[i + 1] += counts[i];
        }
        let mut leaf_ids = vec![0u32; points.len()];
        let mut cursor = counts.clone();
        for (id, p) in points.iter().enumerate() {
            let c = leaf_index(p);
            leaf_ids[cursor[c] as usize] = id as u32;
            cursor[c] += 1;
        }

        MraTree {
            bounds,
            levels: level_vec,
            points: points.to_vec(),
            values: values.to_vec(),
            leaf_start: counts,
            leaf_ids,
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the tree indexes no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of pyramid levels.
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    fn cell_rect(&self, level: usize, cx: usize, cy: usize) -> Rect {
        let dim = self.levels[level].dim as f64;
        let side = self.bounds.x_max - self.bounds.x_min;
        let w = side / dim;
        Rect::new(
            self.bounds.x_min + cx as f64 * w,
            self.bounds.x_min + (cx + 1) as f64 * w,
            self.bounds.y_min + cy as f64 * w,
            self.bounds.y_min + (cy + 1) as f64 * w,
        )
    }

    fn rect_relation(cell: &Rect, query: &Rect) -> CellRelation {
        if cell.x_min >= query.x_max
            || cell.x_max <= query.x_min
            || cell.y_min >= query.y_max
            || cell.y_max <= query.y_min
        {
            // Note: cells are half-open in spirit; a shared edge contributes
            // nothing because the points on it belong to the neighbour cell.
            // Treating touching cells as partial instead would only cost a few
            // extra node visits, never correctness, so we keep the cheap test
            // but fall through to Partial when the query degenerates.
            if cell.x_min > query.x_max
                || cell.x_max < query.x_min
                || cell.y_min > query.y_max
                || cell.y_max < query.y_min
            {
                return CellRelation::Disjoint;
            }
            return CellRelation::Partial;
        }
        if cell.x_min >= query.x_min
            && cell.x_max <= query.x_max
            && cell.y_min >= query.y_min
            && cell.y_max <= query.y_max
        {
            CellRelation::Contained
        } else {
            CellRelation::Partial
        }
    }

    /// Exact aggregate over the points inside `rect` (descends to the points
    /// of partially covered leaf cells).  Returns `None` when no point lies in
    /// the rectangle and the aggregate is MIN or MAX.
    pub fn query_exact(&self, rect: &Rect, agg: MraAgg) -> Option<f64> {
        let bounds = self.query_with_budget(rect, agg, usize::MAX);
        match agg {
            MraAgg::Count | MraAgg::Sum => Some(bounds.lower),
            MraAgg::Min | MraAgg::Max => {
                if bounds.lower.is_finite() || bounds.upper.is_finite() {
                    Some(bounds.lower)
                } else {
                    None
                }
            }
        }
    }

    /// Progressive query: visit at most `node_budget` cells, then return the
    /// `[lower, upper]` interval guaranteed to contain the exact answer.
    ///
    /// With an unlimited budget the interval collapses (`exact == true`).  A
    /// small budget gives the anytime behaviour of the original MRA-tree
    /// paper: coarse levels answer first, finer levels shrink the interval.
    pub fn query_with_budget(&self, rect: &Rect, agg: MraAgg, node_budget: usize) -> MraBounds {
        let mut state = QueryState {
            agg,
            budget: node_budget.max(1),
            visited: 0,
            // Aggregate over cells fully contained in the query.
            certain: CellAgg::identity(),
            // Aggregate over partially covered cells that we could not refine
            // before the budget ran out (contributes to the optimistic bound).
            uncertain: CellAgg::identity(),
            truncated: false,
        };
        if !rect.is_empty() && !self.points.is_empty() {
            self.visit(0, 0, 0, rect, &mut state);
        }
        state.finish()
    }

    fn visit(&self, level: usize, cx: usize, cy: usize, rect: &Rect, state: &mut QueryState) {
        let cell = self.levels[level].cell(cx, cy);
        if cell.count == 0 {
            return;
        }
        let cell_rect = self.cell_rect(level, cx, cy);
        match Self::rect_relation(&cell_rect, rect) {
            CellRelation::Disjoint => {}
            CellRelation::Contained => {
                state.certain.merge(cell);
                state.visited += 1;
            }
            CellRelation::Partial => {
                state.visited += 1;
                if state.visited >= state.budget && level + 1 < self.levels.len() {
                    // Out of budget: account for the whole cell optimistically.
                    state.uncertain.merge(cell);
                    state.truncated = true;
                    return;
                }
                if level + 1 == self.levels.len() {
                    // Leaf level: refine using the actual points of the cell.
                    let dim = self.levels[level].dim;
                    let leaf = cy * dim + cx;
                    let start = self.leaf_start[leaf] as usize;
                    let end = self.leaf_start[leaf + 1] as usize;
                    for &id in &self.leaf_ids[start..end] {
                        let p = &self.points[id as usize];
                        if rect.contains(p) {
                            state.certain.insert(self.values[id as usize]);
                        }
                    }
                } else {
                    for dy in 0..2usize {
                        for dx in 0..2usize {
                            self.visit(level + 1, cx * 2 + dx, cy * 2 + dy, rect, state);
                        }
                    }
                }
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CellRelation {
    Disjoint,
    Contained,
    Partial,
}

struct QueryState {
    agg: MraAgg,
    budget: usize,
    visited: usize,
    certain: CellAgg,
    uncertain: CellAgg,
    truncated: bool,
}

impl QueryState {
    fn finish(self) -> MraBounds {
        let (lower, upper) = match self.agg {
            MraAgg::Count => {
                let lo = self.certain.count as f64;
                (lo, lo + self.uncertain.count as f64)
            }
            MraAgg::Sum => {
                // Point values may be negative, so an unrefined cell can move
                // the sum either way: bound with the signed extremes.
                let lo = self.certain.sum
                    + if self.uncertain.count > 0 {
                        self.uncertain.min.min(0.0) * self.uncertain.count as f64
                    } else {
                        0.0
                    };
                let hi = self.certain.sum
                    + if self.uncertain.count > 0 {
                        self.uncertain.max.max(0.0) * self.uncertain.count as f64
                    } else {
                        0.0
                    };
                (lo, hi)
            }
            MraAgg::Min => {
                // Certain cells give an upper bound on the minimum; uncertain
                // cells could contribute anything down to their own minimum.
                let certain = if self.certain.count > 0 {
                    self.certain.min
                } else {
                    f64::INFINITY
                };
                let optimistic = if self.uncertain.count > 0 {
                    self.uncertain.min
                } else {
                    f64::INFINITY
                };
                (certain.min(optimistic), certain)
            }
            MraAgg::Max => {
                let certain = if self.certain.count > 0 {
                    self.certain.max
                } else {
                    f64::NEG_INFINITY
                };
                let optimistic = if self.uncertain.count > 0 {
                    self.uncertain.max
                } else {
                    f64::NEG_INFINITY
                };
                (certain, certain.max(optimistic))
            }
        };
        let exact = !self.truncated;
        MraBounds {
            lower,
            upper,
            nodes_visited: self.visited,
            exact,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(state: &mut u64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*state >> 11) as f64) / ((1u64 << 53) as f64)
    }

    fn setup(n: usize, seed: u64, world: f64) -> (Vec<Point2>, Vec<f64>) {
        let mut state = seed;
        let points: Vec<Point2> = (0..n)
            .map(|_| Point2::new(lcg(&mut state) * world, lcg(&mut state) * world))
            .collect();
        let values: Vec<f64> = (0..n).map(|i| ((i * 17) % 101) as f64).collect();
        (points, values)
    }

    fn brute(points: &[Point2], values: &[f64], rect: &Rect, agg: MraAgg) -> Option<f64> {
        let matching: Vec<f64> = points
            .iter()
            .zip(values)
            .filter(|(p, _)| rect.contains(p))
            .map(|(_, v)| *v)
            .collect();
        match agg {
            MraAgg::Count => Some(matching.len() as f64),
            MraAgg::Sum => Some(matching.iter().sum()),
            MraAgg::Min => matching.iter().cloned().reduce(f64::min),
            MraAgg::Max => matching.iter().cloned().reduce(f64::max),
        }
    }

    #[test]
    fn empty_tree_is_well_behaved() {
        let tree = MraTree::build(&[], &[], 5);
        assert!(tree.is_empty());
        assert_eq!(tree.len(), 0);
        let rect = Rect::new(0.0, 1.0, 0.0, 1.0);
        assert_eq!(tree.query_exact(&rect, MraAgg::Count), Some(0.0));
        assert_eq!(tree.query_exact(&rect, MraAgg::Min), None);
        let b = tree.query_with_budget(&rect, MraAgg::Max, 3);
        assert!(b.exact);
    }

    #[test]
    fn exact_queries_match_brute_force() {
        let (points, values) = setup(700, 19, 300.0);
        let tree = MraTree::build(&points, &values, 7);
        assert_eq!(tree.level_count(), 7);
        let mut state = 7u64;
        for _ in 0..150 {
            let rect = Rect::centered(
                lcg(&mut state) * 300.0,
                lcg(&mut state) * 300.0,
                5.0 + lcg(&mut state) * 60.0,
            );
            for agg in [MraAgg::Count, MraAgg::Sum, MraAgg::Min, MraAgg::Max] {
                let fast = tree.query_exact(&rect, agg);
                let slow = brute(&points, &values, &rect, agg);
                match (fast, slow) {
                    (Some(f), Some(s)) => assert!((f - s).abs() < 1e-6, "{agg:?}: {f} vs {s}"),
                    (None, None) => {}
                    other => panic!("mismatch for {agg:?}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn budgeted_bounds_always_contain_the_exact_answer() {
        let (points, values) = setup(500, 3, 200.0);
        let tree = MraTree::build(&points, &values, 7);
        let mut state = 13u64;
        for _ in 0..100 {
            let rect = Rect::centered(
                lcg(&mut state) * 200.0,
                lcg(&mut state) * 200.0,
                10.0 + lcg(&mut state) * 50.0,
            );
            for agg in [MraAgg::Count, MraAgg::Min, MraAgg::Max] {
                let exact = brute(&points, &values, &rect, agg);
                for budget in [1usize, 4, 16, 64, 100_000] {
                    let b = tree.query_with_budget(&rect, agg, budget);
                    if let Some(x) = exact {
                        assert!(
                            b.lower <= x + 1e-9 && x <= b.upper + 1e-9,
                            "{agg:?} budget {budget}: exact {x} outside [{}, {}]",
                            b.lower,
                            b.upper
                        );
                    }
                    if budget == 100_000 {
                        assert!(b.exact);
                        assert_eq!(b.uncertainty(), 0.0);
                    }
                }
            }
        }
    }

    #[test]
    fn larger_budgets_never_visit_fewer_nodes_than_reported() {
        let (points, values) = setup(400, 29, 150.0);
        let tree = MraTree::build(&points, &values, 6);
        let rect = Rect::centered(75.0, 75.0, 40.0);
        let coarse = tree.query_with_budget(&rect, MraAgg::Min, 2);
        let fine = tree.query_with_budget(&rect, MraAgg::Min, 10_000);
        assert!(coarse.nodes_visited <= fine.nodes_visited);
        assert!(coarse.uncertainty() >= fine.uncertainty());
        assert!(fine.exact);
    }

    #[test]
    fn count_and_sum_exact_values() {
        let points = vec![
            Point2::new(1.0, 1.0),
            Point2::new(2.0, 2.0),
            Point2::new(3.0, 3.0),
            Point2::new(50.0, 50.0),
        ];
        let values = vec![10.0, 20.0, 30.0, 1000.0];
        let tree = MraTree::build(&points, &values, 5);
        let rect = Rect::new(0.0, 4.0, 0.0, 4.0);
        assert_eq!(tree.query_exact(&rect, MraAgg::Count), Some(3.0));
        assert_eq!(tree.query_exact(&rect, MraAgg::Sum), Some(60.0));
        assert_eq!(tree.query_exact(&rect, MraAgg::Min), Some(10.0));
        assert_eq!(tree.query_exact(&rect, MraAgg::Max), Some(30.0));
    }

    #[test]
    fn level_clamping() {
        let (points, values) = setup(32, 5, 10.0);
        let tree = MraTree::build(&points, &values, 0);
        assert_eq!(tree.level_count(), 1);
        let tree = MraTree::build(&points, &values, 50);
        assert_eq!(tree.level_count(), 12);
    }

    #[test]
    fn duplicate_points_are_handled() {
        let points = vec![Point2::new(5.0, 5.0); 64];
        let values: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let tree = MraTree::build(&points, &values, 6);
        let rect = Rect::centered(5.0, 5.0, 1.0);
        assert_eq!(tree.query_exact(&rect, MraAgg::Count), Some(64.0));
        assert_eq!(tree.query_exact(&rect, MraAgg::Min), Some(0.0));
        assert_eq!(tree.query_exact(&rect, MraAgg::Max), Some(63.0));
    }
}
