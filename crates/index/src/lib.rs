//! # sgl-index — in-memory index structures for game aggregates
//!
//! This crate implements the index structures of §5.3 of *Scaling Games to
//! Epic Proportions*.  They are all designed to be **rebuilt from scratch at
//! every clock tick** (the paper observes this is cheaper than dynamic
//! maintenance for volatile attributes such as positions) and to answer the
//! aggregate queries issued by thousands of unit scripts in `O(log n)` or
//! `O(log² n)` per probe instead of `O(n)`:
//!
//! * [`divisible`] — accumulators for divisible aggregates (count, sum, mean,
//!   second moments / standard deviation, centroids; Definition 5.1);
//! * [`agg_tree`] — a layered range tree whose inner y-lists store *prefix
//!   accumulators* instead of points (Figure 8), with optional fractional
//!   cascading;
//! * [`range_tree`] — the classical layered range tree enumerating the points
//!   in an orthogonal range (used as the fallback for non-divisible
//!   aggregates over arbitrary filters);
//! * [`kdtree`] — a kD-tree for nearest-neighbour spatial aggregates (§5.3.2);
//! * [`segtree`] / [`sweepline`] — the sweep-line technique of Figure 9 for
//!   MIN/MAX aggregates over constant-size ranges;
//! * [`partition`] — the categorical hash layer (player × unit type) placed on
//!   top of the spatial indexes, as in the experimental setup of §6;
//! * [`grid`] — a uniform bucket grid used as an ablation baseline;
//! * [`quadtree`] — a bucket PR quadtree with per-node aggregate summaries
//!   (divisible aggregates *and* exact MIN/MAX from one structure), an
//!   ablation point against the paper's layered range tree + sweep-line pair;
//! * [`mra_tree`] — the multi-resolution aggregate tree the paper mentions as
//!   the approximate alternative for MIN/MAX over arbitrary ranges (§5.3.1);
//! * [`dynamic_agg`] — a dynamic (maintained, not rebuilt) aggregate index
//!   used to measure the paper's "rebuild beats dynamic maintenance" claim.

//!
//! All structures are additionally reachable through the common trait layer
//! of [`traits`] ([`traits::AggIndex`] / [`traits::SpatialIndex`]), which is
//! what the executor's cross-tick `IndexManager` programs against:
//! rebuild-per-tick structures and dynamically maintained ones (the
//! [`grid`] module's [`grid::DynamicAggGrid`]) answer the same probes
//! behind one interface.

#![warn(missing_docs)]

pub mod agg_tree;
pub mod divisible;
pub mod dynamic_agg;
pub mod grid;
pub mod kdtree;
pub mod mra_tree;
pub mod partition;
pub mod quadtree;
pub mod range_tree;
pub mod segtree;
pub mod sweepline;
pub mod traits;

/// Total order on `f64` placing every NaN — of either sign — after all
/// ordinary numbers.
///
/// `f64::total_cmp` alone is not enough for the index structures: it sorts
/// negative NaN *before* `-inf`, while the query-time binary searches and
/// IEEE comparisons all assume that never-matching NaN entries sit at the
/// *end* of a sorted run (`v < bound` and `v <= bound` must be monotonic
/// false-suffix predicates).
pub fn nan_last_cmp(a: f64, b: f64) -> std::cmp::Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Greater,
        (false, true) => std::cmp::Ordering::Less,
        (false, false) => a.partial_cmp(&b).expect("neither operand is NaN"),
    }
}

/// A point in the plane (unit position).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point2 {
    /// x coordinate.
    pub x: f64,
    /// y coordinate.
    pub y: f64,
}

impl Point2 {
    /// Construct a point.
    pub fn new(x: f64, y: f64) -> Point2 {
        Point2 { x, y }
    }

    /// Squared Euclidean distance to another point.
    pub fn dist2(&self, other: &Point2) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }
}

/// An axis-aligned query rectangle (inclusive bounds, matching the `>=`/`<=`
/// filters of the paper's aggregate definitions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Minimum x (inclusive).
    pub x_min: f64,
    /// Maximum x (inclusive).
    pub x_max: f64,
    /// Minimum y (inclusive).
    pub y_min: f64,
    /// Maximum y (inclusive).
    pub y_max: f64,
}

impl Rect {
    /// Construct a rectangle from inclusive bounds.
    pub fn new(x_min: f64, x_max: f64, y_min: f64, y_max: f64) -> Rect {
        Rect {
            x_min,
            x_max,
            y_min,
            y_max,
        }
    }

    /// The square of side `2·range` centred on `(x, y)` — the paper's
    /// standard "in range" region.
    pub fn centered(x: f64, y: f64, range: f64) -> Rect {
        Rect {
            x_min: x - range,
            x_max: x + range,
            y_min: y - range,
            y_max: y + range,
        }
    }

    /// Does the rectangle contain the point (inclusive)?
    pub fn contains(&self, p: &Point2) -> bool {
        p.x >= self.x_min && p.x <= self.x_max && p.y >= self.y_min && p.y <= self.y_max
    }

    /// Is the rectangle empty (no point can satisfy it)?
    pub fn is_empty(&self) -> bool {
        self.x_min > self.x_max || self.y_min > self.y_max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_contains_and_centered() {
        let r = Rect::centered(10.0, 20.0, 5.0);
        assert_eq!(r, Rect::new(5.0, 15.0, 15.0, 25.0));
        assert!(r.contains(&Point2::new(5.0, 15.0)));
        assert!(r.contains(&Point2::new(15.0, 25.0)));
        assert!(!r.contains(&Point2::new(4.9, 20.0)));
        assert!(!r.is_empty());
        assert!(Rect::new(1.0, 0.0, 0.0, 1.0).is_empty());
    }

    #[test]
    fn point_distance() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(3.0, 4.0);
        assert_eq!(a.dist2(&b), 25.0);
        assert_eq!(a.dist2(&a), 0.0);
    }
}
