//! Categorical partition layer (paper §5.3.1 and §6).
//!
//! Degenerate (categorical) range components — the player owning a unit, its
//! type — do not need tree levels: they are replaced by a hash table with
//! `O(1)` look-up sitting on top of the spatial indexes.  The experimental
//! setup of §6 pushes the selection on player and unit type to the top,
//! building one spatial index per (player, unit type) combination; this module
//! provides that layer generically.

use rustc_hash::FxHashMap;
use std::hash::Hash;

/// Group item indices by a categorical key.
pub fn group_by_key<K, I, F>(items: I, mut key_of: F) -> FxHashMap<K, Vec<u32>>
where
    K: Eq + Hash,
    I: IntoIterator,
    F: FnMut(&I::Item) -> K,
{
    let mut groups: FxHashMap<K, Vec<u32>> = FxHashMap::default();
    for (i, item) in items.into_iter().enumerate() {
        groups.entry(key_of(&item)).or_default().push(i as u32);
    }
    groups
}

/// A map from categorical keys to per-group indexes (e.g. one
/// [`crate::agg_tree::LayeredAggTree`] per player × unit type).
#[derive(Debug, Clone)]
pub struct PartitionedIndex<K, I> {
    groups: FxHashMap<K, I>,
}

impl<K: Eq + Hash, I> PartitionedIndex<K, I> {
    /// Build the layer: group item indices by key, then build one inner index
    /// per group with the provided builder.
    pub fn build<T, KF, BF>(items: &[T], mut key_of: KF, mut build: BF) -> PartitionedIndex<K, I>
    where
        KF: FnMut(&T) -> K,
        BF: FnMut(&K, &[u32]) -> I,
    {
        let mut members: FxHashMap<K, Vec<u32>> = FxHashMap::default();
        for (i, item) in items.iter().enumerate() {
            members.entry(key_of(item)).or_default().push(i as u32);
        }
        let groups = members
            .into_iter()
            .map(|(k, ids)| {
                let index = build(&k, &ids);
                (k, index)
            })
            .collect();
        PartitionedIndex { groups }
    }

    /// Create from pre-built groups.
    pub fn from_groups(groups: FxHashMap<K, I>) -> PartitionedIndex<K, I> {
        PartitionedIndex { groups }
    }

    /// The inner index for a key, if any item had that key.
    pub fn get(&self, key: &K) -> Option<&I> {
        self.groups.get(key)
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True when no groups exist.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Iterate over `(key, index)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &I)> {
        self.groups.iter()
    }

    /// Iterate over the indexes of every group whose key satisfies the
    /// predicate (e.g. "all enemy players").
    pub fn matching<'a, P>(&'a self, mut pred: P) -> impl Iterator<Item = &'a I>
    where
        P: FnMut(&K) -> bool + 'a,
    {
        self.groups
            .iter()
            .filter(move |(k, _)| pred(k))
            .map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg_tree::{AggEntry, LayeredAggTree};
    use crate::{Point2, Rect};

    #[derive(Debug, Clone, Copy)]
    struct Unit {
        player: i64,
        kind: u8,
        x: f64,
        y: f64,
    }

    fn units() -> Vec<Unit> {
        vec![
            Unit {
                player: 0,
                kind: 0,
                x: 1.0,
                y: 1.0,
            },
            Unit {
                player: 0,
                kind: 1,
                x: 2.0,
                y: 2.0,
            },
            Unit {
                player: 1,
                kind: 0,
                x: 3.0,
                y: 3.0,
            },
            Unit {
                player: 1,
                kind: 0,
                x: 4.0,
                y: 4.0,
            },
            Unit {
                player: 1,
                kind: 1,
                x: 5.0,
                y: 5.0,
            },
        ]
    }

    #[test]
    fn grouping_by_key() {
        let groups = group_by_key(units(), |u| (u.player, u.kind));
        assert_eq!(groups.len(), 4);
        assert_eq!(groups[&(1, 0)], vec![2, 3]);
        assert_eq!(groups[&(0, 1)], vec![1]);
    }

    #[test]
    fn partitioned_spatial_indexes() {
        let us = units();
        let part = PartitionedIndex::build(
            &us,
            |u| (u.player, u.kind),
            |_key, ids| {
                let entries: Vec<AggEntry> = ids
                    .iter()
                    .map(|i| {
                        AggEntry::new(Point2::new(us[*i as usize].x, us[*i as usize].y), vec![])
                    })
                    .collect();
                LayeredAggTree::build(&entries, 0, true)
            },
        );
        assert_eq!(part.len(), 4);
        assert!(!part.is_empty());
        // Count of player 1 knights (kind 0) near (3.5, 3.5).
        let tree = part.get(&(1, 0)).unwrap();
        assert_eq!(tree.count(&Rect::centered(3.5, 3.5, 1.0)), 2);
        assert!(part.get(&(2, 0)).is_none());
        // "All enemy groups of player 0" — match on the player component.
        let total: usize = part
            .matching(|(p, _)| *p != 0)
            .map(|t| t.count(&Rect::new(0.0, 10.0, 0.0, 10.0)))
            .sum();
        assert_eq!(total, 3);
        assert_eq!(part.iter().count(), 4);
    }

    #[test]
    fn from_groups_constructor() {
        let mut groups = FxHashMap::default();
        groups.insert("a", 1usize);
        groups.insert("b", 2usize);
        let p = PartitionedIndex::from_groups(groups);
        assert_eq!(p.get(&"a"), Some(&1));
        assert_eq!(p.get(&"z"), None);
    }

    #[test]
    fn empty_partition() {
        let us: Vec<Unit> = Vec::new();
        let part = PartitionedIndex::build(&us, |u| u.player, |_, _| 0usize);
        assert!(part.is_empty());
        assert_eq!(part.len(), 0);
    }
}
