//! Common interfaces over the index structures: [`AggIndex`] for aggregate
//! probes and [`SpatialIndex`] for enumeration / nearest-neighbour probes.
//!
//! The paper's executor (§5.3) hardcodes one structure per aggregate class
//! and rebuilds all of them every clock tick.  These traits decouple the
//! three decisions the engine has to make per aggregate:
//!
//! 1. **which structure** answers the probe (layered range tree, quadtree,
//!    uniform grid, kD-tree, dynamic grid, ...) — [`AggStructureKind`] and
//!    the [`build_agg_index`] factory;
//! 2. **how the structure is maintained** across ticks — [`IndexDelta`]
//!    describes a unit-level change, [`AggIndex::apply_delta`] applies it
//!    when the structure supports incremental maintenance
//!    ([`AggIndex::supports_deltas`]), and rebuild-only structures simply
//!    report the delta as unsupported so the caller falls back to
//!    [`AggIndex::rebuild`];
//! 3. **what the probe returns** — a divisible accumulator
//!    ([`AggIndex::probe_rect`]), an exact extremum
//!    ([`AggIndex::probe_extremum`]), an id enumeration
//!    ([`SpatialIndex::probe_rect_ids`]) or a nearest neighbour
//!    ([`SpatialIndex::probe_nearest`]).
//!
//! Rows are identified by a caller-chosen `u64` id (the engine uses unit
//! keys), so indexes stay valid while the environment reorders physically.

use crate::agg_tree::{AggEntry, LayeredAggTree};
use crate::divisible::DivAcc;
use crate::grid::DynamicAggGrid;
use crate::kdtree::KdTree;
use crate::quadtree::AggQuadTree;
use crate::range_tree::RangeTree2D;
use crate::{Point2, Rect};

/// One indexed row: a stable id, a position and the aggregate channel values.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexRow {
    /// Caller-chosen stable identifier (the engine uses the unit key).
    pub id: u64,
    /// Position of the row.
    pub point: Point2,
    /// Aggregate channel values (length = the index's channel count).
    pub values: Vec<f64>,
}

impl IndexRow {
    /// Construct a row.
    pub fn new(id: u64, point: Point2, values: Vec<f64>) -> IndexRow {
        IndexRow { id, point, values }
    }
}

/// A unit-level change to an indexed set, produced by diffing two ticks.
#[derive(Debug, Clone, PartialEq)]
pub enum IndexDelta {
    /// A row appeared (unit spawned or entered the partition).
    Insert {
        /// The new row.
        row: IndexRow,
    },
    /// A row disappeared (unit died or left the partition).
    Remove {
        /// Id of the removed row.
        id: u64,
        /// Its last indexed position.
        point: Point2,
    },
    /// A row moved and/or changed channel values.
    Update {
        /// Id of the row.
        id: u64,
        /// Position it was indexed at.
        old_point: Point2,
        /// The row's new state.
        row: IndexRow,
    },
}

/// Coarse per-delta update-cost class of an [`AggIndex`] backend — a hint
/// the cost-based planner maps onto its calibrated constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaCostClass {
    /// The structure cannot absorb deltas; every change forces a rebuild.
    RebuildOnly,
    /// One delta costs `O(log n)` (balanced tree structures).
    Logarithmic,
    /// One delta costs `O(1)` amortised (hash grids).
    Constant,
}

/// An extremum probe result: the extreme value and the id of a row attaining
/// it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtremumResult {
    /// The minimum/maximum channel value inside the probe rectangle.
    pub value: f64,
    /// Id of a row attaining it.
    pub id: u64,
}

/// An aggregate index: answers divisible-aggregate (and optionally MIN/MAX)
/// probes over axis-aligned rectangles.
pub trait AggIndex {
    /// Number of aggregate channels carried per row.
    fn channels(&self) -> usize;

    /// Number of indexed rows.
    fn len(&self) -> usize;

    /// True when no rows are indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discard the current contents and build from scratch.
    fn rebuild(&mut self, rows: &[IndexRow]);

    /// Divisible aggregate (count / sums / sums of squares) of the rows
    /// inside `rect`.
    fn probe_rect(&self, rect: &Rect) -> DivAcc;

    /// Exact MIN (`minimize`) or MAX of a channel over the rows inside
    /// `rect`.  Returns `None` when the rectangle is empty of rows **or**
    /// when the structure does not support extremum probes (check
    /// [`AggIndex::supports_extremum`] to distinguish).
    fn probe_extremum(
        &self,
        _rect: &Rect,
        _channel: usize,
        _minimize: bool,
    ) -> Option<ExtremumResult> {
        None
    }

    /// Whether [`AggIndex::probe_extremum`] is answered exactly.
    fn supports_extremum(&self) -> bool {
        false
    }

    /// Apply one incremental change.  Returns `false` when the structure is
    /// rebuild-only (the caller must fall back to [`AggIndex::rebuild`]).
    fn apply_delta(&mut self, _delta: &IndexDelta) -> bool {
        false
    }

    /// Whether [`AggIndex::apply_delta`] is supported.
    fn supports_deltas(&self) -> bool {
        false
    }

    /// Approximate size of the structure in resident rows (the planner's
    /// density statistics aggregate over this; the default is the exact row
    /// count).
    fn size_hint_rows(&self) -> usize {
        self.len()
    }

    /// Coarse cost class of absorbing one [`IndexDelta`] — the
    /// patch-vs-rebuild hint behind the cost model's calibrated delta
    /// constants (`sgl-bench` asserts the maintained grid's advertised
    /// class before measuring them).  Defaults to
    /// [`DeltaCostClass::RebuildOnly`] for structures without delta
    /// support.
    fn delta_cost_class(&self) -> DeltaCostClass {
        if self.supports_deltas() {
            DeltaCostClass::Logarithmic
        } else {
            DeltaCostClass::RebuildOnly
        }
    }

    /// Rows-per-area density of the indexed points, when the structure can
    /// measure it from its own occupancy (cost-planner hint: maintained
    /// grids report `rows / (occupied cells × cell area)`, which tracks
    /// where units actually cluster better than a bounding box).
    fn density_hint(&self) -> Option<f64> {
        None
    }
}

/// A spatial index: answers id-enumeration and nearest-neighbour probes.
pub trait SpatialIndex {
    /// Number of indexed rows.
    fn len(&self) -> usize;

    /// True when no rows are indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append the ids of every row inside `rect` to `out`.
    fn probe_rect_ids(&self, rect: &Rect, out: &mut Vec<u64>);

    /// The row nearest to `query` (squared Euclidean distance), if any.
    /// Returns `None` on an empty index or when the structure does not
    /// support nearest probes (check [`SpatialIndex::supports_nearest`]).
    fn probe_nearest(&self, _query: &Point2) -> Option<(u64, f64)> {
        None
    }

    /// Whether [`SpatialIndex::probe_nearest`] is answered exactly.
    fn supports_nearest(&self) -> bool {
        false
    }
}

/// Which concrete structure backs an [`AggIndex`], with its build parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AggStructureKind {
    /// The paper's layered aggregate range tree (Figure 8), rebuilt per tick.
    LayeredTree {
        /// Use fractional cascading in the inner level.
        cascading: bool,
    },
    /// Bucket PR quadtree with per-node summaries (divisible + exact
    /// MIN/MAX), rebuilt per tick.
    QuadTree {
        /// Leaf bucket capacity.
        bucket: usize,
    },
    /// Dynamically maintained uniform hash grid (divisible + exact MIN/MAX +
    /// nearest), updated in place via [`IndexDelta`]s.
    DynamicGrid {
        /// Cell side length; `0.0` means "derive from the data at build
        /// time" (bounding box over `sqrt(n)`).
        cell: f64,
    },
}

/// Build an empty aggregate index of the given kind, then load `rows`.
pub fn build_agg_index(
    kind: AggStructureKind,
    channels: usize,
    rows: &[IndexRow],
) -> Box<dyn AggIndex + Send> {
    let mut index: Box<dyn AggIndex + Send> = match kind {
        AggStructureKind::LayeredTree { cascading } => Box::new(LayeredAggIndex {
            tree: LayeredAggTree::build(&[], channels, cascading),
            cascading,
            channels,
        }),
        AggStructureKind::QuadTree { bucket } => Box::new(QuadAggIndex {
            tree: AggQuadTree::build(&[], channels, bucket),
            ids: Vec::new(),
            bucket,
            channels,
        }),
        AggStructureKind::DynamicGrid { cell } => Box::new(DynamicAggGrid::new(cell, channels)),
    };
    index.rebuild(rows);
    index
}

// --- rebuild-only adapters ---------------------------------------------------

/// [`AggIndex`] adapter over the layered aggregate range tree.
struct LayeredAggIndex {
    tree: LayeredAggTree,
    cascading: bool,
    channels: usize,
}

impl AggIndex for LayeredAggIndex {
    fn channels(&self) -> usize {
        self.channels
    }

    fn len(&self) -> usize {
        self.tree.len()
    }

    fn rebuild(&mut self, rows: &[IndexRow]) {
        let entries: Vec<AggEntry> = rows
            .iter()
            .map(|r| AggEntry::new(r.point, r.values.clone()))
            .collect();
        self.tree = LayeredAggTree::build(&entries, self.channels, self.cascading);
    }

    fn probe_rect(&self, rect: &Rect) -> DivAcc {
        self.tree.query(rect)
    }
}

/// [`AggIndex`] adapter over the aggregate quadtree (also answers exact
/// extremum probes from the same structure).
struct QuadAggIndex {
    tree: AggQuadTree,
    /// Build-position → row id (the quadtree reports build positions).
    ids: Vec<u64>,
    bucket: usize,
    channels: usize,
}

impl AggIndex for QuadAggIndex {
    fn channels(&self) -> usize {
        self.channels
    }

    fn len(&self) -> usize {
        self.tree.len()
    }

    fn rebuild(&mut self, rows: &[IndexRow]) {
        let entries: Vec<AggEntry> = rows
            .iter()
            .map(|r| AggEntry::new(r.point, r.values.clone()))
            .collect();
        self.ids = rows.iter().map(|r| r.id).collect();
        self.tree = AggQuadTree::build(&entries, self.channels, self.bucket);
    }

    fn probe_rect(&self, rect: &Rect) -> DivAcc {
        self.tree.query(rect)
    }

    fn probe_extremum(
        &self,
        rect: &Rect,
        channel: usize,
        minimize: bool,
    ) -> Option<ExtremumResult> {
        let e = if minimize {
            self.tree.min_in_rect(rect, channel)
        } else {
            self.tree.max_in_rect(rect, channel)
        }?;
        Some(ExtremumResult {
            value: e.value,
            id: self.ids[e.id as usize],
        })
    }

    fn supports_extremum(&self) -> bool {
        true
    }
}

impl SpatialIndex for QuadAggIndex {
    fn len(&self) -> usize {
        self.tree.len()
    }

    fn probe_rect_ids(&self, rect: &Rect, out: &mut Vec<u64>) {
        out.extend(
            self.tree
                .query_points(rect)
                .into_iter()
                .map(|i| self.ids[i as usize]),
        );
    }
}

// --- spatial adapters --------------------------------------------------------

/// [`SpatialIndex`] adapter over the kD-tree (nearest-neighbour probes).
pub struct KdSpatialIndex {
    tree: KdTree,
    ids: Vec<u64>,
    points: Vec<Point2>,
}

impl KdSpatialIndex {
    /// Build from `(id, point)` pairs.
    pub fn build(rows: &[(u64, Point2)]) -> KdSpatialIndex {
        let points: Vec<Point2> = rows.iter().map(|(_, p)| *p).collect();
        KdSpatialIndex {
            tree: KdTree::build(&points),
            ids: rows.iter().map(|(id, _)| *id).collect(),
            points,
        }
    }
}

impl SpatialIndex for KdSpatialIndex {
    fn len(&self) -> usize {
        self.tree.len()
    }

    fn probe_rect_ids(&self, rect: &Rect, out: &mut Vec<u64>) {
        // The kD-tree has no native rectangle enumeration; a radius query
        // over the circumscribed circle plus a containment filter is exact.
        let cx = (rect.x_min + rect.x_max) / 2.0;
        let cy = (rect.y_min + rect.y_max) / 2.0;
        let radius = ((rect.x_max - cx).powi(2) + (rect.y_max - cy).powi(2)).sqrt();
        for local in self.tree.within_radius(&Point2::new(cx, cy), radius) {
            if rect.contains(&self.points[local as usize]) {
                out.push(self.ids[local as usize]);
            }
        }
    }

    fn probe_nearest(&self, query: &Point2) -> Option<(u64, f64)> {
        self.tree
            .nearest(query)
            .map(|(local, d2)| (self.ids[local as usize], d2))
    }

    fn supports_nearest(&self) -> bool {
        true
    }
}

/// [`SpatialIndex`] adapter over the enumeration range tree.
pub struct RangeSpatialIndex {
    tree: RangeTree2D,
    ids: Vec<u64>,
}

impl RangeSpatialIndex {
    /// Build from `(id, point)` pairs.
    pub fn build(rows: &[(u64, Point2)]) -> RangeSpatialIndex {
        let points: Vec<Point2> = rows.iter().map(|(_, p)| *p).collect();
        RangeSpatialIndex {
            tree: RangeTree2D::build(&points),
            ids: rows.iter().map(|(id, _)| *id).collect(),
        }
    }
}

impl SpatialIndex for RangeSpatialIndex {
    fn len(&self) -> usize {
        self.tree.len()
    }

    fn probe_rect_ids(&self, rect: &Rect, out: &mut Vec<u64>) {
        out.extend(
            self.tree
                .query(rect)
                .into_iter()
                .map(|local| self.ids[local as usize]),
        );
    }
}

/// [`SpatialIndex`] adapter over the uniform bucket grid.
pub struct GridSpatialIndex {
    grid: crate::grid::UniformGrid,
    ids: Vec<u64>,
}

impl GridSpatialIndex {
    /// Build from `(id, point)` pairs over the given world bounds.
    pub fn build(
        rows: &[(u64, Point2)],
        world_min: Point2,
        world_max: Point2,
        cell: f64,
    ) -> GridSpatialIndex {
        let points: Vec<Point2> = rows.iter().map(|(_, p)| *p).collect();
        GridSpatialIndex {
            grid: crate::grid::UniformGrid::build(&points, world_min, world_max, cell),
            ids: rows.iter().map(|(id, _)| *id).collect(),
        }
    }
}

impl SpatialIndex for GridSpatialIndex {
    fn len(&self) -> usize {
        self.grid.len()
    }

    fn probe_rect_ids(&self, rect: &Rect, out: &mut Vec<u64>) {
        out.extend(
            self.grid
                .query(rect)
                .into_iter()
                .map(|local| self.ids[local as usize]),
        );
    }
}

// --- 1-D dynamic adapter -----------------------------------------------------

/// [`AggIndex`] adapter over the 1-D dynamic treap of [`crate::dynamic_agg`].
///
/// The treap indexes the x coordinate only, so rectangle probes are exact
/// **only when the rectangle is unbounded in y** — the workload of the
/// rebuild-vs-dynamic microbenchmark and of one-dimensional aggregate
/// columns.  Rectangles with finite y bounds are rejected with a debug
/// assertion.
pub struct DynamicXTreap {
    treap: crate::dynamic_agg::DynamicAggIndex,
}

impl DynamicXTreap {
    /// An empty index.
    pub fn new() -> DynamicXTreap {
        DynamicXTreap {
            treap: crate::dynamic_agg::DynamicAggIndex::new(),
        }
    }
}

impl Default for DynamicXTreap {
    fn default() -> Self {
        DynamicXTreap::new()
    }
}

impl AggIndex for DynamicXTreap {
    fn channels(&self) -> usize {
        1
    }

    fn len(&self) -> usize {
        self.treap.len()
    }

    fn rebuild(&mut self, rows: &[IndexRow]) {
        self.treap = crate::dynamic_agg::DynamicAggIndex::new();
        for row in rows {
            self.treap.insert(
                row.id,
                row.point.x,
                row.values.first().copied().unwrap_or(0.0),
            );
        }
    }

    fn probe_rect(&self, rect: &Rect) -> DivAcc {
        debug_assert!(
            rect.y_min == f64::NEG_INFINITY && rect.y_max == f64::INFINITY,
            "DynamicXTreap answers x-range probes only"
        );
        self.treap.query(rect.x_min, rect.x_max).to_div_acc()
    }

    fn apply_delta(&mut self, delta: &IndexDelta) -> bool {
        match delta {
            IndexDelta::Insert { row } => {
                self.treap.insert(
                    row.id,
                    row.point.x,
                    row.values.first().copied().unwrap_or(0.0),
                );
            }
            IndexDelta::Remove { id, point } => {
                self.treap.remove(*id, point.x);
            }
            IndexDelta::Update { id, old_point, row } => {
                self.treap.remove(*id, old_point.x);
                self.treap
                    .insert(*id, row.point.x, row.values.first().copied().unwrap_or(0.0));
            }
        }
        true
    }

    fn supports_deltas(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(state: &mut u64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*state >> 11) as f64) / ((1u64 << 53) as f64)
    }

    fn rows(n: usize, seed: u64) -> Vec<IndexRow> {
        let mut state = seed;
        (0..n)
            .map(|i| {
                IndexRow::new(
                    1000 + i as u64,
                    Point2::new(lcg(&mut state) * 100.0, lcg(&mut state) * 100.0),
                    vec![(i % 17) as f64],
                )
            })
            .collect()
    }

    fn brute(rows: &[IndexRow], rect: &Rect) -> DivAcc {
        let mut acc = DivAcc::identity(1);
        for r in rows {
            if rect.contains(&r.point) {
                acc.insert(&r.values);
            }
        }
        acc
    }

    #[test]
    fn every_structure_kind_answers_rect_probes() {
        let data = rows(300, 9);
        let rect = Rect::new(20.0, 70.0, 10.0, 60.0);
        let expected = brute(&data, &rect);
        for kind in [
            AggStructureKind::LayeredTree { cascading: true },
            AggStructureKind::LayeredTree { cascading: false },
            AggStructureKind::QuadTree { bucket: 8 },
            AggStructureKind::DynamicGrid { cell: 0.0 },
        ] {
            let index = build_agg_index(kind, 1, &data);
            assert_eq!(index.len(), 300, "{kind:?}");
            assert_eq!(index.channels(), 1, "{kind:?}");
            let acc = index.probe_rect(&rect);
            assert_eq!(acc.count(), expected.count(), "{kind:?}");
            assert!(
                (acc.channel_sum(0) - expected.channel_sum(0)).abs() < 1e-6,
                "{kind:?}"
            );
        }
    }

    #[test]
    fn extremum_support_is_advertised_honestly() {
        let data = rows(100, 3);
        let rect = Rect::new(0.0, 100.0, 0.0, 100.0);
        let quad = build_agg_index(AggStructureKind::QuadTree { bucket: 8 }, 1, &data);
        let grid = build_agg_index(AggStructureKind::DynamicGrid { cell: 0.0 }, 1, &data);
        let tree = build_agg_index(AggStructureKind::LayeredTree { cascading: true }, 1, &data);
        assert!(quad.supports_extremum());
        assert!(grid.supports_extremum());
        assert!(!tree.supports_extremum());
        let expected_min = data
            .iter()
            .map(|r| r.values[0])
            .fold(f64::INFINITY, f64::min);
        for idx in [&quad, &grid] {
            let m = idx.probe_extremum(&rect, 0, true).unwrap();
            assert_eq!(m.value, expected_min);
        }
        assert_eq!(tree.probe_extremum(&rect, 0, true), None);
    }

    #[test]
    fn delta_support_matches_structure_class() {
        let data = rows(50, 1);
        let mut tree = build_agg_index(AggStructureKind::LayeredTree { cascading: true }, 1, &data);
        let mut grid = build_agg_index(AggStructureKind::DynamicGrid { cell: 0.0 }, 1, &data);
        let delta = IndexDelta::Remove {
            id: data[0].id,
            point: data[0].point,
        };
        assert!(!tree.supports_deltas());
        assert!(!tree.apply_delta(&delta));
        assert!(grid.supports_deltas());
        assert!(grid.apply_delta(&delta));
        assert_eq!(grid.len(), 49);
        assert_eq!(tree.len(), 50);
        // The advertised cost-class hints match the delta support.
        assert_eq!(tree.delta_cost_class(), DeltaCostClass::RebuildOnly);
        assert_eq!(grid.delta_cost_class(), DeltaCostClass::Constant);
        assert_eq!(tree.size_hint_rows(), 50);
        assert_eq!(grid.size_hint_rows(), 49);
        assert!(grid.density_hint().is_some());
        assert!(tree.density_hint().is_none());
        let treap = DynamicXTreap::new();
        assert_eq!(treap.delta_cost_class(), DeltaCostClass::Logarithmic);
    }

    #[test]
    fn spatial_adapters_agree_on_enumeration_and_nearest() {
        let data = rows(200, 44);
        let pairs: Vec<(u64, Point2)> = data.iter().map(|r| (r.id, r.point)).collect();
        let kd = KdSpatialIndex::build(&pairs);
        let range = RangeSpatialIndex::build(&pairs);
        let grid = GridSpatialIndex::build(
            &pairs,
            Point2::new(0.0, 0.0),
            Point2::new(100.0, 100.0),
            7.0,
        );
        let rect = Rect::new(25.0, 75.0, 25.0, 75.0);
        let mut expected: Vec<u64> = data
            .iter()
            .filter(|r| rect.contains(&r.point))
            .map(|r| r.id)
            .collect();
        expected.sort_unstable();
        for (name, index) in [
            ("kd", &kd as &dyn SpatialIndex),
            ("range", &range),
            ("grid", &grid),
        ] {
            assert_eq!(index.len(), 200, "{name}");
            let mut got = Vec::new();
            index.probe_rect_ids(&rect, &mut got);
            got.sort_unstable();
            assert_eq!(got, expected, "{name}");
        }
        // Nearest: only the kD adapter advertises support.
        assert!(kd.supports_nearest());
        assert!(!range.supports_nearest());
        let query = Point2::new(50.0, 50.0);
        let (id, d2) = kd.probe_nearest(&query).unwrap();
        let best = data
            .iter()
            .map(|r| query.dist2(&r.point))
            .fold(f64::INFINITY, f64::min);
        assert!((d2 - best).abs() < 1e-9);
        assert!(data
            .iter()
            .any(|r| r.id == id && (query.dist2(&r.point) - best).abs() < 1e-9));
    }

    #[test]
    fn dynamic_treap_adapter_maintains_x_ranges() {
        let mut data = rows(120, 7);
        let mut index = DynamicXTreap::new();
        index.rebuild(&data);
        assert!(index.supports_deltas());
        // Move half the rows, remove a few, insert one.
        let mut state = 5u64;
        for r in data.iter_mut().take(60) {
            let old = r.point;
            r.point = Point2::new(lcg(&mut state) * 100.0, r.point.y);
            assert!(index.apply_delta(&IndexDelta::Update {
                id: r.id,
                old_point: old,
                row: r.clone()
            }));
        }
        let removed = data.pop().unwrap();
        assert!(index.apply_delta(&IndexDelta::Remove {
            id: removed.id,
            point: removed.point
        }));
        let added = IndexRow::new(9999, Point2::new(42.0, 0.0), vec![3.0]);
        assert!(index.apply_delta(&IndexDelta::Insert { row: added.clone() }));
        data.push(added);

        let rect = Rect::new(10.0, 80.0, f64::NEG_INFINITY, f64::INFINITY);
        let expected: f64 = data
            .iter()
            .filter(|r| r.point.x >= 10.0 && r.point.x <= 80.0)
            .map(|r| r.values[0])
            .sum();
        let count = data
            .iter()
            .filter(|r| r.point.x >= 10.0 && r.point.x <= 80.0)
            .count();
        let acc = index.probe_rect(&rect);
        assert_eq!(acc.count() as usize, count);
        assert!((acc.channel_sum(0) - expected).abs() < 1e-6);
    }
}
