//! Layered range tree with divisible-aggregate leaves (paper §5.3.1, Fig. 8).
//!
//! The tree is a balanced binary tree over the points sorted by `x`; every
//! node stores the `y` values of the points in its subtree in sorted order
//! together with **prefix accumulators**, so the aggregate of any `y`-range
//! inside the node is the difference of two prefix accumulators (this is
//! exactly the replacement of the last tree layer by aggregate values shown
//! in Figure 8).  An orthogonal range query decomposes the `x`-range into
//! `O(log n)` canonical nodes; with plain binary searches per node a query
//! costs `O(log² n)`, with **fractional cascading** (bridge pointers from a
//! node's `y`-list into its children's `y`-lists) the per-node search is
//! `O(1)` after a single binary search at the root, giving `O(log n)`.

use crate::divisible::DivAcc;
use crate::{Point2, Rect};

/// One data entry: a position plus the values of the aggregated channels.
#[derive(Debug, Clone, PartialEq)]
pub struct AggEntry {
    /// Position of the unit.
    pub point: Point2,
    /// Channel values contributed by the unit (e.g. `[posx, posy]` for a
    /// centroid, `[strength]` for a weighted sum, empty for a pure count).
    pub values: Vec<f64>,
}

impl AggEntry {
    /// Build an entry.
    pub fn new(point: Point2, values: Vec<f64>) -> AggEntry {
        AggEntry { point, values }
    }
}

const NO_CHILD: u32 = u32::MAX;

#[derive(Debug, Clone, Default)]
struct Node {
    left: u32,
    right: u32,
    /// y values of the subtree's points, sorted ascending.
    ys: Vec<f64>,
    /// prefix_count[i] = number of the first `i` entries (by y order).
    pre_count: Vec<f64>,
    /// prefix sums per channel, laid out `[i * channels + c]`.
    pre_sum: Vec<f64>,
    /// prefix sums of squares per channel, same layout.
    pre_sumsq: Vec<f64>,
    /// Fractional-cascading bridges: lower-bound position in the left/right
    /// child for each position of this node's `ys` (length `ys.len() + 1`).
    lb_left: Vec<u32>,
    lb_right: Vec<u32>,
    /// Upper-bound bridges (see `build_bridges`).
    ub_left: Vec<u32>,
    ub_right: Vec<u32>,
}

/// The layered aggregate range tree.
#[derive(Debug, Clone)]
pub struct LayeredAggTree {
    channels: usize,
    cascading: bool,
    /// x coordinates of the points in x-sorted order.
    xs: Vec<f64>,
    nodes: Vec<Node>,
    root: u32,
}

fn lower_bound(slice: &[f64], value: f64) -> usize {
    slice.partition_point(|v| *v < value)
}

fn upper_bound(slice: &[f64], value: f64) -> usize {
    slice.partition_point(|v| *v <= value)
}

impl LayeredAggTree {
    /// Build the tree. `cascading` selects the fractional-cascading variant.
    pub fn build(entries: &[AggEntry], channels: usize, cascading: bool) -> LayeredAggTree {
        let n = entries.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        // nan_last_cmp: a NaN coordinate (of either sign) must not panic the
        // sort or produce an inconsistent order (`unwrap_or(Equal)` is not a
        // total order), and must sort *after* every ordinary number so the
        // `lower_bound`/`upper_bound` searches stay monotonic.
        order.sort_by(|a, b| {
            crate::nan_last_cmp(entries[*a as usize].point.x, entries[*b as usize].point.x)
        });
        let xs: Vec<f64> = order.iter().map(|i| entries[*i as usize].point.x).collect();
        let mut tree = LayeredAggTree {
            channels,
            cascading,
            xs,
            nodes: Vec::new(),
            root: NO_CHILD,
        };
        if n > 0 {
            tree.nodes.reserve(2 * n);
            let root = tree.build_node(&order, entries);
            tree.root = root;
        }
        tree
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// True when the tree indexes no points.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Number of aggregate channels carried by each entry.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Whether the tree was built with fractional cascading.
    pub fn cascading(&self) -> bool {
        self.cascading
    }

    fn build_node(&mut self, order: &[u32], entries: &[AggEntry]) -> u32 {
        debug_assert!(!order.is_empty());
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node::default());
        if order.len() == 1 {
            let e = &entries[order[0] as usize];
            let node = self.leaf_node(e);
            self.nodes[idx as usize] = node;
            return idx;
        }
        let mid = order.len() / 2;
        let left = self.build_node(&order[..mid], entries);
        let right = self.build_node(&order[mid..], entries);
        let node = self.merge_node(left, right, entries);
        self.nodes[idx as usize] = node;
        idx
    }

    fn leaf_node(&self, e: &AggEntry) -> Node {
        let channels = self.channels;
        let mut pre_count = vec![0.0; 2];
        let mut pre_sum = vec![0.0; 2 * channels];
        let mut pre_sumsq = vec![0.0; 2 * channels];
        pre_count[1] = 1.0;
        for c in 0..channels {
            pre_sum[channels + c] = e.values[c];
            pre_sumsq[channels + c] = e.values[c] * e.values[c];
        }
        Node {
            left: NO_CHILD,
            right: NO_CHILD,
            ys: vec![e.point.y],
            pre_count,
            pre_sum,
            pre_sumsq,
            ..Node::default()
        }
    }

    fn merge_node(&self, left: u32, right: u32, entries: &[AggEntry]) -> Node {
        let channels = self.channels;
        // Merge the children's y-lists; we also need the channel values in
        // merged order, which we obtain by merging (y, entry) pairs.  Children
        // only expose ys, so we re-derive values from prefix differences: the
        // i-th entry of a child contributes prefix[i+1] - prefix[i].
        let (lys, rys) = (
            &self.nodes[left as usize].ys,
            &self.nodes[right as usize].ys,
        );
        let len = lys.len() + rys.len();
        let mut ys = Vec::with_capacity(len);
        let mut pre_count = Vec::with_capacity(len + 1);
        let mut pre_sum = Vec::with_capacity((len + 1) * channels);
        let mut pre_sumsq = Vec::with_capacity((len + 1) * channels);
        pre_count.push(0.0);
        pre_sum.extend(std::iter::repeat_n(0.0, channels));
        pre_sumsq.extend(std::iter::repeat_n(0.0, channels));

        let lnode = &self.nodes[left as usize];
        let rnode = &self.nodes[right as usize];
        let (mut li, mut ri) = (0usize, 0usize);
        let push_from = |node: &Node,
                         i: usize,
                         ys: &mut Vec<f64>,
                         pre_count: &mut Vec<f64>,
                         pre_sum: &mut Vec<f64>,
                         pre_sumsq: &mut Vec<f64>| {
            let k = ys.len();
            ys.push(node.ys[i]);
            pre_count.push(pre_count[k] + (node.pre_count[i + 1] - node.pre_count[i]));
            for c in 0..channels {
                let s = node.pre_sum[(i + 1) * channels + c] - node.pre_sum[i * channels + c];
                let q = node.pre_sumsq[(i + 1) * channels + c] - node.pre_sumsq[i * channels + c];
                pre_sum.push(pre_sum[k * channels + c] + s);
                pre_sumsq.push(pre_sumsq[k * channels + c] + q);
            }
        };
        while li < lys.len() || ri < rys.len() {
            // nan_last_cmp keeps the merged list sorted even under NaN ys of
            // either sign; the naive `<=` stalls on NaN and interleaves
            // finite values out of order, after which the prefix binary
            // searches skip them.
            let take_left = ri >= rys.len()
                || (li < lys.len()
                    && crate::nan_last_cmp(lys[li], rys[ri]) != std::cmp::Ordering::Greater);
            if take_left {
                push_from(
                    lnode,
                    li,
                    &mut ys,
                    &mut pre_count,
                    &mut pre_sum,
                    &mut pre_sumsq,
                );
                li += 1;
            } else {
                push_from(
                    rnode,
                    ri,
                    &mut ys,
                    &mut pre_count,
                    &mut pre_sum,
                    &mut pre_sumsq,
                );
                ri += 1;
            }
        }
        let _ = entries;

        let mut node = Node {
            left,
            right,
            ys,
            pre_count,
            pre_sum,
            pre_sumsq,
            ..Node::default()
        };
        if self.cascading {
            self.build_bridges(&mut node, lnode, rnode);
        }
        node
    }

    /// Build the fractional-cascading bridge arrays.
    ///
    /// * `lb_child[i]` = lower-bound position in the child of `ys[i]`
    ///   (`child.len()` for `i = len`): if a query value `v` has lower bound
    ///   `i` in this node, its lower bound in the child is `lb_child[i]`.
    /// * `ub_child[i]` = upper-bound position in the child of `ys[i-1]`
    ///   (`0` for `i = 0`): if `v` has upper bound `i` here, its upper bound
    ///   in the child is `ub_child[i]`.
    fn build_bridges(&self, node: &mut Node, lnode: &Node, rnode: &Node) {
        let len = node.ys.len();
        let build = |child: &Node| -> (Vec<u32>, Vec<u32>) {
            let mut lb = Vec::with_capacity(len + 1);
            let mut ub = Vec::with_capacity(len + 1);
            let mut pl = 0usize;
            for i in 0..len {
                while pl < child.ys.len() && child.ys[pl] < node.ys[i] {
                    pl += 1;
                }
                lb.push(pl as u32);
            }
            lb.push(child.ys.len() as u32);
            ub.push(0);
            let mut pu = 0usize;
            for i in 1..=len {
                let v = node.ys[i - 1];
                while pu < child.ys.len() && child.ys[pu] <= v {
                    pu += 1;
                }
                ub.push(pu as u32);
            }
            (lb, ub)
        };
        let (lbl, ubl) = build(lnode);
        let (lbr, ubr) = build(rnode);
        node.lb_left = lbl;
        node.ub_left = ubl;
        node.lb_right = lbr;
        node.ub_right = ubr;
    }

    fn acc_from_prefix(&self, node: &Node, lo: usize, hi: usize, acc: &mut DivAcc) {
        if hi <= lo {
            return;
        }
        acc.count += node.pre_count[hi] - node.pre_count[lo];
        for c in 0..self.channels {
            acc.sum[c] +=
                node.pre_sum[hi * self.channels + c] - node.pre_sum[lo * self.channels + c];
            acc.sum_sq[c] +=
                node.pre_sumsq[hi * self.channels + c] - node.pre_sumsq[lo * self.channels + c];
        }
    }

    /// Aggregate every point inside the rectangle (inclusive bounds).
    pub fn query(&self, rect: &Rect) -> DivAcc {
        let mut acc = DivAcc::identity(self.channels);
        if self.is_empty() || rect.is_empty() {
            return acc;
        }
        let l = lower_bound(&self.xs, rect.x_min);
        let r = upper_bound(&self.xs, rect.x_max);
        if l >= r {
            return acc;
        }
        let root = &self.nodes[self.root as usize];
        let ylo = lower_bound(&root.ys, rect.y_min);
        let yhi = upper_bound(&root.ys, rect.y_max);
        self.visit(self.root, 0, self.xs.len(), l, r, ylo, yhi, rect, &mut acc);
        acc
    }

    #[allow(clippy::too_many_arguments)]
    fn visit(
        &self,
        node_idx: u32,
        node_lo: usize,
        node_hi: usize,
        l: usize,
        r: usize,
        ylo: usize,
        yhi: usize,
        rect: &Rect,
        acc: &mut DivAcc,
    ) {
        if node_idx == NO_CHILD || r <= node_lo || node_hi <= l {
            return;
        }
        let node = &self.nodes[node_idx as usize];
        if l <= node_lo && node_hi <= r {
            // Canonical node: aggregate its y-range using the prefix arrays.
            let (lo, hi) = if self.cascading {
                (ylo, yhi)
            } else {
                (
                    lower_bound(&node.ys, rect.y_min),
                    upper_bound(&node.ys, rect.y_max),
                )
            };
            self.acc_from_prefix(node, lo, hi, acc);
            return;
        }
        let mid = node_lo + (node_hi - node_lo) / 2;
        if self.cascading {
            let (ylo_l, yhi_l) = (node.lb_left[ylo] as usize, node.ub_left[yhi] as usize);
            let (ylo_r, yhi_r) = (node.lb_right[ylo] as usize, node.ub_right[yhi] as usize);
            self.visit(node.left, node_lo, mid, l, r, ylo_l, yhi_l, rect, acc);
            self.visit(node.right, mid, node_hi, l, r, ylo_r, yhi_r, rect, acc);
        } else {
            self.visit(node.left, node_lo, mid, l, r, 0, 0, rect, acc);
            self.visit(node.right, mid, node_hi, l, r, 0, 0, rect, acc);
        }
    }

    /// Convenience: number of points in the rectangle.
    pub fn count(&self, rect: &Rect) -> usize {
        self.query(rect).count() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random generator for test data.
    fn lcg(state: &mut u64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*state >> 11) as f64) / ((1u64 << 53) as f64)
    }

    fn random_entries(n: usize, seed: u64, world: f64) -> Vec<AggEntry> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                let x = lcg(&mut state) * world;
                let y = lcg(&mut state) * world;
                let w = lcg(&mut state) * 10.0;
                AggEntry::new(Point2::new(x, y), vec![x, y, w])
            })
            .collect()
    }

    fn brute_force(entries: &[AggEntry], rect: &Rect, channels: usize) -> DivAcc {
        let mut acc = DivAcc::identity(channels);
        for e in entries {
            if rect.contains(&e.point) {
                acc.insert(&e.values);
            }
        }
        acc
    }

    fn assert_acc_eq(a: &DivAcc, b: &DivAcc) {
        assert!(
            (a.count - b.count).abs() < 1e-9,
            "count {} vs {}",
            a.count,
            b.count
        );
        for c in 0..a.channels() {
            assert!(
                (a.sum[c] - b.sum[c]).abs() < 1e-6,
                "sum[{c}] {} vs {}",
                a.sum[c],
                b.sum[c]
            );
            assert!(
                (a.sum_sq[c] - b.sum_sq[c]).abs() < 1e-3,
                "sumsq[{c}] {} vs {}",
                a.sum_sq[c],
                b.sum_sq[c]
            );
        }
    }

    #[test]
    fn empty_tree_returns_identity() {
        let tree = LayeredAggTree::build(&[], 2, true);
        assert!(tree.is_empty());
        let acc = tree.query(&Rect::centered(0.0, 0.0, 10.0));
        assert_eq!(acc.count(), 0.0);
    }

    #[test]
    fn single_point() {
        let entries = vec![AggEntry::new(Point2::new(5.0, 5.0), vec![5.0, 5.0, 3.0])];
        for cascading in [false, true] {
            let tree = LayeredAggTree::build(&entries, 3, cascading);
            assert_eq!(tree.count(&Rect::centered(5.0, 5.0, 1.0)), 1);
            assert_eq!(tree.count(&Rect::centered(10.0, 10.0, 1.0)), 0);
            // Inclusive boundaries.
            assert_eq!(tree.count(&Rect::new(5.0, 5.0, 5.0, 5.0)), 1);
        }
    }

    #[test]
    fn matches_brute_force_on_random_data() {
        let entries = random_entries(400, 42, 100.0);
        for cascading in [false, true] {
            let tree = LayeredAggTree::build(&entries, 3, cascading);
            assert_eq!(tree.len(), 400);
            assert_eq!(tree.channels(), 3);
            assert_eq!(tree.cascading(), cascading);
            let mut state = 7u64;
            for _ in 0..200 {
                let cx = lcg(&mut state) * 100.0;
                let cy = lcg(&mut state) * 100.0;
                let r = lcg(&mut state) * 30.0;
                let rect = Rect::centered(cx, cy, r);
                let fast = tree.query(&rect);
                let slow = brute_force(&entries, &rect, 3);
                assert_acc_eq(&fast, &slow);
            }
        }
    }

    #[test]
    fn cascading_and_plain_queries_agree() {
        let entries = random_entries(257, 99, 50.0);
        let plain = LayeredAggTree::build(&entries, 3, false);
        let cascaded = LayeredAggTree::build(&entries, 3, true);
        let mut state = 1u64;
        for _ in 0..100 {
            let rect = Rect::centered(
                lcg(&mut state) * 50.0,
                lcg(&mut state) * 50.0,
                lcg(&mut state) * 20.0,
            );
            assert_acc_eq(&plain.query(&rect), &cascaded.query(&rect));
        }
    }

    #[test]
    fn duplicate_coordinates_are_handled() {
        // Many points stacked on the same position and collinear points.
        let mut entries = Vec::new();
        for i in 0..50 {
            entries.push(AggEntry::new(Point2::new(10.0, 10.0), vec![i as f64]));
            entries.push(AggEntry::new(Point2::new(10.0, i as f64), vec![1.0]));
            entries.push(AggEntry::new(Point2::new(i as f64, 10.0), vec![2.0]));
        }
        for cascading in [false, true] {
            let tree = LayeredAggTree::build(&entries, 1, cascading);
            let rect = Rect::new(10.0, 10.0, 10.0, 10.0);
            let brute = brute_force(&entries, &rect, 1);
            assert_acc_eq(&tree.query(&rect), &brute);
            let rect = Rect::new(0.0, 20.0, 9.5, 10.5);
            assert_acc_eq(&tree.query(&rect), &brute_force(&entries, &rect, 1));
        }
    }

    #[test]
    fn whole_plane_query_aggregates_everything() {
        let entries = random_entries(123, 5, 10.0);
        let tree = LayeredAggTree::build(&entries, 3, true);
        let rect = Rect::new(
            f64::NEG_INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::INFINITY,
        );
        let acc = tree.query(&rect);
        assert_eq!(acc.count() as usize, 123);
        let total: f64 = entries.iter().map(|e| e.values[2]).sum();
        assert!((acc.channel_sum(2) - total).abs() < 1e-6);
    }

    #[test]
    fn centroid_and_std_dev_queries() {
        // Four points at the corners of a square: centroid in the middle.
        let entries = vec![
            AggEntry::new(Point2::new(0.0, 0.0), vec![0.0, 0.0]),
            AggEntry::new(Point2::new(2.0, 0.0), vec![2.0, 0.0]),
            AggEntry::new(Point2::new(0.0, 2.0), vec![0.0, 2.0]),
            AggEntry::new(Point2::new(2.0, 2.0), vec![2.0, 2.0]),
        ];
        let tree = LayeredAggTree::build(&entries, 2, true);
        let acc = tree.query(&Rect::new(-1.0, 3.0, -1.0, 3.0));
        assert_eq!(acc.mean(0), Some(1.0));
        assert_eq!(acc.mean(1), Some(1.0));
        assert_eq!(acc.std_dev(0), Some(1.0));
    }

    #[test]
    fn degenerate_rectangles() {
        let entries = random_entries(64, 3, 20.0);
        let tree = LayeredAggTree::build(&entries, 3, true);
        assert_eq!(tree.query(&Rect::new(5.0, 4.0, 0.0, 20.0)).count(), 0.0);
        assert_eq!(
            tree.query(&Rect::new(100.0, 200.0, 100.0, 200.0)).count(),
            0.0
        );
    }

    #[test]
    fn zero_channel_trees_count_only() {
        let entries: Vec<AggEntry> = (0..20)
            .map(|i| AggEntry::new(Point2::new(i as f64, i as f64), vec![]))
            .collect();
        let tree = LayeredAggTree::build(&entries, 0, true);
        assert_eq!(tree.count(&Rect::new(0.0, 9.0, 0.0, 9.0)), 10);
    }
}
