//! kD-tree for nearest-neighbour spatial aggregates (paper §5.3.2).
//!
//! The paper places kD-trees below the categorical layers of the index
//! (player × unit type), so the trees themselves never need attribute
//! filters; an optional predicate parameter is still provided for aggregates
//! such as "nearest enemy whose armor we can penetrate".

use crate::{Point2, Rect};

#[derive(Debug, Clone)]
struct Node {
    /// Position in the point array.
    id: u32,
    /// Split axis: 0 = x, 1 = y.
    axis: u8,
    left: i32,
    right: i32,
}

const NO_CHILD: i32 = -1;

/// A static 2-dimensional kD-tree.
#[derive(Debug, Clone)]
pub struct KdTree {
    points: Vec<Point2>,
    nodes: Vec<Node>,
    root: i32,
}

impl KdTree {
    /// Build a balanced kD-tree (median splits) over the points.
    pub fn build(points: &[Point2]) -> KdTree {
        let mut ids: Vec<u32> = (0..points.len() as u32).collect();
        let mut tree = KdTree {
            points: points.to_vec(),
            nodes: Vec::with_capacity(points.len()),
            root: NO_CHILD,
        };
        if !points.is_empty() {
            tree.root = tree.build_node(&mut ids, 0);
        }
        tree
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the tree contains no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    fn build_node(&mut self, ids: &mut [u32], depth: usize) -> i32 {
        if ids.is_empty() {
            return NO_CHILD;
        }
        let axis = (depth % 2) as u8;
        let mid = ids.len() / 2;
        let points = &self.points;
        ids.select_nth_unstable_by(mid, |a, b| {
            let (pa, pb) = (&points[*a as usize], &points[*b as usize]);
            let (ka, kb) = if axis == 0 {
                (pa.x, pb.x)
            } else {
                (pa.y, pb.y)
            };
            // nan_last_cmp: NaN coordinates need a consistent ordering — the
            // `unwrap_or(Equal)` fallback was not transitive and could build
            // a tree whose invariants don't hold.
            crate::nan_last_cmp(ka, kb)
        });
        let id = ids[mid];
        let node_idx = self.nodes.len() as i32;
        self.nodes.push(Node {
            id,
            axis,
            left: NO_CHILD,
            right: NO_CHILD,
        });
        let (left_ids, rest) = ids.split_at_mut(mid);
        let right_ids = &mut rest[1..];
        let left = self.build_node(left_ids, depth + 1);
        let right = self.build_node(right_ids, depth + 1);
        self.nodes[node_idx as usize].left = left;
        self.nodes[node_idx as usize].right = right;
        node_idx
    }

    /// Nearest point to `query` (by Euclidean distance).  Returns
    /// `(point id, squared distance)`.
    ///
    /// Exact distance ties resolve to the **smallest point id** — callers
    /// that need reference semantics (argmin ties go to the first candidate
    /// in a canonical order) get them by handing `build` the points in that
    /// order.  Without the rule, duplicate positions would make the winner
    /// depend on tree shape, which the conformance suite observes as a
    /// divergence from the scan-based oracle.
    pub fn nearest(&self, query: &Point2) -> Option<(u32, f64)> {
        self.nearest_filtered(query, |_| true)
    }

    /// Nearest point satisfying the predicate (e.g. "not the unit itself",
    /// "armor below my attack").  Ties resolve as in [`KdTree::nearest`].
    pub fn nearest_filtered<F: Fn(u32) -> bool>(
        &self,
        query: &Point2,
        accept: F,
    ) -> Option<(u32, f64)> {
        let mut best: Option<(u32, f64)> = None;
        self.search(self.root, query, &accept, &mut best);
        best
    }

    fn search<F: Fn(u32) -> bool>(
        &self,
        node_idx: i32,
        query: &Point2,
        accept: &F,
        best: &mut Option<(u32, f64)>,
    ) {
        if node_idx == NO_CHILD {
            return;
        }
        let node = &self.nodes[node_idx as usize];
        let p = &self.points[node.id as usize];
        let d2 = query.dist2(p);
        // A NaN distance (NaN point coordinates) must never become the best
        // candidate: once stored it would win every subsequent `d2 < bd`
        // comparison and shadow all finite neighbours.  Exact ties prefer
        // the smaller id (see `nearest`).
        if accept(node.id)
            && !d2.is_nan()
            && best.is_none_or(|(bid, bd)| d2 < bd || (d2 == bd && node.id < bid))
        {
            *best = Some((node.id, d2));
        }
        let diff = if node.axis == 0 {
            query.x - p.x
        } else {
            query.y - p.y
        };
        let (near, far) = if diff <= 0.0 {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        self.search(near, query, accept, best);
        // Only descend into the far side if the splitting plane is at most
        // the best distance found so far (or nothing was found yet).  `<=`
        // rather than `<`: a far-side point at *exactly* the best distance
        // may still win the smaller-id tie-break.  A NaN splitting
        // coordinate carries no pruning information: descend both sides
        // rather than hide finite points below it.
        if diff.is_nan() || best.is_none_or(|(_, bd)| diff * diff <= bd) {
            self.search(far, query, accept, best);
        }
    }

    /// All point ids within `radius` of `query` (Euclidean).
    pub fn within_radius(&self, query: &Point2, radius: f64) -> Vec<u32> {
        let mut out = Vec::new();
        let r2 = radius * radius;
        let rect = Rect::centered(query.x, query.y, radius);
        self.range_search(self.root, query, r2, &rect, &mut out);
        out
    }

    fn range_search(
        &self,
        node_idx: i32,
        query: &Point2,
        r2: f64,
        rect: &Rect,
        out: &mut Vec<u32>,
    ) {
        if node_idx == NO_CHILD {
            return;
        }
        let node = &self.nodes[node_idx as usize];
        let p = &self.points[node.id as usize];
        if query.dist2(p) <= r2 {
            out.push(node.id);
        }
        let (coord, lo, hi) = if node.axis == 0 {
            (p.x, rect.x_min, rect.x_max)
        } else {
            (p.y, rect.y_min, rect.y_max)
        };
        // A NaN splitting coordinate fails both comparisons; descend both
        // sides so finite points below it stay reachable.
        if coord.is_nan() || lo <= coord {
            self.range_search(node.left, query, r2, rect, out);
        }
        if coord.is_nan() || coord <= hi {
            self.range_search(node.right, query, r2, rect, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(state: &mut u64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*state >> 11) as f64) / ((1u64 << 53) as f64)
    }

    fn random_points(n: usize, seed: u64, world: f64) -> Vec<Point2> {
        let mut state = seed;
        (0..n)
            .map(|_| Point2::new(lcg(&mut state) * world, lcg(&mut state) * world))
            .collect()
    }

    fn brute_nearest<F: Fn(u32) -> bool>(
        points: &[Point2],
        q: &Point2,
        accept: F,
    ) -> Option<(u32, f64)> {
        points
            .iter()
            .enumerate()
            .filter(|(i, _)| accept(*i as u32))
            .map(|(i, p)| (i as u32, q.dist2(p)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }

    #[test]
    fn empty_tree_has_no_neighbours() {
        let tree = KdTree::build(&[]);
        assert!(tree.is_empty());
        assert_eq!(tree.nearest(&Point2::new(0.0, 0.0)), None);
        assert!(tree.within_radius(&Point2::new(0.0, 0.0), 5.0).is_empty());
    }

    #[test]
    fn nearest_matches_brute_force() {
        let points = random_points(500, 77, 100.0);
        let tree = KdTree::build(&points);
        assert_eq!(tree.len(), 500);
        let mut state = 5u64;
        for _ in 0..200 {
            let q = Point2::new(lcg(&mut state) * 100.0, lcg(&mut state) * 100.0);
            let (fast_id, fast_d) = tree.nearest(&q).unwrap();
            let (_slow_id, slow_d) = brute_nearest(&points, &q, |_| true).unwrap();
            // Ties may pick different ids, but the distances must agree.
            assert!((fast_d - slow_d).abs() < 1e-9);
            assert!((q.dist2(&points[fast_id as usize]) - slow_d).abs() < 1e-9);
        }
    }

    #[test]
    fn filtered_nearest_excludes_rejected_points() {
        let points = random_points(200, 13, 50.0);
        let tree = KdTree::build(&points);
        let mut state = 17u64;
        for qid in 0..50u32 {
            let q = points[qid as usize];
            // Exclude the query point itself (distance 0) — the classic
            // "nearest other unit" query.
            let fast = tree.nearest_filtered(&q, |id| id != qid).unwrap();
            let slow = brute_nearest(&points, &q, |id| id != qid).unwrap();
            assert!((fast.1 - slow.1).abs() < 1e-9);
            assert_ne!(fast.0, qid);
            let _ = lcg(&mut state);
        }
    }

    #[test]
    fn filter_rejecting_everything_returns_none() {
        let points = random_points(32, 3, 10.0);
        let tree = KdTree::build(&points);
        assert_eq!(
            tree.nearest_filtered(&Point2::new(1.0, 1.0), |_| false),
            None
        );
    }

    #[test]
    fn within_radius_matches_brute_force() {
        let points = random_points(300, 23, 60.0);
        let tree = KdTree::build(&points);
        let mut state = 8u64;
        for _ in 0..50 {
            let q = Point2::new(lcg(&mut state) * 60.0, lcg(&mut state) * 60.0);
            let r = lcg(&mut state) * 15.0;
            let mut fast = tree.within_radius(&q, r);
            fast.sort_unstable();
            let mut slow: Vec<u32> = points
                .iter()
                .enumerate()
                .filter(|(_, p)| q.dist2(p) <= r * r)
                .map(|(i, _)| i as u32)
                .collect();
            slow.sort_unstable();
            assert_eq!(fast, slow);
        }
    }

    /// Regression (conformance seed 3, stacked layout): two points at the
    /// *same* position are equidistant from every query; the winner must be
    /// the smallest id, as the scan-based reference semantics produce, not
    /// whatever the tree shape happens to visit first.
    #[test]
    fn exact_distance_ties_resolve_to_the_smallest_id() {
        // Many duplicates in shuffled insertion order, plus a decoy.
        let stacked = Point2::new(21.057808, 34.255306);
        let points = vec![
            Point2::new(40.0, 40.0), // id 0: decoy, further away
            stacked,                 // id 1
            stacked,                 // id 2
            stacked,                 // id 3
        ];
        let tree = KdTree::build(&points);
        let q = Point2::new(29.412077, 34.638682);
        let (id, _) = tree.nearest(&q).unwrap();
        assert_eq!(id, 1, "tie must go to the smallest id");
        // Filtered variant too (the "not myself" query).
        let (id, _) = tree.nearest_filtered(&q, |i| i != 1).unwrap();
        assert_eq!(id, 2);
        // Symmetric tie across a split plane: two points mirrored around the
        // query — equal distance, smallest id wins regardless of side.
        let mirrored = vec![
            Point2::new(10.0, 0.0),
            Point2::new(-10.0, 0.0),
            Point2::new(0.0, 25.0),
        ];
        let tree = KdTree::build(&mirrored);
        let (id, _) = tree.nearest(&Point2::new(0.0, 0.0)).unwrap();
        assert_eq!(id, 0);
    }

    #[test]
    fn duplicate_points_do_not_break_the_tree() {
        let mut points = vec![Point2::new(1.0, 1.0); 20];
        points.push(Point2::new(5.0, 5.0));
        let tree = KdTree::build(&points);
        let (id, d) = tree.nearest(&Point2::new(4.9, 5.1)).unwrap();
        assert_eq!(id, 20);
        assert!(d < 0.1);
        assert_eq!(tree.within_radius(&Point2::new(1.0, 1.0), 0.1).len(), 20);
    }
}
