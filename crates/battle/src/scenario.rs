//! Scenario generation and battle runners for the experiments of §6.

use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::SeedableRng;

use sgl_core::engine::{RunSummary, Simulation, UnitSelector};
use sgl_core::env::{EnvTable, Schema, TupleBuilder, Value};
use sgl_core::exec::{ExecConfig, ExecMode};
use sgl_core::GameBuilder;

use crate::formations::{place, Formation};
use crate::{
    battle_mechanics, battle_registry, battle_schema, UnitKind, ARCHER_SCRIPT, HEALER_SCRIPT,
    KNIGHT_SCRIPT,
};

/// Fraction of each unit type per player.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitMix {
    /// Fraction of knights.
    pub knights: f64,
    /// Fraction of archers.
    pub archers: f64,
    /// Fraction of healers.
    pub healers: f64,
}

impl Default for UnitMix {
    fn default() -> Self {
        UnitMix {
            knights: 1.0 / 3.0,
            archers: 1.0 / 3.0,
            healers: 1.0 / 3.0,
        }
    }
}

/// Parameters of a generated battle (the §6 experimental setup).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioConfig {
    /// Total number of units (split evenly between the two players).
    pub units: usize,
    /// Fraction of game-grid squares occupied (§6 uses 1 %); determines the
    /// world side length as `sqrt(units / density)`.
    pub density: f64,
    /// Unit-type mix.
    pub mix: UnitMix,
    /// Seed for unit placement and the game RNG.
    pub seed: u64,
    /// Keep the population constant by resurrecting dead units (§6).
    pub resurrect: bool,
    /// Initial deployment shape of both armies (§3.2 formations); the default
    /// [`Formation::Scattered`] reproduces the paper's uniform placement.
    pub formation: Formation,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            units: 500,
            density: 0.01,
            mix: UnitMix::default(),
            seed: 42,
            resurrect: true,
            formation: Formation::Scattered,
        }
    }
}

impl ScenarioConfig {
    /// Side length of the square world implied by the unit count and density.
    pub fn world_side(&self) -> f64 {
        ((self.units as f64) / self.density.max(1e-6))
            .sqrt()
            .max(4.0)
    }
}

/// A generated battle scenario: schema, initial environment and world size.
#[derive(Debug, Clone)]
pub struct BattleScenario {
    /// Shared schema.
    pub schema: Arc<Schema>,
    /// Initial environment.
    pub table: EnvTable,
    /// World side length.
    pub world_side: f64,
    /// Configuration used.
    pub config: ScenarioConfig,
}

impl BattleScenario {
    /// Generate a scenario: player 0 on the left half of the map, player 1 on
    /// the right half, unit types interleaved according to the mix.
    pub fn generate(config: ScenarioConfig) -> BattleScenario {
        let schema = battle_schema().into_shared();
        let mut table = EnvTable::new(Arc::clone(&schema));
        let world = config.world_side();
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let per_player = (config.units / 2).max(1);
        let mut key = 0i64;
        for player in 0..2i64 {
            for i in 0..per_player {
                let frac = i as f64 / per_player as f64;
                let kind = if frac < config.mix.knights {
                    UnitKind::Knight
                } else if frac < config.mix.knights + config.mix.archers {
                    UnitKind::Archer
                } else {
                    UnitKind::Healer
                };
                let stats = kind.stats();
                // Deployment zones keep the armies separated at the start
                // (player 0 left, player 1 right); the formation decides how
                // units are arranged inside their zone.
                let (x, y) = place(
                    config.formation,
                    player,
                    i,
                    per_player,
                    kind,
                    world,
                    &mut rng,
                );
                let tuple = TupleBuilder::new(&schema)
                    .expect_set("key", key)
                    .expect_set("player", player)
                    .expect_set("unittype", kind.code())
                    .expect_set("posx", x)
                    .expect_set("posy", y)
                    .expect_set("health", stats.max_health)
                    .expect_set("max_health", stats.max_health)
                    .expect_set("range", stats.range)
                    .expect_set("sight", stats.sight)
                    .expect_set("morale", stats.morale)
                    .expect_set("armor", stats.armor)
                    .expect_set("strength", stats.strength)
                    .build();
                table.insert(tuple).expect("generated keys are unique");
                key += 1;
            }
        }
        BattleScenario {
            schema,
            table,
            world_side: world,
            config,
        }
    }

    /// Build a ready-to-run simulation for this scenario in the given
    /// execution mode, registering the knight/archer/healer scripts.
    pub fn build_simulation(&self, mode: ExecMode) -> Simulation {
        self.build_with_config(ExecConfig::for_mode(mode, &self.schema))
    }

    /// Build a simulation under an explicit executor configuration (the
    /// conformance and golden-digest suites sweep the full policy × backend
    /// × parallelism lattice).
    pub fn build_with_config(&self, exec: ExecConfig) -> Simulation {
        let registry = battle_registry();
        let mechanics = battle_mechanics(&self.schema, self.world_side, self.config.resurrect);
        let unittype = self.schema.attr_id("unittype").expect("battle schema");
        GameBuilder::new(Arc::clone(&self.schema), registry, mechanics)
            .exec_config(exec)
            .seed(self.config.seed)
            .script(
                "knight",
                KNIGHT_SCRIPT,
                UnitSelector::AttrEquals(unittype, Value::Int(UnitKind::Knight.code())),
            )
            .script(
                "archer",
                ARCHER_SCRIPT,
                UnitSelector::AttrEquals(unittype, Value::Int(UnitKind::Archer.code())),
            )
            .script(
                "healer",
                HEALER_SCRIPT,
                UnitSelector::AttrEquals(unittype, Value::Int(UnitKind::Healer.code())),
            )
            .build(self.table.clone())
            .expect("battle scripts compile")
    }
}

/// Result of a timed battle run (one experimental data point).
#[derive(Debug, Clone, Copy)]
pub struct BattleMeasurement {
    /// Number of units.
    pub units: usize,
    /// Occupied-cell density.
    pub density: f64,
    /// Execution mode measured.
    pub mode: ExecMode,
    /// Ticks simulated.
    pub ticks: usize,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// Run summary (aggregate probes, deaths, ...).
    pub summary: RunSummary,
}

impl BattleMeasurement {
    /// Seconds per simulated tick.
    pub fn seconds_per_tick(&self) -> f64 {
        self.elapsed.as_secs_f64() / self.ticks.max(1) as f64
    }

    /// Extrapolated time for 500 ticks (the quantity plotted in Figure 10).
    pub fn seconds_per_500_ticks(&self) -> f64 {
        self.seconds_per_tick() * 500.0
    }

    /// Simulated ticks per second (the capacity metric of §6.1).
    pub fn ticks_per_second(&self) -> f64 {
        1.0 / self.seconds_per_tick().max(1e-12)
    }
}

/// Run and time a battle with the given parameters.
pub fn run_battle(
    units: usize,
    density: f64,
    mode: ExecMode,
    ticks: usize,
    seed: u64,
) -> BattleMeasurement {
    let config = ScenarioConfig {
        units,
        density,
        seed,
        ..ScenarioConfig::default()
    };
    let scenario = BattleScenario::generate(config);
    let mut sim = scenario.build_simulation(mode);
    let start = Instant::now();
    let summary = sim.run(ticks).expect("battle ticks succeed");
    let elapsed = start.elapsed();
    BattleMeasurement {
        units,
        density,
        mode,
        ticks,
        elapsed,
        summary,
    }
}

/// Small extension to build tuples without `unwrap` noise.
trait ExpectSet<'a>: Sized {
    fn expect_set(self, name: &str, value: impl Into<Value>) -> Self;
}

impl<'a> ExpectSet<'a> for TupleBuilder<'a> {
    fn expect_set(self, name: &str, value: impl Into<Value>) -> Self {
        self.set(name, value).expect("battle schema attribute")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_generation_respects_counts_and_world_size() {
        let config = ScenarioConfig {
            units: 120,
            density: 0.01,
            ..ScenarioConfig::default()
        };
        let scenario = BattleScenario::generate(config);
        assert_eq!(scenario.table.len(), 120);
        let expected_side = (120.0f64 / 0.01).sqrt();
        assert!((scenario.world_side - expected_side).abs() < 1e-9);
        // Both players present, all three unit types present.
        let player = scenario.schema.attr_id("player").unwrap();
        let unittype = scenario.schema.attr_id("unittype").unwrap();
        let mut players = [0usize; 2];
        let mut kinds = [0usize; 3];
        for (_, row) in scenario.table.iter() {
            players[row.get_i64(player).unwrap() as usize] += 1;
            kinds[row.get_i64(unittype).unwrap() as usize] += 1;
        }
        assert_eq!(players[0], 60);
        assert_eq!(players[1], 60);
        assert!(kinds.iter().all(|c| *c > 0));
    }

    #[test]
    fn battle_runs_in_both_modes_and_reaches_combat() {
        let config = ScenarioConfig {
            units: 60,
            density: 0.02,
            seed: 9,
            ..ScenarioConfig::default()
        };
        let scenario = BattleScenario::generate(config);
        for mode in [ExecMode::Naive, ExecMode::Indexed] {
            let mut sim = scenario.build_simulation(mode);
            let summary = sim.run(10).unwrap();
            assert_eq!(summary.ticks, 10);
            assert_eq!(
                summary.final_population, 60,
                "resurrection keeps the population constant"
            );
            assert!(summary.exec.aggregate_probes > 0);
        }
    }

    #[test]
    fn indexed_mode_answers_battle_aggregates_without_scans() {
        let config = ScenarioConfig {
            units: 80,
            density: 0.02,
            seed: 4,
            ..ScenarioConfig::default()
        };
        let scenario = BattleScenario::generate(config);
        let mut sim = scenario.build_simulation(ExecMode::Indexed);
        let summary = sim.run(3).unwrap();
        assert_eq!(
            summary.exec.naive_scans, 0,
            "every battle aggregate should be index-supported"
        );
        assert!(summary.exec.index_probes > 0);
    }

    #[test]
    fn measurements_expose_figure10_metrics() {
        let m = run_battle(40, 0.02, ExecMode::Indexed, 3, 7);
        assert_eq!(m.units, 40);
        assert!(m.seconds_per_tick() > 0.0);
        assert!(m.seconds_per_500_ticks() > m.seconds_per_tick());
        assert!(m.ticks_per_second() > 0.0);
    }
}
