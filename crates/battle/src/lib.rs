//! # sgl-battle — the battle-simulation case study (§3.2 and §6)
//!
//! A faithful implementation of the paper's evaluation workload: a two-player
//! RTS-style battle with three unit types — armored melee **knights**,
//! long-range **archers** and area-of-effect **healers** — whose behaviour is
//! written in SGL.  Every unit evaluates roughly ten aggregate queries per
//! clock tick (counts, centroids, spreads, sums, minima and nearest
//! neighbours), exercising every index structure of `sgl-index`.  Combat uses
//! d20-style mechanics (hit roll + flat damage reduced by armor).

#![warn(missing_docs)]

pub mod formations;
pub mod presets;
pub mod scenario;
pub mod skeletons;

use std::sync::Arc;

use sgl_core::engine::{Mechanics, MovementConfig, ResurrectConfig};
use sgl_core::env::postprocess::{PostProcessor, UpdateExpr};
use sgl_core::env::{Schema, Value};
use sgl_core::lang::ast::{CmpOp, Cond, Term};
use sgl_core::lang::builtins::{
    ally_filter, enemy_filter, rect_range_filter, squared_distance, ActionDef, AggOutput, AggSpec,
    AggregateDef, EffectClause, Registry, SimpleAgg,
};

pub use formations::Formation;
pub use presets::{PresetScenario, HOLD_SCRIPT};
pub use scenario::{BattleScenario, ScenarioConfig, UnitMix};
pub use skeletons::{SkeletonConfig, SkeletonScenario, MARCH_SCRIPT};

/// The three unit types of the case study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnitKind {
    /// Armored melee fighter: short range, high damage, high health.
    Knight,
    /// Ranged attacker: long range, low armor.
    Archer,
    /// Support unit casting a nonstackable healing aura.
    Healer,
}

impl UnitKind {
    /// All kinds in a fixed order.
    pub const ALL: [UnitKind; 3] = [UnitKind::Knight, UnitKind::Archer, UnitKind::Healer];

    /// The integer code stored in the `unittype` attribute.
    pub fn code(self) -> i64 {
        match self {
            UnitKind::Knight => 0,
            UnitKind::Archer => 1,
            UnitKind::Healer => 2,
        }
    }

    /// Decode from the integer code.
    pub fn from_code(code: i64) -> Option<UnitKind> {
        match code {
            0 => Some(UnitKind::Knight),
            1 => Some(UnitKind::Archer),
            2 => Some(UnitKind::Healer),
            _ => None,
        }
    }

    /// d20-flavoured unit statistics: `(max hp, armor, attack/heal range,
    /// sight range, strength, morale threshold)`.
    pub fn stats(self) -> UnitStats {
        match self {
            UnitKind::Knight => UnitStats {
                max_health: 30,
                armor: 4,
                range: 2.0,
                sight: 20.0,
                strength: 8,
                morale: 8,
            },
            UnitKind::Archer => UnitStats {
                max_health: 18,
                armor: 1,
                range: 12.0,
                sight: 24.0,
                strength: 5,
                morale: 3,
            },
            UnitKind::Healer => UnitStats {
                max_health: 16,
                armor: 1,
                range: 8.0,
                sight: 24.0,
                strength: 3,
                morale: 2,
            },
        }
    }
}

/// Static statistics of a unit kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitStats {
    /// Maximum (and starting) health.
    pub max_health: i64,
    /// Flat damage reduction.
    pub armor: i64,
    /// Attack or heal range.
    pub range: f64,
    /// Sight range used for situational awareness aggregates.
    pub sight: f64,
    /// Strength (used for army-strength sums).
    pub strength: i64,
    /// Number of nearby enemies that triggers a retreat.
    pub morale: i64,
}

/// Build the battle schema: the paper schema of Eq. (1) extended with the
/// per-unit statistics the scripts read.
pub fn battle_schema() -> Schema {
    let mut b = Schema::builder();
    b.key("key")
        .const_attr("player", 0i64)
        .const_attr("unittype", 0i64)
        .const_attr("posx", 0.0)
        .const_attr("posy", 0.0)
        .const_attr("health", 0i64)
        .const_attr("max_health", 0i64)
        .const_attr("cooldown", 0i64)
        .const_attr("range", 1.0)
        .const_attr("sight", 10.0)
        .const_attr("morale", 3i64)
        .const_attr("armor", 0i64)
        .const_attr("strength", 1i64)
        .sum_attr("weaponused", 0i64)
        .sum_attr("movevect_x", 0.0)
        .sum_attr("movevect_y", 0.0)
        .sum_attr("damage", 0i64)
        .max_attr("inaura", 0i64);
    b.build().expect("battle schema is valid")
}

fn count_output() -> Vec<AggOutput> {
    vec![AggOutput {
        name: "value".into(),
        func: SimpleAgg::Count,
        value: Term::int(1),
        default: Value::Int(0),
    }]
}

fn centroid_outputs() -> Vec<AggOutput> {
    vec![
        AggOutput {
            name: "x".into(),
            func: SimpleAgg::Avg,
            value: Term::row("posx"),
            default: Value::Float(0.0),
        },
        AggOutput {
            name: "y".into(),
            func: SimpleAgg::Avg,
            value: Term::row("posy"),
            default: Value::Float(0.0),
        },
    ]
}

fn hit_roll() -> Term {
    // d20-style to-hit: ((Random(1) mod 20) + _ATK_BONUS) / 20 is 1 on a
    // sufficiently high roll and 0 otherwise (integer division).
    Term::bin(
        sgl_core::lang::BinOp::Div,
        Term::bin(
            sgl_core::lang::BinOp::Add,
            Term::bin(
                sgl_core::lang::BinOp::Mod,
                Term::Random(Box::new(Term::int(1))),
                Term::int(20),
            ),
            Term::name("_ATK_BONUS"),
        ),
        Term::int(20),
    )
}

fn damage_effect(weapon_damage: &str) -> Term {
    // (weapon damage - target armor) * hit roll — armor is always below the
    // weapon damage so the effect is never negative.
    Term::bin(
        sgl_core::lang::BinOp::Mul,
        Term::bin(
            sgl_core::lang::BinOp::Sub,
            Term::name(weapon_damage),
            Term::row("armor"),
        ),
        hit_roll(),
    )
}

/// Build the registry of built-ins used by the battle scripts: ten aggregate
/// functions (covering every index class of §5.3) and four actions.
pub fn battle_registry() -> Registry {
    let mut reg = Registry::new();
    reg.set_constant("_ARROW_DMG", 6i64);
    reg.set_constant("_SWORD_DMG", 9i64);
    reg.set_constant("_ATK_BONUS", 8i64);
    reg.set_constant("_HEAL_AURA", 4i64);
    reg.set_constant("_HEALER_RANGE", 8.0f64);
    reg.set_constant("_TIME_RELOAD", 2i64);
    reg.set_constant("_KNIGHT", UnitKind::Knight.code());
    reg.set_constant("_ARCHER", UnitKind::Archer.code());
    reg.set_constant("_HEALER", UnitKind::Healer.code());

    let rect = |range: &str| rect_range_filter(Term::name(range));

    // --- divisible aggregates (layered aggregate range trees) --------------
    let simple = |name: &str, filter: Cond, outputs: Vec<AggOutput>| AggregateDef {
        name: name.into(),
        params: vec!["u".into(), "range".into()],
        filter,
        spec: AggSpec::Simple { outputs },
    };
    reg.register_aggregate(simple(
        "CountEnemiesInRange",
        Cond::and(rect("range"), enemy_filter()),
        count_output(),
    ));
    reg.register_aggregate(simple(
        "CountAlliesInRange",
        Cond::and(rect("range"), ally_filter()),
        count_output(),
    ));
    reg.register_aggregate(simple(
        "CentroidOfEnemies",
        Cond::and(rect("range"), enemy_filter()),
        centroid_outputs(),
    ));
    reg.register_aggregate(simple(
        "CentroidOfAllies",
        Cond::and(rect("range"), ally_filter()),
        centroid_outputs(),
    ));
    reg.register_aggregate(simple(
        "CentroidOfAllyKnights",
        Cond::and(
            Cond::and(rect("range"), ally_filter()),
            Cond::cmp(CmpOp::Eq, Term::row("unittype"), Term::name("_KNIGHT")),
        ),
        centroid_outputs(),
    ));
    reg.register_aggregate(simple(
        "AllySpreadInRange",
        Cond::and(rect("range"), ally_filter()),
        vec![
            AggOutput {
                name: "x".into(),
                func: SimpleAgg::StdDev,
                value: Term::row("posx"),
                default: Value::Float(0.0),
            },
            AggOutput {
                name: "y".into(),
                func: SimpleAgg::StdDev,
                value: Term::row("posy"),
                default: Value::Float(0.0),
            },
        ],
    ));
    reg.register_aggregate(simple(
        "EnemyStrengthInRange",
        Cond::and(rect("range"), enemy_filter()),
        vec![AggOutput {
            name: "value".into(),
            func: SimpleAgg::Sum,
            value: Term::row("strength"),
            default: Value::Float(0.0),
        }],
    ));
    reg.register_aggregate(simple(
        "MissingAllyHealthInRange",
        Cond::and(rect("range"), ally_filter()),
        vec![AggOutput {
            name: "value".into(),
            func: SimpleAgg::Sum,
            value: Term::bin(
                sgl_core::lang::BinOp::Sub,
                Term::row("max_health"),
                Term::row("health"),
            ),
            default: Value::Float(0.0),
        }],
    ));

    // --- MIN aggregate (sweep-line) ----------------------------------------
    reg.register_aggregate(simple(
        "WeakestEnemyHealth",
        Cond::and(rect("range"), enemy_filter()),
        vec![AggOutput {
            name: "value".into(),
            func: SimpleAgg::Min,
            value: Term::row("health"),
            default: Value::Float(1.0e9),
        }],
    ));

    // --- nearest neighbour (kD-tree) ----------------------------------------
    reg.register_aggregate(AggregateDef {
        name: "getNearestEnemy".into(),
        params: vec!["u".into()],
        filter: enemy_filter(),
        spec: AggSpec::ArgBest {
            minimize: true,
            rank: squared_distance(),
            outputs: vec![
                ("key".into(), Term::row("key"), Value::Int(-1)),
                ("posx".into(), Term::row("posx"), Value::Float(0.0)),
                ("posy".into(), Term::row("posy"), Value::Float(0.0)),
            ],
        },
    });

    // --- actions -------------------------------------------------------------
    let self_clause = |effects: Vec<(String, Term)>| EffectClause {
        filter: Cond::cmp(CmpOp::Eq, Term::row("key"), Term::unit("key")),
        effects,
    };
    let target_clause = |effects: Vec<(String, Term)>| EffectClause {
        filter: Cond::cmp(CmpOp::Eq, Term::row("key"), Term::name("target_key")),
        effects,
    };

    reg.register_action(ActionDef {
        name: "MoveInDirection".into(),
        params: vec!["u".into(), "x".into(), "y".into()],
        clauses: vec![self_clause(vec![
            (
                "movevect_x".into(),
                Term::bin(
                    sgl_core::lang::BinOp::Sub,
                    Term::name("x"),
                    Term::row("posx"),
                ),
            ),
            (
                "movevect_y".into(),
                Term::bin(
                    sgl_core::lang::BinOp::Sub,
                    Term::name("y"),
                    Term::row("posy"),
                ),
            ),
        ])],
    });
    reg.register_action(ActionDef {
        name: "FireAt".into(),
        params: vec!["u".into(), "target_key".into()],
        clauses: vec![
            target_clause(vec![("damage".into(), damage_effect("_ARROW_DMG"))]),
            self_clause(vec![("weaponused".into(), Term::int(1))]),
        ],
    });
    reg.register_action(ActionDef {
        name: "Strike".into(),
        params: vec!["u".into(), "target_key".into()],
        clauses: vec![
            target_clause(vec![("damage".into(), damage_effect("_SWORD_DMG"))]),
            self_clause(vec![("weaponused".into(), Term::int(1))]),
        ],
    });
    reg.register_action(ActionDef {
        name: "Heal".into(),
        params: vec!["u".into()],
        clauses: vec![
            EffectClause {
                filter: Cond::and(
                    ally_filter(),
                    rect_range_filter(Term::name("_HEALER_RANGE")),
                ),
                effects: vec![("inaura".into(), Term::name("_HEAL_AURA"))],
            },
            self_clause(vec![("weaponused".into(), Term::int(1))]),
        ],
    });

    reg
}

/// SGL source of the knight script: charge the enemy centroid, close ranks
/// when the formation spreads out, strike the nearest enemy in reach.
pub const KNIGHT_SCRIPT: &str = r#"
main(u) {
  (let in_reach = CountEnemiesInRange(u, u.range))
  (let visible = CountEnemiesInRange(u, u.sight))
  (let strength = EnemyStrengthInRange(u, u.sight))
  (let spread = AllySpreadInRange(u, u.sight))
  (let ec = CentroidOfEnemies(u, u.sight))
  (let ac = CentroidOfAllies(u, u.sight)) {
    if in_reach > 0 and u.cooldown = 0 then
      perform Strike(u, getNearestEnemy(u).key);
    else if visible = 0 and spread.x + spread.y > 14 then
      perform MoveInDirection(u, ac.x, ac.y);
    else if visible > 0 then
      perform MoveInDirection(u, ec.x, ec.y);
    else
      perform MoveInDirection(u, u.posx + (u.posx - ac.x), u.posy + (u.posy - ac.y));
  }
}
"#;

/// SGL source of the archer script: flee when enemies close in, otherwise
/// shoot the nearest enemy, otherwise keep the knights between themselves and
/// the enemy centroid (the formation behaviour described in §3.2).
pub const ARCHER_SCRIPT: &str = r#"
main(u) {
  (let close = CountEnemiesInRange(u, 6))
  (let in_range = CountEnemiesInRange(u, u.range))
  (let weakest = WeakestEnemyHealth(u, u.range))
  (let ec = CentroidOfEnemies(u, u.sight))
  (let kc = CentroidOfAllyKnights(u, u.sight)) {
    if close > u.morale then
      perform MoveInDirection(u, u.posx + (u.posx - ec.x), u.posy + (u.posy - ec.y));
    else if in_range > 0 and u.cooldown = 0 and weakest < 1000000 then
      perform FireAt(u, getNearestEnemy(u).key);
    else
      perform MoveInDirection(u, kc.x + (kc.x - ec.x), kc.y + (kc.y - ec.y));
  }
}
"#;

/// SGL source of the healer script: stay away from enemies, cast the healing
/// aura when allies nearby are wounded, otherwise follow the army centroid.
pub const HEALER_SCRIPT: &str = r#"
main(u) {
  (let close = CountEnemiesInRange(u, 8))
  (let wounded = MissingAllyHealthInRange(u, u.range))
  (let allies = CountAlliesInRange(u, u.sight))
  (let ac = CentroidOfAllies(u, u.sight))
  (let ec = CentroidOfEnemies(u, u.sight)) {
    if close > u.morale then
      perform MoveInDirection(u, u.posx + (u.posx - ec.x), u.posy + (u.posy - ec.y));
    else if wounded > 0 and u.cooldown = 0 then
      perform Heal(u);
    else if allies > 0 then
      perform MoveInDirection(u, ac.x, ac.y);
    else
      perform MoveInDirection(u, u.posx, u.posy + 1);
  }
}
"#;

/// The skeleton-fear script used by the introduction's motivating example and
/// the `skeleton_fear` example binary: units flee when too many enemies are
/// visible, otherwise they fight back.
pub const SKELETON_FEAR_SCRIPT: &str = r#"
main(u) {
  (let c = CountEnemiesInRange(u, u.sight))
  (let away = (u.posx, u.posy) - CentroidOfEnemies(u, u.sight)) {
    if c > u.morale then
      perform MoveInDirection(u, u.posx + away.x, u.posy + away.y);
    else if c > 0 and u.cooldown = 0 then
      perform FireAt(u, getNearestEnemy(u).key);
  }
}
"#;

/// Build the game mechanics (post-processing, movement, resurrection) for the
/// battle on a square world of the given side length.
pub fn battle_mechanics(schema: &Arc<Schema>, world_side: f64, resurrect: bool) -> Mechanics {
    let health = schema.attr_id("health").expect("battle schema");
    let max_health = schema.attr_id("max_health").expect("battle schema");
    let damage = schema.attr_id("damage").expect("battle schema");
    let aura = schema.attr_id("inaura").expect("battle schema");
    let cooldown = schema.attr_id("cooldown").expect("battle schema");
    let weapon = schema.attr_id("weaponused").expect("battle schema");
    let x = schema.attr_id("posx").expect("battle schema");
    let y = schema.attr_id("posy").expect("battle schema");
    let dx = schema.attr_id("movevect_x").expect("battle schema");
    let dy = schema.attr_id("movevect_y").expect("battle schema");

    let health_expr = UpdateExpr::min(
        UpdateExpr::add(
            UpdateExpr::sub(UpdateExpr::State(health), UpdateExpr::Effect(damage)),
            UpdateExpr::Effect(aura),
        ),
        UpdateExpr::State(max_health),
    );
    let cooldown_expr = UpdateExpr::max(
        UpdateExpr::add(
            UpdateExpr::sub(
                UpdateExpr::State(cooldown),
                UpdateExpr::Const(Value::Int(1)),
            ),
            UpdateExpr::mul(UpdateExpr::Effect(weapon), UpdateExpr::Const(Value::Int(2))),
        ),
        UpdateExpr::Const(Value::Int(0)),
    );
    let mut post = PostProcessor::new(Arc::clone(schema))
        .assign(health, health_expr)
        .assign(cooldown, cooldown_expr);
    if !resurrect {
        post = post.remove_when_le(health, 0i64);
    }
    Mechanics {
        post,
        movement: Some(MovementConfig {
            x,
            y,
            dx,
            dy,
            step: 1.0,
            collision_radius: 0.7,
            world: (0.0, 0.0, world_side, world_side),
        }),
        resurrect: if resurrect {
            Some(ResurrectConfig {
                health,
                max_health,
                world: (0.0, 0.0, world_side, world_side),
                x,
                y,
            })
        } else {
            None
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_core::lang::typecheck::{check_registry, check_script};
    use sgl_core::lang::{normalize, parse_script};

    #[test]
    fn unit_kind_codes_round_trip() {
        for kind in UnitKind::ALL {
            assert_eq!(UnitKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(UnitKind::from_code(9), None);
        assert!(UnitKind::Knight.stats().max_health > UnitKind::Archer.stats().max_health);
        assert!(UnitKind::Archer.stats().range > UnitKind::Knight.stats().range);
    }

    #[test]
    fn battle_schema_has_all_script_attributes() {
        let schema = battle_schema();
        for attr in [
            "key",
            "player",
            "unittype",
            "posx",
            "posy",
            "health",
            "max_health",
            "cooldown",
            "range",
            "sight",
            "morale",
            "armor",
            "strength",
            "weaponused",
            "movevect_x",
            "movevect_y",
            "damage",
            "inaura",
        ] {
            assert!(schema.attr_id(attr).is_some(), "missing attribute {attr}");
        }
    }

    #[test]
    fn registry_validates_and_has_ten_aggregates() {
        let schema = battle_schema();
        let registry = battle_registry();
        check_registry(&registry, &schema).unwrap();
        assert_eq!(registry.aggregate_names().len(), 10);
        assert_eq!(registry.action_names().len(), 4);
    }

    #[test]
    fn all_unit_scripts_compile_against_the_battle_schema() {
        let schema = battle_schema();
        let registry = battle_registry();
        for (name, src) in [
            ("knight", KNIGHT_SCRIPT),
            ("archer", ARCHER_SCRIPT),
            ("healer", HEALER_SCRIPT),
            ("skeleton", SKELETON_FEAR_SCRIPT),
        ] {
            let script = parse_script(src).unwrap_or_else(|e| panic!("{name}: {e}"));
            let normal = normalize(&script, &registry).unwrap_or_else(|e| panic!("{name}: {e}"));
            let report =
                check_script(&normal, &schema, &registry).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(
                report.aggregate_calls >= 3,
                "{name} should use several aggregates"
            );
            assert!(report.performs >= 1);
        }
    }

    #[test]
    fn every_index_strategy_is_exercised_by_the_battle_registry() {
        use sgl_core::exec::{plan_aggregate, AggStrategy, SpatialAttrs};
        let schema = battle_schema();
        let registry = battle_registry();
        let spatial = SpatialAttrs::from_schema(&schema);
        let mut divisible = 0;
        let mut sweeps = 0;
        let mut kd = 0;
        for name in registry.aggregate_names() {
            let planned = plan_aggregate(registry.aggregate(name).unwrap(), &schema, spatial);
            match planned.strategy {
                AggStrategy::DivisibleTree { .. } => divisible += 1,
                AggStrategy::SweepMinMax => sweeps += 1,
                AggStrategy::KdNearest => kd += 1,
                AggStrategy::Scan => panic!("battle aggregate `{name}` fell back to scanning"),
            }
        }
        assert_eq!(divisible, 8);
        assert_eq!(sweeps, 1);
        assert_eq!(kd, 1);
    }

    #[test]
    fn mechanics_cap_health_at_max() {
        let schema = battle_schema().into_shared();
        let mechanics = battle_mechanics(&schema, 100.0, true);
        assert!(mechanics.resurrect.is_some());
        assert!(mechanics.movement.is_some());
        let no_res = battle_mechanics(&schema, 100.0, false);
        assert!(no_res.resurrect.is_none());
    }
}
