//! Initial army formations for scenario generation.
//!
//! Section 3.2 motivates the scripting language with formation behaviour —
//! "archers stay behind armored troops in order to protect them", knights
//! "close ranks to keep the enemies from going through".  Whether that
//! behaviour is visible in a run depends a lot on how the armies start, so
//! the scenario generator supports several classical RTS deployment shapes in
//! addition to the paper's uniform scatter:
//!
//! * [`Formation::Scattered`] — uniform random placement inside the player's
//!   deployment zone (the §6 setup; the default);
//! * [`Formation::Line`] — ranks parallel to the front, knights first,
//!   archers behind, healers in the rear (the §3.2 example made literal);
//! * [`Formation::Wedge`] — a triangular spearhead pointing at the enemy;
//! * [`Formation::Box`] — a dense square block (the worst case for the
//!   clustered-query behaviour discussed in §5.3.1, and therefore the most
//!   interesting one for index benchmarks).
//!
//! Placement is a pure function of `(formation, player, slot index, army
//! size, world size)` plus the scenario RNG for jitter, so scenarios stay
//! reproducible.

use rand::rngs::SmallRng;
use rand::Rng;

use crate::UnitKind;

/// Deployment shape of one player's army.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Formation {
    /// Uniform random placement in the deployment zone (paper §6 default).
    #[default]
    Scattered,
    /// Ranked line: knights at the front, archers behind, healers in the rear.
    Line,
    /// Triangular wedge pointing at the enemy.
    Wedge,
    /// Dense square block.
    Box,
}

impl Formation {
    /// All formations, for sweeps and ablation benchmarks.
    pub const ALL: [Formation; 4] = [
        Formation::Scattered,
        Formation::Line,
        Formation::Wedge,
        Formation::Box,
    ];

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Formation::Scattered => "scattered",
            Formation::Line => "line",
            Formation::Wedge => "wedge",
            Formation::Box => "box",
        }
    }
}

/// The deployment zone of a player: player 0 owns the left 40 % of the map,
/// player 1 the right 40 % (the armies start separated and advance, as in the
/// §6 experiments).
pub fn deployment_zone(player: i64, world: f64) -> (f64, f64) {
    if player == 0 {
        (0.0, world * 0.4)
    } else {
        (world * 0.6, world)
    }
}

/// Compute the position of the `slot`-th unit (of `army_size`) of `player` in
/// the given formation.  `kind` influences ranked formations (knights front,
/// healers rear).  `rng` supplies deterministic jitter.
pub fn place(
    formation: Formation,
    player: i64,
    slot: usize,
    army_size: usize,
    kind: UnitKind,
    world: f64,
    rng: &mut SmallRng,
) -> (f64, f64) {
    let (x_lo, x_hi) = deployment_zone(player, world);
    let zone_width = x_hi - x_lo;
    // The "front" is the zone edge facing the enemy.
    let front = if player == 0 { x_hi } else { x_lo };
    let toward_rear = if player == 0 { -1.0 } else { 1.0 };
    let n = army_size.max(1);

    match formation {
        Formation::Scattered => (
            rng.gen_range(x_lo..x_hi.max(x_lo + 1e-6)),
            rng.gen_range(0.0..world.max(1e-6)),
        ),
        Formation::Line => {
            // Rank by unit kind (knights 0, archers 1, healers 2), several
            // files per rank; ranks are spaced so the whole army fits in the
            // front half of the deployment zone.
            let rank = kind.code() as f64;
            let per_rank = (n as f64 / 3.0).ceil().max(1.0);
            let file = (slot % per_rank as usize) as f64;
            let rank_depth = (zone_width * 0.5 / 3.0).max(1.5);
            let spacing = (world * 0.8 / per_rank).max(1.2);
            let x = front + toward_rear * (rank + 0.5) * rank_depth + rng.gen_range(-0.3..0.3);
            let y = world * 0.1 + file * spacing + rng.gen_range(-0.3..0.3);
            (x.clamp(0.0, world), y.clamp(0.0, world))
        }
        Formation::Wedge => {
            // Row r holds r + 1 units; the apex points at the enemy.
            let mut row = 0usize;
            let mut first_in_row = 0usize;
            while first_in_row + row < slot {
                first_in_row += row + 1;
                row += 1;
            }
            let index_in_row = slot - first_in_row;
            let spacing = 1.6;
            let x = front + toward_rear * (row as f64 + 0.5) * spacing;
            let y = world / 2.0
                + (index_in_row as f64 - row as f64 / 2.0) * spacing
                + rng.gen_range(-0.2..0.2);
            (x.clamp(0.0, world), y.clamp(0.0, world))
        }
        Formation::Box => {
            // A dense side × side block centred in the deployment zone.
            let side = (n as f64).sqrt().ceil().max(1.0);
            let spacing = 1.4;
            let col = (slot as f64) % side;
            let row = (slot as f64 / side).floor();
            let cx = x_lo + zone_width / 2.0;
            let cy = world / 2.0;
            let x = cx + (col - side / 2.0) * spacing * toward_rear + rng.gen_range(-0.2..0.2);
            let y = cy + (row - side / 2.0) * spacing + rng.gen_range(-0.2..0.2);
            (x.clamp(0.0, world), y.clamp(0.0, world))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn positions(formation: Formation, player: i64, n: usize, world: f64) -> Vec<(f64, f64)> {
        let mut rng = SmallRng::seed_from_u64(7);
        (0..n)
            .map(|slot| {
                let kind = UnitKind::ALL[slot % 3];
                place(formation, player, slot, n, kind, world, &mut rng)
            })
            .collect()
    }

    #[test]
    fn all_formations_stay_inside_the_world() {
        for formation in Formation::ALL {
            for player in [0i64, 1] {
                for (x, y) in positions(formation, player, 200, 120.0) {
                    assert!((0.0..=120.0).contains(&x), "{formation:?} x = {x}");
                    assert!((0.0..=120.0).contains(&y), "{formation:?} y = {y}");
                }
            }
        }
    }

    #[test]
    fn scattered_positions_stay_in_the_deployment_zone() {
        for player in [0i64, 1] {
            let (lo, hi) = deployment_zone(player, 100.0);
            for (x, _) in positions(Formation::Scattered, player, 300, 100.0) {
                assert!(x >= lo && x <= hi);
            }
        }
    }

    #[test]
    fn deployment_zones_do_not_overlap() {
        let (l0, h0) = deployment_zone(0, 100.0);
        let (l1, h1) = deployment_zone(1, 100.0);
        assert!(h0 <= l1);
        assert!(l0 < h0 && l1 < h1);
    }

    #[test]
    fn line_formation_puts_knights_closer_to_the_front_than_healers() {
        let mut rng = SmallRng::seed_from_u64(3);
        let world = 100.0;
        // Player 0: front is at x = 40; larger x = closer to the enemy.
        let (knight_x, _) = place(Formation::Line, 0, 0, 90, UnitKind::Knight, world, &mut rng);
        let (healer_x, _) = place(Formation::Line, 0, 0, 90, UnitKind::Healer, world, &mut rng);
        assert!(
            knight_x > healer_x,
            "knights ({knight_x}) should screen healers ({healer_x})"
        );
        // Player 1: mirrored.
        let (knight_x, _) = place(Formation::Line, 1, 0, 90, UnitKind::Knight, world, &mut rng);
        let (healer_x, _) = place(Formation::Line, 1, 0, 90, UnitKind::Healer, world, &mut rng);
        assert!(knight_x < healer_x);
    }

    #[test]
    fn box_formation_is_denser_than_scattered() {
        let spread = |points: &[(f64, f64)]| {
            let n = points.len() as f64;
            let mx = points.iter().map(|(x, _)| x).sum::<f64>() / n;
            let my = points.iter().map(|(_, y)| y).sum::<f64>() / n;
            points
                .iter()
                .map(|(x, y)| ((x - mx).powi(2) + (y - my).powi(2)).sqrt())
                .sum::<f64>()
                / n
        };
        let scattered = spread(&positions(Formation::Scattered, 0, 150, 200.0));
        let boxed = spread(&positions(Formation::Box, 0, 150, 200.0));
        assert!(
            boxed < scattered / 2.0,
            "box spread {boxed} vs scattered {scattered}"
        );
    }

    #[test]
    fn wedge_rows_grow_toward_the_rear() {
        let mut rng = SmallRng::seed_from_u64(11);
        let world = 100.0;
        // Slot 0 is the apex (row 0); slot 10 is in a later row, further from
        // the front for player 0 (smaller x).
        let (apex_x, _) = place(
            Formation::Wedge,
            0,
            0,
            60,
            UnitKind::Knight,
            world,
            &mut rng,
        );
        let (rear_x, _) = place(
            Formation::Wedge,
            0,
            10,
            60,
            UnitKind::Knight,
            world,
            &mut rng,
        );
        assert!(apex_x > rear_x);
    }

    #[test]
    fn names_and_default() {
        assert_eq!(Formation::default(), Formation::Scattered);
        let names: Vec<&str> = Formation::ALL.iter().map(|f| f.name()).collect();
        assert_eq!(names, vec!["scattered", "line", "wedge", "box"]);
    }
}
