//! Hand-authored battle scenarios for the conformance corpus.
//!
//! The generated scenarios of [`crate::scenario`] sweep the parameter space;
//! the presets here are *authored* situations chosen to stress specific
//! engine behaviour the random sweeps rarely produce:
//!
//! * [`siege`] — attackers must funnel through a chokepoint in a wall of
//!   stationary defenders, stressing the movement phase's collision
//!   avoidance ("pathfinding" in the §6 engine's sense) and targeted melee;
//! * [`mixed_formations`] — opposing archer/healer lines with a thin knight
//!   screen, stressing the healing aura (area-of-effect actions, §5.4) and
//!   long-range kiting;
//! * [`fleeing_swarm`] — a low-morale swarm facing an advancing wedge; fear
//!   cascades through the swarm as fleeing units crowd into each other's
//!   sight ranges (the motivating example of §3 at its most sensitive, since
//!   every count threshold crossed changes the branch every unit takes);
//! * [`attrition_stalemate`] — armored knights plus dedicated healers on
//!   both sides with resurrection off: damage and healing almost cancel, so
//!   the battle grinds through many near-identical ticks — the worst case
//!   for any incremental index maintenance that drifts.
//!
//! Every preset builds through [`sgl_core::GameBuilder`], so each can run
//! under any [`ExecConfig`] — including the conformance oracle — and all of
//! them are pinned by the golden-digest suite (`tests/golden_digests.rs`).

use std::sync::Arc;

use sgl_core::engine::{Simulation, UnitSelector};
use sgl_core::env::{EnvTable, Schema, TupleBuilder, Value};
use sgl_core::exec::{ExecConfig, ExecMode};
use sgl_core::GameBuilder;

use crate::{
    battle_mechanics, battle_registry, battle_schema, UnitKind, ARCHER_SCRIPT, HEALER_SCRIPT,
    KNIGHT_SCRIPT, SKELETON_FEAR_SCRIPT,
};

/// Sentinel `morale` value marking hold-position wall units (no battle stat
/// block uses it), so a selector can address them separately from ordinary
/// knights.
const WALL_MORALE: i64 = 99;

/// SGL source of the wall script: strike whatever steps into reach, never
/// leave the post.
pub const HOLD_SCRIPT: &str = r#"
main(u) {
  (let in_reach = CountEnemiesInRange(u, u.range))
  if in_reach > 0 and u.cooldown = 0 then
    perform Strike(u, getNearestEnemy(u).key);
  else
    perform MoveInDirection(u, u.posx, u.posy);
}
"#;

/// A hand-authored scenario: initial environment plus the script roster.
#[derive(Debug, Clone)]
pub struct PresetScenario {
    /// Stable name (used by the golden-digest corpus).
    pub name: &'static str,
    /// Shared battle schema.
    pub schema: Arc<Schema>,
    /// Initial environment.
    pub table: EnvTable,
    /// World side length.
    pub world_side: f64,
    /// Game seed.
    pub seed: u64,
    /// Whether dead units respawn (§6 rule) or are removed.
    pub resurrect: bool,
    /// `(script name, SGL source, selector)` in registration order.
    scripts: Vec<(&'static str, &'static str, UnitSelector)>,
}

impl PresetScenario {
    /// All presets, in a fixed order (for sweeps and the golden corpus).
    pub fn all() -> Vec<PresetScenario> {
        vec![
            siege(),
            mixed_formations(),
            fleeing_swarm(),
            attrition_stalemate(),
        ]
    }

    /// Build a ready-to-run simulation in the given execution mode.
    pub fn build_simulation(&self, mode: ExecMode) -> Simulation {
        self.build_with_config(ExecConfig::for_mode(mode, &self.schema))
    }

    /// Build a simulation under an explicit executor configuration (the
    /// conformance and golden-digest suites sweep the full lattice).
    pub fn build_with_config(&self, config: ExecConfig) -> Simulation {
        let registry = battle_registry();
        let mechanics = battle_mechanics(&self.schema, self.world_side, self.resurrect);
        let mut builder = GameBuilder::new(Arc::clone(&self.schema), registry, mechanics)
            .exec_config(config)
            .seed(self.seed);
        for (name, source, selector) in &self.scripts {
            builder = builder.script(name, source, selector.clone());
        }
        builder
            .build(self.table.clone())
            .expect("preset scripts compile")
    }
}

/// Helper collecting units for a preset environment.
struct Roster {
    schema: Arc<Schema>,
    table: EnvTable,
    world: f64,
    key: i64,
}

impl Roster {
    fn new(world: f64) -> Roster {
        let schema = battle_schema().into_shared();
        let table = EnvTable::new(Arc::clone(&schema));
        Roster {
            schema,
            table,
            world,
            key: 0,
        }
    }

    /// Spawn one unit with its stat block; `morale` overrides the stat value
    /// when given (wall sentinels, cowardly swarms).
    fn spawn(&mut self, player: i64, kind: UnitKind, x: f64, y: f64, morale: Option<i64>) {
        let stats = kind.stats();
        let tuple = TupleBuilder::new(&self.schema)
            .set("key", self.key)
            .expect("key")
            .set("player", player)
            .expect("player")
            .set("unittype", kind.code())
            .expect("unittype")
            .set("posx", x.clamp(0.0, self.world))
            .expect("posx")
            .set("posy", y.clamp(0.0, self.world))
            .expect("posy")
            .set("health", stats.max_health)
            .expect("health")
            .set("max_health", stats.max_health)
            .expect("max_health")
            .set("range", stats.range)
            .expect("range")
            .set("sight", stats.sight)
            .expect("sight")
            .set("morale", morale.unwrap_or(stats.morale))
            .expect("morale")
            .set("armor", stats.armor)
            .expect("armor")
            .set("strength", stats.strength)
            .expect("strength")
            .build();
        self.table.insert(tuple).expect("preset keys are unique");
        self.key += 1;
    }

    fn selector(&self, attr: &str, value: i64) -> UnitSelector {
        UnitSelector::AttrEquals(
            self.schema.attr_id(attr).expect("battle schema"),
            Value::Int(value),
        )
    }
}

/// Deterministic placement jitter — an inline LCG like the ones the test
/// modules use, *not* a `rand` engine: the golden-digest corpus pins these
/// layouts, so they must never shift with a vendored-`rand` stream change.
struct Jitter(u64);

impl Jitter {
    fn new(seed: u64) -> Jitter {
        Jitter(seed)
    }

    /// Uniform value in `[lo, hi)`.
    fn in_range(&mut self, lo: f64, hi: f64) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let unit = ((self.0 >> 11) as f64) / ((1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

/// Siege with chokepoint: a wall of hold-position knights with a single gap
/// shields an archer garrison; the attacking knights must path through the
/// gap under fire.
pub fn siege() -> PresetScenario {
    let world = 56.0;
    let mut r = Roster::new(world);
    let mut rng = Jitter::new(0x51E6E);
    // The wall: player 0 knights every ~4.5 units along x = 28, except a gap
    // around the middle (y in [24, 32]) — the chokepoint.
    let mut y = 2.0;
    while y < world {
        if !(24.0..=32.0).contains(&y) {
            r.spawn(0, UnitKind::Knight, 28.0, y, Some(WALL_MORALE));
        }
        y += 4.5;
    }
    // The garrison: archers behind the wall, loosely clustered opposite the
    // gap so attackers emerging from the chokepoint walk into their range.
    for i in 0..10 {
        let gy = 16.0 + (i as f64) * 2.6 + rng.in_range(-0.4, 0.4);
        let gx = 14.0 + rng.in_range(-3.0, 3.0);
        r.spawn(0, UnitKind::Archer, gx, gy, None);
    }
    // The besiegers: a column of knights east of the wall.
    for i in 0..14 {
        let bx = 42.0 + ((i % 2) as f64) * 3.0 + rng.in_range(-0.5, 0.5);
        let by = 14.0 + (i as f64) * 2.0 + rng.in_range(-0.5, 0.5);
        r.spawn(1, UnitKind::Knight, bx, by, None);
    }
    let scripts = vec![
        ("wall", HOLD_SCRIPT, r.selector("morale", WALL_MORALE)),
        (
            "garrison",
            ARCHER_SCRIPT,
            r.selector("unittype", UnitKind::Archer.code()),
        ),
        (
            "besieger",
            KNIGHT_SCRIPT,
            r.selector("unittype", UnitKind::Knight.code()),
        ),
    ];
    PresetScenario {
        name: "siege",
        schema: r.schema,
        table: r.table,
        world_side: world,
        seed: 0x51E6E,
        resurrect: true,
        scripts,
    }
}

/// Healer/archer mixed formations: two mirrored lines — archers in front,
/// healers behind, a thin knight screen at the flanks — trading volleys
/// while the auras keep the front ranks standing.
pub fn mixed_formations() -> PresetScenario {
    let world = 64.0;
    let mut r = Roster::new(world);
    let mut rng = Jitter::new(0xF0F0);
    for player in 0..2i64 {
        // Mirror the deployment across the map's vertical centre line.
        let dir = if player == 0 { 1.0 } else { -1.0 };
        let front = if player == 0 { 24.0 } else { 40.0 };
        for i in 0..8 {
            let y = 12.0 + (i as f64) * 5.2 + rng.in_range(-0.3, 0.3);
            r.spawn(player, UnitKind::Archer, front, y, None);
            if i % 2 == 0 {
                r.spawn(player, UnitKind::Healer, front - dir * 6.0, y + 2.0, None);
            }
        }
        // Knight screen on the flanks.
        for y in [6.0, 58.0] {
            r.spawn(player, UnitKind::Knight, front + dir * 2.0, y, None);
        }
    }
    let scripts = vec![
        (
            "archer",
            ARCHER_SCRIPT,
            r.selector("unittype", UnitKind::Archer.code()),
        ),
        (
            "healer",
            HEALER_SCRIPT,
            r.selector("unittype", UnitKind::Healer.code()),
        ),
        (
            "knight",
            KNIGHT_SCRIPT,
            r.selector("unittype", UnitKind::Knight.code()),
        ),
    ];
    PresetScenario {
        name: "mixed-formations",
        schema: r.schema,
        table: r.table,
        world_side: world,
        seed: 0xF0F0,
        resurrect: true,
        scripts,
    }
}

/// Fleeing-swarm morale cascade: a dense swarm of morale-1 archers runs the
/// fear script against a knight wedge; each unit that breaks and runs crowds
/// into its neighbours' sight radius and tips *their* counts over the
/// threshold.
pub fn fleeing_swarm() -> PresetScenario {
    let world = 72.0;
    let mut r = Roster::new(world);
    let mut rng = Jitter::new(0x5CA2E);
    // The swarm: a dense disc of cowardly archers left of centre.
    for i in 0..30 {
        let angle = (i as f64) * 0.61803 * std::f64::consts::TAU;
        let radius = 1.5 * ((i + 1) as f64).sqrt();
        let x = 24.0 + radius * angle.cos() + rng.in_range(-0.3, 0.3);
        let y = 36.0 + radius * angle.sin() + rng.in_range(-0.3, 0.3);
        r.spawn(0, UnitKind::Archer, x, y, Some(1));
    }
    // The wedge: rows of knights advancing from the east edge.
    let mut slot = 0usize;
    for row in 0..4usize {
        for j in 0..=row {
            let x = 56.0 + (row as f64) * 2.2;
            let y = 36.0 + ((j as f64) - (row as f64) / 2.0) * 2.4;
            r.spawn(1, UnitKind::Knight, x, y, None);
            slot += 1;
        }
    }
    debug_assert_eq!(slot, 10);
    let scripts = vec![
        ("swarm", SKELETON_FEAR_SCRIPT, r.selector("player", 0)),
        ("wedge", KNIGHT_SCRIPT, r.selector("player", 1)),
    ];
    PresetScenario {
        name: "fleeing-swarm",
        schema: r.schema,
        table: r.table,
        world_side: world,
        seed: 0x5CA2E,
        resurrect: true,
        scripts,
    }
}

/// Attrition stalemate: armored knights backed by dedicated healers on both
/// sides, resurrection off.  Sword damage against plate barely outpaces the
/// healing aura, so the armies grind against each other for many ticks with
/// near-repeating state.
pub fn attrition_stalemate() -> PresetScenario {
    let world = 40.0;
    let mut r = Roster::new(world);
    let mut rng = Jitter::new(0xA77);
    for player in 0..2i64 {
        let dir = if player == 0 { 1.0 } else { -1.0 };
        let front = if player == 0 { 16.0 } else { 24.0 };
        // Two ranks of knights pressed against the centre line.
        for i in 0..8 {
            let x = front - dir * ((i % 2) as f64) * 2.0;
            let y = 12.0 + ((i / 2) as f64) * 4.4 + rng.in_range(-0.2, 0.2);
            r.spawn(player, UnitKind::Knight, x, y, None);
        }
        // A healer behind every pair of knights.
        for i in 0..4 {
            let x = front - dir * 6.0;
            let y = 13.0 + (i as f64) * 4.4 + rng.in_range(-0.2, 0.2);
            r.spawn(player, UnitKind::Healer, x, y, None);
        }
    }
    let scripts = vec![
        (
            "knight",
            KNIGHT_SCRIPT,
            r.selector("unittype", UnitKind::Knight.code()),
        ),
        (
            "healer",
            HEALER_SCRIPT,
            r.selector("unittype", UnitKind::Healer.code()),
        ),
    ];
    PresetScenario {
        name: "attrition-stalemate",
        schema: r.schema,
        table: r.table,
        world_side: world,
        seed: 0xA77,
        resurrect: false,
        scripts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_preset_builds_and_runs_in_every_mode() {
        for preset in PresetScenario::all() {
            assert!(preset.table.len() > 20, "{} is too small", preset.name);
            for mode in [ExecMode::Naive, ExecMode::Indexed, ExecMode::Oracle] {
                let mut sim = preset.build_simulation(mode);
                let summary = sim.run(2).unwrap();
                assert_eq!(summary.ticks, 2, "{} under {mode:?}", preset.name);
                assert!(
                    summary.exec.aggregate_probes > 0,
                    "{} under {mode:?} evaluated no aggregates",
                    preset.name
                );
            }
        }
    }

    #[test]
    fn preset_names_are_unique_and_stable() {
        let names: Vec<&str> = PresetScenario::all().iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            vec![
                "siege",
                "mixed-formations",
                "fleeing-swarm",
                "attrition-stalemate"
            ]
        );
    }

    #[test]
    fn siege_wall_holds_its_posts() {
        let preset = siege();
        let posx = preset.schema.attr_id("posx").unwrap();
        let morale = preset.schema.attr_id("morale").unwrap();
        let wall_xs = |sim: &Simulation| -> Vec<f64> {
            sim.table()
                .iter()
                .filter(|(_, row)| row.get_i64(morale).unwrap() == WALL_MORALE)
                .map(|(_, row)| row.get_f64(posx).unwrap())
                .collect()
        };
        let mut sim = preset.build_simulation(ExecMode::Indexed);
        let before = wall_xs(&sim);
        assert!(!before.is_empty());
        sim.run(6).unwrap();
        let after = wall_xs(&sim);
        for (b, a) in before.iter().zip(&after) {
            assert!((b - a).abs() < 1e-9, "wall unit moved from x={b} to x={a}");
        }
    }

    #[test]
    fn fleeing_swarm_actually_flees() {
        let preset = fleeing_swarm();
        let player = preset.schema.attr_id("player").unwrap();
        let posx = preset.schema.attr_id("posx").unwrap();
        let swarm_mean_x = |sim: &Simulation| -> f64 {
            let xs: Vec<f64> = sim
                .table()
                .iter()
                .filter(|(_, row)| row.get_i64(player).unwrap() == 0)
                .map(|(_, row)| row.get_f64(posx).unwrap())
                .collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        let mut sim = preset.build_simulation(ExecMode::Indexed);
        let before = swarm_mean_x(&sim);
        sim.run(10).unwrap();
        let after = swarm_mean_x(&sim);
        assert!(
            after < before + 1.0,
            "the swarm should flee west, away from the wedge ({before:.1} → {after:.1})"
        );
    }

    #[test]
    fn attrition_stalemate_stays_populated() {
        let preset = attrition_stalemate();
        let start = preset.table.len();
        let mut sim = preset.build_simulation(ExecMode::Indexed);
        let summary = sim.run(12).unwrap();
        // Attrition, not a rout: most units survive 12 ticks even with
        // resurrection off.
        assert!(
            summary.final_population * 10 >= start * 7,
            "{} of {start} units left after 12 ticks",
            summary.final_population
        );
    }
}
