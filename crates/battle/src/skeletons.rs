//! The skeleton-horde scenario of the paper's motivating example.
//!
//! Section 3 introduces the scalability problem with a concrete story: "the
//! game designer wants a certain type of unit to run in fear from a large
//! number of marching skeletons" — and observes that with per-unit scripts
//! the count aggregate alone costs `O(n)` per unit, `O(n²)` per tick.  This
//! module packages that exact workload as a reusable scenario so examples,
//! tests and benchmarks can measure it directly:
//!
//! * player 0 — a garrison of **defenders** (archers) running the
//!   [`crate::SKELETON_FEAR_SCRIPT`]: count the visible horde, flee when it
//!   exceeds their morale, otherwise shoot the nearest skeleton;
//! * player 1 — a **skeleton horde** (re-using the knight statistics) running
//!   [`MARCH_SCRIPT`]: advance on the enemy centroid and strike whatever is
//!   in reach.
//!
//! Because every defender evaluates a count and a centroid over the whole
//! horde, the naive executor exhibits the quadratic behaviour of the
//! motivating example, while the indexed executor answers all of them from
//! one shared layered aggregate tree — the clearest single illustration of
//! the paper's thesis.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use sgl_core::engine::{Simulation, UnitSelector};
use sgl_core::env::{EnvTable, Schema, TupleBuilder, Value};
use sgl_core::exec::{ExecConfig, ExecMode};
use sgl_core::GameBuilder;

use crate::{battle_mechanics, battle_registry, battle_schema, UnitKind, SKELETON_FEAR_SCRIPT};

/// SGL source of the horde script: march on the enemy centroid, strike when a
/// target is within reach (a deliberately simple "zombie walk").
pub const MARCH_SCRIPT: &str = r#"
main(u) {
  (let in_reach = CountEnemiesInRange(u, u.range))
  (let visible = CountEnemiesInRange(u, u.sight))
  (let ec = CentroidOfEnemies(u, u.sight)) {
    if in_reach > 0 and u.cooldown = 0 then
      perform Strike(u, getNearestEnemy(u).key);
    else if visible > 0 then
      perform MoveInDirection(u, ec.x, ec.y);
    else
      perform MoveInDirection(u, u.posx - 1, u.posy);
  }
}
"#;

/// Parameters of the skeleton-horde scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkeletonConfig {
    /// Number of defending archers (player 0).
    pub defenders: usize,
    /// Number of skeletons in the horde (player 1).
    pub skeletons: usize,
    /// Fraction of grid squares occupied, as in §6 (determines world size).
    pub density: f64,
    /// Placement / game seed.
    pub seed: u64,
    /// Keep the population constant by resurrecting the fallen (§6 rule).
    pub resurrect: bool,
}

impl Default for SkeletonConfig {
    fn default() -> Self {
        SkeletonConfig {
            defenders: 100,
            skeletons: 400,
            density: 0.01,
            seed: 7,
            resurrect: true,
        }
    }
}

impl SkeletonConfig {
    /// Total unit count.
    pub fn units(&self) -> usize {
        self.defenders + self.skeletons
    }

    /// Side length of the square world implied by the unit count and density.
    pub fn world_side(&self) -> f64 {
        ((self.units() as f64) / self.density.max(1e-6))
            .sqrt()
            .max(4.0)
    }
}

/// A generated skeleton-horde scenario.
#[derive(Debug, Clone)]
pub struct SkeletonScenario {
    /// Shared schema (the battle schema of Eq. (1) plus unit statistics).
    pub schema: Arc<Schema>,
    /// Initial environment.
    pub table: EnvTable,
    /// World side length.
    pub world_side: f64,
    /// Configuration used.
    pub config: SkeletonConfig,
}

impl SkeletonScenario {
    /// Generate the scenario: defenders garrison the left edge, the horde
    /// masses along the right edge in dense marching columns.
    pub fn generate(config: SkeletonConfig) -> SkeletonScenario {
        let schema = battle_schema().into_shared();
        let mut table = EnvTable::new(Arc::clone(&schema));
        let world = config.world_side();
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let mut key = 0i64;

        let spawn =
            |table: &mut EnvTable, key: &mut i64, player: i64, kind: UnitKind, x: f64, y: f64| {
                let stats = kind.stats();
                let tuple = TupleBuilder::new(&schema)
                    .set("key", *key)
                    .expect("key")
                    .set("player", player)
                    .expect("player")
                    .set("unittype", kind.code())
                    .expect("unittype")
                    .set("posx", x.clamp(0.0, world))
                    .expect("posx")
                    .set("posy", y.clamp(0.0, world))
                    .expect("posy")
                    .set("health", stats.max_health)
                    .expect("health")
                    .set("max_health", stats.max_health)
                    .expect("max_health")
                    .set("range", stats.range)
                    .expect("range")
                    .set("sight", stats.sight)
                    .expect("sight")
                    .set("morale", stats.morale)
                    .expect("morale")
                    .set("armor", stats.armor)
                    .expect("armor")
                    .set("strength", stats.strength)
                    .expect("strength")
                    .build();
                table.insert(tuple).expect("generated keys are unique");
                *key += 1;
            };

        // Defenders: archers scattered across the left 20 % of the map.
        for _ in 0..config.defenders {
            let x = rng.gen_range(0.0..(world * 0.2).max(1e-6));
            let y = rng.gen_range(0.0..world.max(1e-6));
            spawn(&mut table, &mut key, 0, UnitKind::Archer, x, y);
        }
        // The horde: dense marching columns filling the right 30 % of the map.
        let columns = ((config.skeletons as f64).sqrt().ceil() as usize).max(1);
        for i in 0..config.skeletons {
            let col = (i % columns) as f64;
            let row = (i / columns) as f64;
            let x = world * 0.7 + col * (world * 0.3 / columns as f64) + rng.gen_range(-0.2..0.2);
            let y = (row + 0.5) * (world / (config.skeletons as f64 / columns as f64 + 1.0))
                + rng.gen_range(-0.2..0.2);
            spawn(&mut table, &mut key, 1, UnitKind::Knight, x, y);
        }

        SkeletonScenario {
            schema,
            table,
            world_side: world,
            config,
        }
    }

    /// Build a ready-to-run simulation in the given execution mode.
    pub fn build_simulation(&self, mode: ExecMode) -> Simulation {
        self.build_with_config(ExecConfig::for_mode(mode, &self.schema))
    }

    /// Build a simulation under an explicit executor configuration (the
    /// conformance and golden-digest suites sweep the full policy × backend
    /// × parallelism lattice).
    pub fn build_with_config(&self, exec: ExecConfig) -> Simulation {
        let registry = battle_registry();
        let mechanics = battle_mechanics(&self.schema, self.world_side, self.config.resurrect);
        let player = self.schema.attr_id("player").expect("battle schema");
        GameBuilder::new(Arc::clone(&self.schema), registry, mechanics)
            .exec_config(exec)
            .seed(self.config.seed)
            .script(
                "defender",
                SKELETON_FEAR_SCRIPT,
                UnitSelector::AttrEquals(player, Value::Int(0)),
            )
            .script(
                "skeleton",
                MARCH_SCRIPT,
                UnitSelector::AttrEquals(player, Value::Int(1)),
            )
            .build(self.table.clone())
            .expect("skeleton scripts compile")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_places_both_sides() {
        let config = SkeletonConfig {
            defenders: 30,
            skeletons: 90,
            ..SkeletonConfig::default()
        };
        let scenario = SkeletonScenario::generate(config);
        assert_eq!(scenario.table.len(), 120);
        assert_eq!(config.units(), 120);
        let player = scenario.schema.attr_id("player").unwrap();
        let posx = scenario.schema.attr_id("posx").unwrap();
        let mut defenders = 0;
        let mut skeletons = 0;
        for (_, row) in scenario.table.iter() {
            let x = row.get_f64(posx).unwrap();
            match row.get_i64(player).unwrap() {
                0 => {
                    defenders += 1;
                    assert!(x <= scenario.world_side * 0.2 + 1e-9);
                }
                1 => {
                    skeletons += 1;
                    assert!(x >= scenario.world_side * 0.6);
                }
                other => panic!("unexpected player {other}"),
            }
        }
        assert_eq!(defenders, 30);
        assert_eq!(skeletons, 90);
    }

    #[test]
    fn the_march_script_compiles_and_runs() {
        let config = SkeletonConfig {
            defenders: 15,
            skeletons: 45,
            density: 0.02,
            ..SkeletonConfig::default()
        };
        let scenario = SkeletonScenario::generate(config);
        let mut sim = scenario.build_simulation(ExecMode::Indexed);
        let summary = sim.run(5).unwrap();
        assert_eq!(summary.ticks, 5);
        assert_eq!(
            summary.final_population, 60,
            "resurrection keeps the population constant"
        );
        assert!(summary.exec.aggregate_probes > 0);
    }

    #[test]
    fn the_horde_advances_on_the_defenders() {
        let config = SkeletonConfig {
            defenders: 20,
            skeletons: 60,
            density: 0.05,
            seed: 3,
            ..SkeletonConfig::default()
        };
        let scenario = SkeletonScenario::generate(config);
        let player = scenario.schema.attr_id("player").unwrap();
        let posx = scenario.schema.attr_id("posx").unwrap();
        let mean_x = |sim: &Simulation| {
            let mut sum = 0.0;
            let mut count = 0usize;
            for (_, row) in sim.table().iter() {
                if row.get_i64(player).unwrap() == 1 {
                    sum += row.get_f64(posx).unwrap();
                    count += 1;
                }
            }
            sum / count as f64
        };
        let mut sim = scenario.build_simulation(ExecMode::Indexed);
        let before = mean_x(&sim);
        sim.run(12).unwrap();
        let after = mean_x(&sim);
        assert!(
            after < before - 1.0,
            "the horde should have marched toward the defenders ({before:.1} → {after:.1})"
        );
    }

    #[test]
    fn naive_and_indexed_agree_on_the_motivating_example() {
        let config = SkeletonConfig {
            defenders: 12,
            skeletons: 36,
            density: 0.03,
            seed: 11,
            ..SkeletonConfig::default()
        };
        let scenario = SkeletonScenario::generate(config);
        let mut naive = scenario.build_simulation(ExecMode::Naive);
        let mut indexed = scenario.build_simulation(ExecMode::Indexed);
        for _ in 0..4 {
            naive.step().unwrap();
            indexed.step().unwrap();
        }
        assert_eq!(
            naive.digest(),
            indexed.digest(),
            "the indexed executor must be a pure optimization"
        );
    }
}
